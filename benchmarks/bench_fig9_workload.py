"""Figure 9 — cumulative workload time vs workload selectivity (FIAM).

Workloads of N queries at fixed 2.5% query selectivity against lazy and the
best eager approach per query type.  Shapes to hold: lazy wins clearly at
low workload selectivity; the eager curves are flat; increasing the query
count benefits eager and narrows lazy's advantage on small scale factors.
"""

from conftest import run_once

from repro.bench import run_fig9


def test_fig9_workloads(benchmark, ctx):
    table = run_once(benchmark, lambda: run_fig9(ctx))
    table.emit("fig9_workload.txt")
    expected_cells = (
        len(ctx.profile.fig9_query_types)
        * len(ctx.profile.fig9_scale_factors)
        * 2  # lazy + best eager
        * len(ctx.profile.fig9_num_queries)
        * len(ctx.profile.fig9_selectivities)
    )
    assert len(table.rows) == expected_cells
