"""Ablation benchmarks: rule set, recycler policy, chunk-access strategy.

See DESIGN.md section 5; these are the design-choice experiments beyond
the paper's own figures.
"""

from conftest import run_once

from repro.bench import (
    run_ablation_chunk_access,
    run_ablation_recycler,
    run_ablation_rules,
)


def test_ablation_rule_set(benchmark, ctx):
    table = run_once(benchmark, lambda: run_ablation_rules(ctx))
    table.emit("ablation_rules.txt")
    # The minimality claim: disabling time-bound inference makes the T4
    # query consider every chunk of the station instead of the 2-day set.
    rows = {(r[0], r[1]): r for r in table.rows}
    full_t4 = rows[("T4", "full rule set")]
    noinf_t4 = rows[("T4", "no time-bound inference")]
    assert noinf_t4[2] > full_t4[2]


def test_ablation_recycler_policy(benchmark, ctx):
    table = run_once(benchmark, lambda: run_ablation_recycler(ctx))
    table.emit("ablation_recycler.txt")
    assert len(table.rows) == 2


def test_ablation_chunk_access(benchmark, ctx):
    table = run_once(benchmark, lambda: run_ablation_chunk_access(ctx))
    table.emit("ablation_chunk_access.txt")
    # In-situ selective decode touches fewer segments than a full load.
    full_rows = [r for r in table.rows if r[0] == "full load"]
    insitu_rows = [r for r in table.rows if r[0] == "in-situ range"]
    assert insitu_rows[0][2] <= full_rows[0][2]
    assert insitu_rows[0][3] < full_rows[0][3]
