"""Serving front-end load benchmark: open-loop arrival sweep over HTTP.

Many short-lived clients fire queries at a :class:`SommelierServer` whose
session pool is deliberately small, in the remote regime (modeled
per-chunk fetch latency).  Arrivals are *open-loop*: request i is sent at
``i / rate`` regardless of completions, so offered load beyond capacity
piles onto admission control instead of self-throttling — exactly the
saturation a public archive endpoint faces.

Per offered rate the harness reports completed/shed/error counts, p50/p99
latency of served queries and achieved throughput.  Three gates make it a
CI correctness check (exit 1 on any failure):

* **bit-identity** — every 200 response's rows must decode identical to
  the same query run in-process through ``SommelierDB.query()``;
* **graceful saturation** — the overload leg must shed load with
  backpressure statuses (429/503 + ``Retry-After``) and finish with zero
  transport/server errors; shedding must never appear as hangs;
* **no deadlocks** — every request must complete within the harness
  watchdog; a stuck future fails the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.serving import ServerConfig, ServingClient, start_in_thread  # noqa: E402
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))

ROW_SQL = (
    "SELECT D.sample_time AS t, D.sample_value AS v FROM dataview "
    "WHERE F.station = '{station}' AND F.channel = '{channel}' "
    "AND D.sample_time >= {lo} AND D.sample_time < {hi}"
)


def build_workload(days: int) -> list[str]:
    """A deterministic T4-aggregate + row-query mix across all stations."""
    queries: list[str] = []
    for station, channel in STATIONS:
        for day in range(days):
            start = EPOCH_2010_MS + day * MILLIS_PER_DAY
            queries.append(
                t4_query(
                    QueryParams(
                        station=station, channel=channel,
                        start_ms=start, end_ms=start + MILLIS_PER_DAY,
                    )
                )
            )
            # A half-day row query exercises the streamed encoding path.
            queries.append(
                ROW_SQL.format(
                    station=station, channel=channel,
                    lo=start, hi=start + MILLIS_PER_DAY // 2,
                )
            )
    return queries


def same_rows(wire_rows: list[list], expected_rows: list[list]) -> bool:
    """NaN-tolerant cell equality between decoded wire rows and in-process."""
    if len(wire_rows) != len(expected_rows):
        return False
    for wire, expected in zip(wire_rows, expected_rows):
        if len(wire) != len(expected):
            return False
        for a, b in zip(wire, expected):
            if a != b and not (a != a and b != b):
                return False
    return True


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(math.ceil(q * len(sorted_values))) - 1)
    return sorted_values[max(index, 0)]


def run_leg(
    host: str,
    port: int,
    workload: list[str],
    expected: dict[str, list[list]],
    rate: float,
    duration_s: float,
    client_timeout_s: float,
) -> dict:
    """One open-loop leg at ``rate`` req/s for ``duration_s`` seconds."""
    num_requests = max(1, int(rate * duration_s))
    outcomes = {
        "requests": num_requests, "ok": 0, "shed": 0, "timeouts": 0,
        "errors": 0, "mismatches": 0, "deadlocked": 0,
        "shed_without_retry_after": 0, "latencies": [],
    }
    started = time.perf_counter()

    def one_request(index: int) -> tuple[str, float]:
        # Open loop: send at the scheduled instant, not after the previous
        # request finished.  A fresh connection per request = a short-lived
        # client.
        target = started + index / rate
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        sql = workload[index % len(workload)]
        sent = time.perf_counter()
        try:
            with ServingClient(
                host, port, client_id=f"bench-{index % 16}",
                timeout=client_timeout_s,
            ) as client:
                response = client.query(sql)
        except OSError as exc:
            return f"transport: {exc}", time.perf_counter() - sent
        latency = time.perf_counter() - sent
        if response.ok:
            if not same_rows(response.rows, expected[sql]):
                return "mismatch", latency
            return "ok", latency
        if response.backpressure:
            if response.retry_after is None:
                return "shed-no-retry-after", latency
            return "shed", latency
        if response.status == 504:
            return "timeout", latency
        return f"error {response.status}: {response.payload}", latency

    # Enough workers that arrivals stay on schedule even while the pool
    # legs block; shed requests return immediately so the bound is loose.
    workers = min(num_requests, 96)
    watchdog_s = duration_s + 4 * client_timeout_s + 30
    with ThreadPoolExecutor(max_workers=workers) as executor:
        futures = [executor.submit(one_request, i) for i in range(num_requests)]
        for future in futures:
            try:
                outcome, latency = future.result(timeout=watchdog_s)
            except FutureTimeout:
                outcomes["deadlocked"] += 1
                continue
            if outcome == "ok":
                outcomes["ok"] += 1
                outcomes["latencies"].append(latency)
            elif outcome == "shed":
                outcomes["shed"] += 1
            elif outcome == "shed-no-retry-after":
                outcomes["shed"] += 1
                outcomes["shed_without_retry_after"] += 1
            elif outcome == "timeout":
                outcomes["timeouts"] += 1
            elif outcome == "mismatch":
                outcomes["mismatches"] += 1
            else:
                outcomes["errors"] += 1
                print(f"  !! {outcome}", file=sys.stderr)
    outcomes["wall_s"] = time.perf_counter() - started
    outcomes["latencies"].sort()
    return outcomes


def run(args: argparse.Namespace) -> tuple[ReportTable, bool]:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    days = stats.num_files // len(STATIONS)
    workload = build_workload(days)

    table = ReportTable(
        title=(
            f"Serving front end under open-loop load (sf-{args.sf} "
            f"{args.scale}, pool={args.pool_size}, queue<={args.max_queue}, "
            f"{args.fetch_latency_ms:g}ms modeled fetch, "
            f"{args.duration_s:g}s per leg)"
        ),
        headers=[
            "offered_rps", "requests", "ok", "shed", "timeouts", "errors",
            "mismatch", "p50_ms", "p99_ms", "achieved_qps",
        ],
    )

    passed = True
    with tempfile.TemporaryDirectory(prefix="repro-bench-serving-") as scratch:
        db, _ = prepare(
            "lazy", repository, workdir=os.path.join(scratch, "db"),
            options=TwoStageOptions(io_threads=args.io_threads),
        )
        try:
            # In-process ground truth for the bit-identity gate — computed
            # before the server starts taking traffic.
            expected: dict[str, list[list]] = {}
            for sql in workload:
                result = db.query(sql)
                expected[sql] = [list(row) for row in result.table.rows()]

            # Remote regime for the measured legs: modeled fetch latency,
            # chunk tiers cold at each leg's start.
            db.database.chunk_loader.io_delay_ms = args.fetch_latency_ms
            db.database.recycler.spill_on_evict = False

            handle = start_in_thread(
                db,
                ServerConfig(
                    pool_size=args.pool_size,
                    max_queue=args.max_queue,
                    request_timeout_s=args.request_timeout_s,
                ),
            )
            try:
                legs = []
                for rate in args.rates:
                    db.database.recycler.clear(spilled=True)
                    leg = run_leg(
                        "127.0.0.1", handle.port, workload, expected,
                        rate, args.duration_s,
                        client_timeout_s=args.request_timeout_s + 30,
                    )
                    legs.append((rate, leg))
                    latencies = leg["latencies"]
                    table.add_row(
                        rate, leg["requests"], leg["ok"], leg["shed"],
                        leg["timeouts"], leg["errors"], leg["mismatches"],
                        round(percentile(latencies, 0.50) * 1000, 1),
                        round(percentile(latencies, 0.99) * 1000, 1),
                        round(leg["ok"] / leg["wall_s"], 2),
                    )
            finally:
                handle.stop(drain=True)
        finally:
            db.close()

    hard_failures = sum(
        leg["errors"] + leg["mismatches"] + leg["deadlocked"]
        + leg["shed_without_retry_after"]
        for _, leg in legs
    )
    if hard_failures:
        passed = False
    # The overload leg (highest offered rate) must have exercised
    # admission control: shed responses prove backpressure engaged, served
    # ones prove it still made progress.
    overload = max(legs, key=lambda pair: pair[0])[1]
    saturation_graceful = overload["shed"] > 0 and overload["ok"] > 0
    if not saturation_graceful:
        passed = False
    served_any = any(leg["ok"] > 0 for _, leg in legs)
    if not served_any:
        passed = False

    table.add_note(
        "open loop: request i is sent at i/rate regardless of completions; "
        "shed = 429/503 with Retry-After (admission backpressure), never "
        "queued unboundedly"
    )
    table.add_note(
        "every 200 response decoded and compared cell-by-cell against "
        "SommelierDB.query() in-process — "
        f"results_identical={'yes' if not hard_failures else 'NO'}"
    )
    table.add_note(
        "saturation handled gracefully (overload leg shed>0, ok>0, no "
        f"errors/deadlocks)={'yes' if saturation_graceful else 'NO'}"
    )
    if legs:
        low = legs[0][1]
        table.add_note(
            f"headline: p50 {percentile(low['latencies'], 0.5) * 1000:.1f}ms / "
            f"p99 {percentile(low['latencies'], 0.99) * 1000:.1f}ms at "
            f"{legs[0][0]:g} rps offered; overload leg served "
            f"{overload['ok']} and shed {overload['shed']} of "
            f"{overload['requests']}"
        )
    return table, passed


def parse_float_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serving front-end load benchmark (open-loop sweep)"
    )
    # The last rate must genuinely exceed the pool's capacity (~300 qps
    # warm on the 1-core container) or the saturation gate has nothing
    # to observe.
    parser.add_argument(
        "--rates", type=parse_float_list, default=[4.0, 16.0, 512.0],
        help="offered arrival rates in requests/s, comma-separated "
        "(the last is the overload leg and must exceed capacity)",
    )
    parser.add_argument("--duration-s", type=float, default=4.0)
    parser.add_argument("--pool-size", type=int, default=4)
    parser.add_argument("--max-queue", type=int, default=4)
    parser.add_argument("--io-threads", type=int, default=2)
    parser.add_argument("--request-timeout-s", type=float, default=30.0)
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=5.0,
        help="modeled remote-repository fetch latency per chunk",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="serving.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data, short legs)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sf = 1
        args.scale = "test"
        # ~4 ms warm service on pool 2 puts capacity near 500 qps; the
        # overload leg must beat it on fast runners too, or the
        # saturation gate has nothing to shed.
        args.rates = [8.0, 2000.0]
        args.duration_s = 1.5
        args.pool_size = 2
        args.max_queue = 2
        args.request_timeout_s = 15.0

    table, passed = run(args)
    text_path = table.emit("serving.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if not passed:
        print(
            "SERVING GATE FAILED: errors, deadlocks, result mismatches, or "
            "saturation was not handled with backpressure"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
