"""Semantic result recycling: the repeated-workload sweep.

Two serving patterns motivated by the result-recycler work, both in the
remote regime (modeled per-chunk fetch latency, recycler cleared between
measured queries — the server whose chunk cache is under pressure while
the same dashboards keep asking the same questions):

* **day-walk** — every station's client walks its days with the T4
  aggregate, then the whole walk repeats (the dashboard refresh).  With
  the result cache on, every repeat is an *exact* fingerprint hit that
  skips both execution stages; the uncached twin re-runs stage one and
  re-fetches every chunk.
* **zoom-in** — per station, one broad row query over the full first day,
  then progressively narrower windows (half, quarter, eighth).  With the
  cache on, every zoom is answered by *subsumption*: the broad cached
  result is re-filtered, no chunk is touched.

**Every cached/subsumed result is compared against its uncached twin; any
mismatch — or a cached run that silently failed to hit — fails the
process.  This is the CI correctness gate.**

Usage::

    PYTHONPATH=src python benchmarks/bench_result_cache.py --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_result_cache.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))
ZOOM_FRACTIONS = (0.5, 0.25, 0.125)

ROW_SQL = (
    "SELECT D.sample_time AS t, D.sample_value AS v FROM dataview "
    "WHERE F.station = '{station}' AND F.channel = '{channel}' "
    "AND D.sample_time >= {lo} AND D.sample_time < {hi}"
)


def same_rows(a, b) -> bool:
    """NaN-tolerant row equality (empty-input AVG yields NaN on both sides)."""
    rows_a, rows_b = a.to_dicts(), b.to_dicts()
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if va != vb and not (va != va and vb != vb):
                return False
    return True


def day_walk_queries(days: int) -> list[str]:
    """The T4 day walk of every station, flattened in serving order."""
    walk = []
    for station, channel in STATIONS:
        for day in range(days):
            start = EPOCH_2010_MS + day * MILLIS_PER_DAY
            walk.append(
                t4_query(
                    QueryParams(
                        station=station, channel=channel,
                        start_ms=start, end_ms=start + MILLIS_PER_DAY,
                    )
                )
            )
    return walk


def zoom_queries() -> list[list[str]]:
    """Per station: one broad day-wide row query, then narrowing windows."""
    plans = []
    for station, channel in STATIONS:
        start = EPOCH_2010_MS
        steps = [
            ROW_SQL.format(
                station=station, channel=channel,
                lo=start, hi=start + MILLIS_PER_DAY,
            )
        ]
        for fraction in ZOOM_FRACTIONS:
            span = int(MILLIS_PER_DAY * fraction)
            lo = start + (MILLIS_PER_DAY - span) // 2  # zoom to the middle
            steps.append(
                ROW_SQL.format(
                    station=station, channel=channel, lo=lo, hi=lo + span
                )
            )
        plans.append(steps)
    return plans


def run_config(args, repository, days: int, enabled: bool, workdir: str):
    """One full workload pass; returns per-query tables and timings."""
    db, _ = prepare(
        "lazy", repository, workdir=workdir,
        options=TwoStageOptions(
            io_threads=args.io_threads,
            result_cache=enabled,
        ),
    )
    db.database.chunk_loader.io_delay_ms = args.fetch_latency_ms
    observations = {
        "walk_tables": [], "walk_first_s": 0.0, "walk_repeat_s": 0.0,
        "walk_outcomes": [], "zoom_tables": [], "zoom_broad_s": 0.0,
        "zoom_narrow_s": 0.0, "zoom_outcomes": [], "walk_chunks_loaded": 0,
        "zoom_chunks_loaded": 0,
    }
    try:
        walk = day_walk_queries(days)
        for round_no in range(args.repeats):
            # Remote regime: the chunk tiers are cold at the start of each
            # round; only the result cache (if any) persists across rounds.
            db.database.recycler.clear(spilled=True)
            elapsed = 0.0
            for sql in walk:
                result = db.query(sql)
                elapsed += result.seconds
                observations["walk_chunks_loaded"] += (
                    result.stats.chunks_loaded
                )
                observations["walk_tables"].append(result.table)
                if round_no > 0:
                    observations["walk_outcomes"].append(result.result_cache)
            key = "walk_first_s" if round_no == 0 else "walk_repeat_s"
            observations[key] += elapsed
        for steps in zoom_queries():
            for position, sql in enumerate(steps):
                db.database.recycler.clear(spilled=True)
                result = db.query(sql)
                observations["zoom_chunks_loaded"] += (
                    result.stats.chunks_loaded
                )
                observations["zoom_tables"].append(result.table)
                if position == 0:
                    observations["zoom_broad_s"] += result.seconds
                else:
                    observations["zoom_narrow_s"] += result.seconds
                    observations["zoom_outcomes"].append(result.result_cache)
        observations["cache_stats"] = (
            db.planner_stats().get("result_cache", {})
        )
    finally:
        db.close()
    return observations


def run(args: argparse.Namespace) -> tuple[ReportTable, bool]:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    days = stats.num_files // len(STATIONS)
    table = ReportTable(
        title=(
            f"Semantic result recycling (sf-{args.sf} {args.scale}, "
            f"{stats.num_files} chunks, {args.repeats} walk rounds, "
            f"{args.fetch_latency_ms:g}ms modeled fetch, recycler cleared "
            "between measured queries)"
        ),
        headers=[
            "experiment", "cache", "queries", "hits", "chunks_loaded",
            "first_s", "repeat_s", "speedup",
        ],
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-rescache-") as scratch:
        baseline = run_config(
            args, repository, days, False, os.path.join(scratch, "off")
        )
        cached = run_config(
            args, repository, days, True, os.path.join(scratch, "on")
        )

    identical = len(baseline["walk_tables"]) == len(cached["walk_tables"])
    identical &= len(baseline["zoom_tables"]) == len(cached["zoom_tables"])
    if identical:
        identical = all(
            same_rows(a, b)
            for a, b in zip(baseline["walk_tables"], cached["walk_tables"])
        ) and all(
            same_rows(a, b)
            for a, b in zip(baseline["zoom_tables"], cached["zoom_tables"])
        )
    # The functional gate: the cached run must actually have been served
    # by the recycler, or the timing comparison measures nothing.
    served_as_expected = all(
        outcome == "exact" for outcome in cached["walk_outcomes"]
    ) and all(
        outcome == "subsumed" for outcome in cached["zoom_outcomes"]
    )

    walk_queries_n = len(day_walk_queries(days))
    exact_speedup = baseline["walk_repeat_s"] / max(
        cached["walk_repeat_s"], 1e-9
    )
    zoom_speedup = baseline["zoom_narrow_s"] / max(
        cached["zoom_narrow_s"], 1e-9
    )
    for label, observations, speedup in (
        ("day-walk", baseline, ""),
        ("day-walk", cached, round(exact_speedup, 2)),
    ):
        enabled = observations is cached
        table.add_row(
            label, "on" if enabled else "off",
            walk_queries_n * args.repeats,
            observations.get("cache_stats", {}).get("exact_hits", 0),
            observations["walk_chunks_loaded"],
            round(observations["walk_first_s"], 4),
            round(observations["walk_repeat_s"], 4),
            speedup,
        )
    for label, observations, speedup in (
        ("zoom-in", baseline, ""),
        ("zoom-in", cached, round(zoom_speedup, 2)),
    ):
        enabled = observations is cached
        table.add_row(
            label, "on" if enabled else "off",
            len(STATIONS) * (1 + len(ZOOM_FRACTIONS)),
            observations.get("cache_stats", {}).get("subsumption_hits", 0),
            observations["zoom_chunks_loaded"],
            round(observations["zoom_broad_s"], 4),
            round(observations["zoom_narrow_s"], 4),
            speedup,
        )
    table.add_note(
        f"headline: exact-repeat day walks {exact_speedup:.2f}x faster, "
        f"subsumed zoom-ins {zoom_speedup:.2f}x faster with the result "
        "recycler on"
    )
    table.add_note(
        "day-walk: first_s is the cold first round (both configurations "
        "pay it), repeat_s the summed later rounds; zoom-in: first_s is "
        "the broad queries, repeat_s the narrowing windows"
    )
    table.add_note(
        "results_identical="
        f"{'yes' if identical else 'NO'}, "
        "served_as_expected="
        f"{'yes' if served_as_expected else 'NO'} "
        "(every cached/subsumed result vs uncached execution)"
    )
    return table, identical and served_as_expected


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="result-recycler repeated-workload sweep"
    )
    parser.add_argument("--io-threads", type=int, default=4)
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="day-walk rounds (round 1 is the cold pass both configs pay)",
    )
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=5.0,
        help="modeled remote-repository fetch latency per chunk",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="result_cache.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sf = 1
        args.scale = "test"
        args.io_threads = 2
        args.repeats = 2

    table, passed = run(args)
    text_path = table.emit("result_cache.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if not passed:
        print(
            "CORRECTNESS GATE FAILED: cached/subsumed results differ from "
            "uncached execution (or the cache failed to serve)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
