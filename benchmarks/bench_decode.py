"""Steim codec throughput: decode kernels, batch entry, encode baseline.

Three comparisons for the warm-path decode work the shared scans feed:

* **kernel sweep** — ``decode()`` of one payload per registered kernel
  (``loop`` reference vs the batched ``numpy`` kernel vs ``numba`` when
  importable), per signal shape: the single-stream speedup the grouped
  frame kernel buys;
* **batch vs per-call** — ``decode_many()`` over N payloads against N
  ``decode()`` calls: the header-scan and dispatch overhead amortized by
  the batch entry point;
* **encode** — the encoder's throughput for scale (it is not kernelized).

Every decode result is verified sample-for-sample against the reference
``loop`` kernel; any mismatch makes the benchmark exit nonzero, so the CI
leg doubles as a cross-kernel parity gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_decode.py --samples 200000
    PYTHONPATH=src python benchmarks/bench_decode.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.mseed import steim, steim_kernels  # noqa: E402


def build_signals(samples: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(20150413)
    return {
        "walk": np.cumsum(rng.integers(-100, 100, samples)).astype(np.int64),
        "noise": rng.integers(-(2**31), 2**31, samples).astype(np.int64),
        "constant": np.full(samples, 42, dtype=np.int64),
    }


def best_of(repeats: int, fn) -> float:
    """Min wall seconds over ``repeats`` runs (noise-robust point metric)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def run(args: argparse.Namespace) -> tuple[ReportTable, int]:
    signals = build_signals(args.samples)
    payloads = {name: steim.encode(x) for name, x in signals.items()}
    kernels = steim_kernels.available_kernels()
    mismatches = 0

    table = ReportTable(
        title=(
            f"Steim codec throughput ({args.samples:,} samples/signal, "
            f"best of {args.repeats})"
        ),
        headers=[
            "experiment", "signal", "kernel", "wall_ms", "msamples_s",
            "speedup_vs_loop", "verified",
        ],
    )
    table.add_metadata(
        samples=args.samples,
        repeats=args.repeats,
        kernels=list(kernels),
        numba=steim_kernels.NUMBA_AVAILABLE,
    )

    # -- kernel sweep ----------------------------------------------------
    for name, x in signals.items():
        payload = payloads[name]
        loop_seconds = None
        for kernel in kernels:
            previous = steim_kernels.set_kernel(kernel)
            try:
                decoded = steim.decode(payload)
                seconds = best_of(
                    args.repeats, lambda: steim.decode(payload)
                )
            finally:
                steim_kernels.set_kernel(previous)
            ok = bool(np.array_equal(decoded, x))
            mismatches += 0 if ok else 1
            if kernel == "loop":
                loop_seconds = seconds
            table.add_row(
                "decode", name, kernel, round(seconds * 1000, 3),
                round(args.samples / seconds / 1e6, 2),
                round(loop_seconds / seconds, 2) if loop_seconds else "",
                "ok" if ok else "MISMATCH",
            )

    # -- batch vs per-call ------------------------------------------------
    per_batch = max(args.samples // args.batch, 1)
    batch_signals = [
        np.cumsum(
            np.random.default_rng(seed).integers(-100, 100, per_batch)
        ).astype(np.int64)
        for seed in range(args.batch)
    ]
    batch_payloads = [steim.encode(x) for x in batch_signals]
    per_call = best_of(
        args.repeats,
        lambda: [steim.decode(p) for p in batch_payloads],
    )
    batched = best_of(
        args.repeats, lambda: steim.decode_many(batch_payloads)
    )
    for out, x in zip(steim.decode_many(batch_payloads), batch_signals):
        if not np.array_equal(out, x):
            mismatches += 1
    total = per_batch * args.batch
    table.add_row(
        f"per-call x{args.batch}", "walk", steim_kernels.active_kernel(),
        round(per_call * 1000, 3), round(total / per_call / 1e6, 2), "",
        "ok",
    )
    table.add_row(
        f"decode_many x{args.batch}", "walk", steim_kernels.active_kernel(),
        round(batched * 1000, 3), round(total / batched / 1e6, 2),
        round(per_call / batched, 2),
        "ok" if mismatches == 0 else "MISMATCH",
    )

    # -- encode baseline --------------------------------------------------
    for name, x in signals.items():
        seconds = best_of(args.repeats, lambda: steim.encode(x))
        table.add_row(
            "encode", name, "-", round(seconds * 1000, 3),
            round(args.samples / seconds / 1e6, 2), "", "ok",
        )

    table.add_note(
        "speedup_vs_loop: same decode through the reference per-frame "
        "loop kernel; decode_many row: vs the per-call column above it"
    )
    table.add_note(
        "every decode is verified against the encoded signal; any "
        "MISMATCH fails the benchmark"
    )
    if not steim_kernels.NUMBA_AVAILABLE:
        table.add_note("numba not importable: jitted kernel not exercised")
    return table, mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Steim decode-kernel throughput benchmark"
    )
    parser.add_argument(
        "--samples", type=int, default=200_000,
        help="samples per signal in the kernel sweep",
    )
    parser.add_argument(
        "--batch", type=int, default=10,
        help="payload count for the batch-vs-per-call comparison",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default="decode.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (short signals, fewer repeats)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.samples = 50_000
        args.repeats = 3

    table, mismatches = run(args)
    text_path = table.emit("decode.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if mismatches:
        print(f"FAILED: {mismatches} decode mismatch(es)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
