"""Figure 8 — data-to-insight time vs query selectivity (FIAM dataset).

Data-to-insight = preparation + first query.  Shapes to hold: the lazy
curve rises with selectivity (more chunks to load) but stays below
eager_index and eager_dmd even at 100%; the eager curves are flat in
selectivity because their cost is the preparation itself.
"""

from conftest import run_once

from repro.bench import run_fig8


def test_fig8_data_to_insight(benchmark, ctx):
    table = run_once(benchmark, lambda: run_fig8(ctx))
    table.emit("fig8_selectivity.txt")

    largest = ctx.profile.fig8_scale_factors[-1]
    lazy_prep = ctx.prepared("lazy", largest, fiam_only=True).report
    index_prep = ctx.prepared("eager_index", largest, fiam_only=True).report
    dmd_prep = ctx.prepared("eager_dmd", largest, fiam_only=True).report
    # The headline claim: even the most selective eager pipeline costs more
    # to prepare than lazy costs to prepare outright.
    assert lazy_prep.total_seconds < index_prep.total_seconds
    assert lazy_prep.total_seconds < dmd_prep.total_seconds
