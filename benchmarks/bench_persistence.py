"""Persistent recycler + process-based stage two: restart and GIL sweeps.

Three experiments motivated by the ROADMAP's "scale past the GIL and across
restarts" item:

* **restart** — the same multi-chunk T4 queries against (a) a fresh
  database (cold: every chunk fetched and Steim-decoded), and (b) the
  same workdir reopened with ``SommelierDB.open`` after a checkpointing
  close (warm restart: every chunk mmap-re-hydrated from the on-disk
  chunk store, no fetch, no decode).  Run in two regimes: *local* (page-
  cache-warm files; the decode itself is the only cost) and *remote*
  (the paper's network-attached INGV archive, modeled by the loader's
  per-chunk fetch latency — the regime where restarts without the
  persistent tier hurt most).  Speedups compare stage-two seconds;
* **executor** — one cold multi-chunk T4 query per (executor, workers)
  combination: the thread pipeline is GIL-bound on decode CPU, the
  process pipeline decodes in spawn workers over the shared chunk store
  (pools are warmed before measuring, as in steady-state serving);
* **clients-tier** — N pooled client threads drain a T4 workload with the
  working set (a) in the memory tier and (b) only in the disk tier right
  after a restart, showing what a restarted server's first wave of
  traffic pays.

Every mode's query results are checked against serial execution; the
``results_identical`` note reports it.

Usage::

    PYTHONPATH=src python benchmarks/bench_persistence.py \
        --workers 1,2,4 --clients 1,2,4 --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_persistence.py --smoke
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.sommelier import SommelierDB  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))


def station_queries(span) -> list[str]:
    """One whole-span T4 query per station (multi-chunk stage two each)."""
    return [
        t4_query(
            QueryParams(
                station=station,
                channel=channel,
                start_ms=span[0],
                end_ms=span[1],
            )
        )
        for station, channel in STATIONS
    ]


def run_queries(db, queries: list[str]):
    """Drain the query list; returns a result dict for one pass."""
    tables = []
    loaded = rehydrated = 0
    stage_two = 0.0
    started = time.perf_counter()
    for sql in queries:
        result = db.query(sql)
        loaded += result.stats.chunks_loaded
        rehydrated += result.stats.chunks_rehydrated
        stage_two += result.stage_two_seconds
        tables.append(result.table)
    return {
        "wall_s": time.perf_counter() - started,
        "stage2_s": stage_two,
        "loaded": loaded,
        "rehydrated": rehydrated,
        "tables": tables,
    }


def measure_restart(
    repository, queries: list[str], workdir: str, io_threads: int,
    fetch_latency_ms: float,
):
    """Cold run → checkpointing close → reopen → warm-restart run.

    ``fetch_latency_ms`` models the paper's remote repository (0 = local
    files).  The warm-restart pass never calls the loader, so it pays
    neither fetch nor decode.
    """
    db, _ = prepare(
        "lazy", repository, workdir=workdir,
        options=TwoStageOptions(io_threads=io_threads),
    )
    db.database.chunk_loader.io_delay_ms = fetch_latency_ms
    cold = run_queries(db, queries)
    db.close()  # checkpoints: catalog pointers + warm tier flushed to disk

    db = SommelierDB.open(workdir, options=TwoStageOptions(io_threads=io_threads))
    warm = run_queries(db, queries)
    db.close()
    return cold, warm


def measure_executor(
    repository, queries: list[str], workdir: str, executor: str, workers: int
):
    """One cold pass of the query set with the given stage-two executor."""
    db, _ = prepare(
        "lazy", repository, workdir=workdir,
        options=TwoStageOptions(io_threads=workers, executor=executor),
    )
    try:
        if executor == "process" and workers > 1:
            db.database.warm_process_executor(workers)
        db.drop_caches()  # both tiers cold: decode work is genuine
        return run_queries(db, queries)
    finally:
        db.close()


def measure_clients(db, queries: list[str], clients: int) -> float:
    """Wall seconds for N pooled client threads to drain the workload."""
    pool = db.session_pool(size=clients)
    cursor = iter(queries)

    def drain() -> None:
        with pool.session() as session:
            while True:
                try:
                    sql = next(cursor)
                except StopIteration:
                    return
                session.query(sql)

    started = time.perf_counter()
    if clients == 1:
        drain()
    else:
        with ThreadPoolExecutor(max_workers=clients) as executor:
            list(executor.map(lambda _: drain(), range(clients)))
    return time.perf_counter() - started


def run(args: argparse.Namespace) -> ReportTable:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    days = stats.num_files // len(STATIONS)
    span = (EPOCH_2010_MS, EPOCH_2010_MS + days * MILLIS_PER_DAY)
    queries = station_queries(span)

    table = ReportTable(
        title=(
            f"Persistent recycler + process stage two (sf-{args.sf} "
            f"{args.scale}, {stats.num_files} chunks, "
            f"{stats.num_samples:,} samples)"
        ),
        headers=[
            "experiment", "mode", "clients", "workers", "queries",
            "wall_s", "stage2_s", "loaded", "rehydrated", "speedup",
        ],
    )
    results_identical = True

    with tempfile.TemporaryDirectory(prefix="repro-bench-pers-") as scratch:
        # Serial reference results for the equivalence check.
        ref_db, _ = prepare(
            "lazy", repository,
            workdir=os.path.join(scratch, "ref"),
            options=TwoStageOptions(io_threads=1),
        )
        reference = run_queries(ref_db, queries)["tables"]
        ref_db.close()

        # -- warm restart vs cold re-decode, local and remote regimes ----
        regimes = [("local", 0.0), ("remote", args.fetch_latency_ms)]
        for regime, latency in regimes:
            for index, io_threads in enumerate(args.workers):
                workdir = os.path.join(scratch, f"restart-{regime}{index}")
                cold, warm = measure_restart(
                    repository, queries, workdir, io_threads, latency
                )
                results_identical &= (
                    cold["tables"] == reference and warm["tables"] == reference
                )
                table.add_row(
                    "restart", f"cold ({regime})", 1, io_threads,
                    len(queries), round(cold["wall_s"], 4),
                    round(cold["stage2_s"], 4), cold["loaded"],
                    cold["rehydrated"], 1.0,
                )
                table.add_row(
                    "restart", f"warm restart ({regime})", 1, io_threads,
                    len(queries), round(warm["wall_s"], 4),
                    round(warm["stage2_s"], 4), warm["loaded"],
                    warm["rehydrated"],
                    round(cold["stage2_s"] / max(warm["stage2_s"], 1e-9), 2),
                )

        # -- thread vs process executor on cold scans -------------------
        thread_baseline: dict[int, float] = {}
        for executor in ("thread", "process"):
            for workers in args.workers:
                if executor == "process" and workers == 1:
                    continue  # 1-worker process mode degenerates to serial
                workdir = os.path.join(scratch, f"exec-{executor}{workers}")
                outcome = measure_executor(
                    repository, queries, workdir, executor, workers
                )
                results_identical &= outcome["tables"] == reference
                if executor == "thread":
                    thread_baseline[workers] = outcome["stage2_s"]
                base = thread_baseline.get(workers)
                table.add_row(
                    "executor", executor, 1, workers, len(queries),
                    round(outcome["wall_s"], 4),
                    round(outcome["stage2_s"], 4), outcome["loaded"],
                    outcome["rehydrated"],
                    round(base / max(outcome["stage2_s"], 1e-9), 2)
                    if base else 1.0,
                )

        # -- client sweep over memory vs disk tier ----------------------
        workdir = os.path.join(scratch, "tiers")
        db, _ = prepare(
            "lazy", repository, workdir=workdir,
            options=TwoStageOptions(io_threads=max(args.workers)),
        )
        for sql in queries:  # warm the memory tier + derived metadata
            db.query(sql)
        memory_baseline = None
        for clients in args.clients:
            wall = measure_clients(db, queries * args.rounds, clients)
            memory_baseline = memory_baseline or wall
            table.add_row(
                "clients-tier", "memory", clients, max(args.workers),
                len(queries) * args.rounds, round(wall, 4), 0.0, 0, 0,
                round(memory_baseline / wall, 2),
            )
        db.close()
        for clients in args.clients:
            # Reopen per client count: memory tier cold, disk tier warm.
            db = SommelierDB.open(
                workdir, options=TwoStageOptions(io_threads=max(args.workers))
            )
            wall = measure_clients(db, queries * args.rounds, clients)
            table.add_row(
                "clients-tier", "disk (restart)", clients, max(args.workers),
                len(queries) * args.rounds, round(wall, 4), 0.0, 0, 0,
                round(memory_baseline / wall, 2) if memory_baseline else 1.0,
            )
            db.close()

    table.add_note(
        "restart: warm restart re-hydrates mmap-backed chunks from the "
        "on-disk store (no fetch, no Steim decode); speedup is cold/warm "
        "stage-two seconds at equal io_threads; remote = "
        f"{args.fetch_latency_ms:g}ms modeled fetch per chunk"
    )
    table.add_note(
        "executor: cold decode with thread vs process stage two (process "
        "pool pre-warmed); speedup is vs the thread row at equal workers"
    )
    table.add_note(
        "clients-tier: throughput right after a restart (disk tier only) "
        "vs a fully warm memory tier; speedup is vs memory @ first "
        "client count"
    )
    table.add_note(
        f"results_identical={'yes' if results_identical else 'NO'} "
        "(every mode vs serial execution)"
    )
    return table


def parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="persistence benchmark (restart × executor × tier)"
    )
    parser.add_argument("--workers", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--clients", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--rounds", type=int, default=2,
        help="workload repetitions per client sweep",
    )
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=5.0,
        help="modeled remote-repository fetch latency per chunk "
        "(restart experiment, remote regime)",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="persistence.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data, short sweeps)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers = [1, 2]
        args.clients = [1, 2]
        args.rounds = 1
        args.sf = 1
        args.scale = "test"

    table = run(args)
    text_path = table.emit("persistence.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
