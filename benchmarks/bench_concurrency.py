"""Concurrent query serving: client count × io_threads sweeps.

Four experiments motivated by the ROADMAP's "heavy traffic" north star:

* **cold-stage2** — one multi-chunk T4 query against a cold database per
  ``io_threads`` setting: the morsel-style parallel stage-two pipeline vs
  the serial chunk loop (chunk fetches genuinely overlap);
* **throughput warm** — N client threads share one lazy ``SommelierDB``
  through a :class:`~repro.core.session.SessionPool` and drain a T4
  workload with a fully warm recycler.  This is the pure-CPU regime: on
  CPython its scaling is bounded by the GIL and the core count (a 1-core
  runner shows ≈1×) — reported honestly as the compute ceiling;
* **throughput remote** — the same sweep with the recycler capped below
  the working set and the loader's fetch-latency model enabled
  (``XseedChunkLoader.io_delay_ms``), reproducing the paper's
  network-attached repository.  Here queries block on fetches, waits
  overlap across clients, and single-flight sharing kicks in — this is
  the regime where concurrent serving is designed to win;
* **fanout** — N clients issue the *same* scan-heavy aggregate in
  lockstep waves (the dashboard refresh pattern) against a warm
  database, with ``shared_scan`` off then on.  With shared scans each
  wave runs the chunk pass once and fans the assembled table out to
  every consumer; the speedup column reports shared vs private at the
  same client count.  Every client's every result is verified against a
  serial baseline — any mismatch fails the benchmark run.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrency.py \
        --clients 1,2,4 --io-threads 1,2,4 --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke

Emits the bench suite's text table to stdout/``bench_results`` plus the
JSON shape (``ReportTable.to_json``) for CI artifacts.
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.engine.types import format_timestamp  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    TimeSpan,
    WorkloadSpec,
    generate_workload,
)
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))


def build_workload(
    span: TimeSpan, queries_per_station: int, seed: int = 20150413
) -> list[str]:
    """A T4 mix across all stations, interleaved deterministically."""
    queries: list[str] = []
    for offset, (station, channel) in enumerate(STATIONS):
        spec = WorkloadSpec(
            query_type="T4",
            num_queries=queries_per_station,
            query_selectivity=0.5,
            workload_selectivity=1.0,
            station=station,
            channel=channel,
            seed=seed + offset,
        )
        queries.extend(generate_workload(spec, span))
    # str hash() is salted per process; md5 keeps the order reproducible.
    queries.sort(key=lambda sql: hashlib.md5(sql.encode()).hexdigest())
    return queries


def measure_throughput(db, queries: list[str], clients: int) -> tuple[float, float]:
    """Drain the workload with N pooled client threads.

    Returns ``(wall_seconds, queries_per_second)``.
    """
    pool = db.session_pool(size=clients)
    cursor = iter(queries)

    def drain() -> int:
        executed = 0
        with pool.session() as session:
            while True:
                try:
                    sql = next(cursor)  # GIL-atomic enough for a benchmark
                except StopIteration:
                    return executed
                session.query(sql)
                executed += 1

    started = time.perf_counter()
    if clients == 1:
        drain()
    else:
        with ThreadPoolExecutor(max_workers=clients) as executor:
            list(executor.map(lambda _: drain(), range(clients)))
    wall = time.perf_counter() - started
    return wall, len(queries) / wall


def fanout_query(span: TimeSpan) -> str:
    """A scan-dominated aggregate over the whole actual-data table.

    No metadata join: the warm cost is the chunk pass itself, which is
    exactly what shared scans dedupe across a dashboard's fan-out.
    """
    return (
        "SELECT AVG(D.sample_value) AS avg_value, "
        "COUNT(D.sample_value) AS n_samples "
        f"FROM D WHERE D.sample_time >= '{format_timestamp(span.start_ms)}' "
        f"AND D.sample_time < '{format_timestamp(span.end_ms)}'"
    )


def measure_fanout(
    db, sql: str, clients: int, rounds: int, expected: list[dict]
) -> tuple[float, float, int]:
    """Lockstep waves of the same query from N pooled clients.

    Returns ``(wall_seconds, queries_per_second, mismatches)``; every
    result is compared row-for-row against the serial baseline.
    """
    pool = db.session_pool(size=clients)
    barriers = [threading.Barrier(clients) for _ in range(rounds)]
    mismatches = [0] * clients

    def client(slot: int) -> None:
        with pool.session() as session:
            for barrier in barriers:
                barrier.wait()
                rows = session.query(sql).table.to_dicts()
                if rows != expected:
                    mismatches[slot] += 1

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as executor:
        list(executor.map(client, range(clients)))
    wall = time.perf_counter() - started
    return wall, clients * rounds / wall, sum(mismatches)


def measure_cold_stage_two(
    repository, io_threads: int, span: TimeSpan, workdir: str
) -> tuple[float, int]:
    """One cold multi-chunk T4 query with the given decode parallelism."""
    db, _ = prepare(
        "lazy",
        repository,
        workdir=workdir,
        options=TwoStageOptions(io_threads=io_threads),
    )
    try:
        sql = t4_query(
            QueryParams(
                station="ISK",
                channel="BHE",
                start_ms=span.start_ms,
                end_ms=span.end_ms,
            )
        )
        db.drop_caches()
        started = time.perf_counter()
        result = db.query(sql)
        seconds = time.perf_counter() - started
        return seconds, result.stats.chunks_loaded
    finally:
        db.close()


def run(args: argparse.Namespace) -> tuple[ReportTable, int]:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    days = stats.num_files // 4  # one file per station per day
    span = TimeSpan(EPOCH_2010_MS, EPOCH_2010_MS + days * MILLIS_PER_DAY)
    queries = build_workload(span, args.queries_per_station)

    table = ReportTable(
        title=(
            f"Concurrent serving (sf-{args.sf} {args.scale}, "
            f"{stats.num_files} chunks, {stats.num_samples:,} samples)"
        ),
        headers=[
            "experiment", "clients", "io_threads", "queries",
            "wall_s", "qps", "speedup",
        ],
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-conc-") as workdir:
        # -- cold parallel stage two ------------------------------------
        serial_seconds = None
        for index, io_threads in enumerate(args.io_threads):
            seconds, chunks = measure_cold_stage_two(
                repository, io_threads, span,
                os.path.join(workdir, f"cold{index}"),
            )
            if serial_seconds is None:
                serial_seconds = seconds
            table.add_row(
                f"cold-stage2 ({chunks} chunks)", 1, io_threads, 1,
                round(seconds, 4), round(1 / seconds, 2),
                round(serial_seconds / seconds, 2),
            )

        # -- warm concurrent throughput (CPU-bound ceiling) -------------
        db, _ = prepare(
            "lazy",
            repository,
            workdir=os.path.join(workdir, "warm"),
            options=TwoStageOptions(io_threads=max(args.io_threads)),
        )
        try:
            for sql in queries:  # warm the recycler and derived metadata
                db.query(sql)
            baseline = None
            for clients in args.clients:
                wall, qps = measure_throughput(db, queries, clients)
                baseline = baseline or qps
                table.add_row(
                    "throughput warm", clients, max(args.io_threads),
                    len(queries), round(wall, 4), round(qps, 2),
                    round(qps / baseline, 2),
                )
        finally:
            db.close()

        # -- remote-repository throughput (latency-bound regime) --------
        # Recycler capped below the working set + fetch-latency model:
        # every query blocks on some chunk fetches, which overlap across
        # clients (and coalesce via single-flight).  io_threads=1 keeps
        # in-query fetches serial so the client dimension is isolated.
        db, _ = prepare(
            "lazy",
            repository,
            workdir=os.path.join(workdir, "remote"),
            options=TwoStageOptions(io_threads=1),
            recycler_bytes=args.remote_recycler_bytes,
        )
        db.database.chunk_loader.io_delay_ms = args.fetch_latency_ms
        # The remote regime models a working set that does NOT fit locally;
        # spilling evictions to the on-disk tier would let every re-fetch
        # become a local mmap re-hydrate and dissolve the regime.
        db.database.recycler.spill_on_evict = False
        try:
            for sql in queries[: len(STATIONS)]:  # derive DMd, warm nothing
                db.query(sql)
            baseline = None
            for clients in args.clients:
                wall, qps = measure_throughput(db, queries, clients)
                baseline = baseline or qps
                table.add_row(
                    f"throughput remote ({args.fetch_latency_ms:g}ms fetch)",
                    clients, 1, len(queries), round(wall, 4),
                    round(qps, 2), round(qps / baseline, 2),
                )
        finally:
            db.close()

        # -- shared-scan fan-out (dashboard regime) ---------------------
        # The same scan-heavy aggregate from every client in lockstep
        # waves, warm; shared_scan=True runs each wave's chunk pass once.
        sql = fanout_query(span)
        mismatches = 0
        baselines: dict[int, float] = {}
        for shared in (False, True):
            db, _ = prepare(
                "lazy",
                repository,
                workdir=os.path.join(workdir, f"fanout{int(shared)}"),
                options=TwoStageOptions(io_threads=1, shared_scan=shared),
            )
            try:
                expected = db.query(sql).table.to_dicts()  # warm + baseline
                for clients in args.clients:
                    if clients < 2 and shared:
                        continue  # nobody to share with
                    wall, qps, bad = measure_fanout(
                        db, sql, clients, args.fanout_rounds, expected
                    )
                    mismatches += bad
                    if not shared:
                        baselines[clients] = qps
                    table.add_row(
                        "fanout shared" if shared else "fanout private",
                        clients, 1, clients * args.fanout_rounds,
                        round(wall, 4), round(qps, 2),
                        round(qps / baselines[clients], 2),
                    )
            finally:
                db.close()

    table.add_note(
        "speedup: cold-stage2 rows vs the first io_threads value; "
        "throughput rows vs the first client count; fanout rows vs "
        "fanout private at the same client count"
    )
    if mismatches:
        table.add_note(
            f"FANOUT MISMATCHES: {mismatches} result(s) differed from the "
            "serial baseline"
        )
    table.add_note(
        "warm = recycler holds the working set (pure-CPU regime, bounded "
        "by cores/GIL); remote = capped recycler + modeled fetch latency "
        "(the latency-bound regime concurrent serving targets)"
    )
    return table, mismatches


def parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="concurrent-serving benchmark (clients × io_threads)"
    )
    parser.add_argument("--clients", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--io-threads", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--queries-per-station", type=int, default=6,
        help="T4 workload size is 4 stations × this",
    )
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=5.0,
        help="modeled remote-repository fetch latency per chunk",
    )
    parser.add_argument(
        "--fanout-rounds", type=int, default=15,
        help="lockstep waves per client count in the fanout experiment",
    )
    parser.add_argument(
        "--remote-recycler-bytes", type=int, default=512 * 1024,
        help="recycler budget for the remote experiment (below working set)",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="concurrency.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data, short sweeps)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients = [1, 2, 4]
        args.io_threads = [1, 4]
        args.queries_per_station = 2
        args.fanout_rounds = 5
        args.sf = 1
        args.scale = "test"

    table, mismatches = run(args)
    text_path = table.emit("concurrency.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if mismatches:
        print(
            f"FAILED: {mismatches} fanout result(s) differed from the "
            "serial baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
