"""Figures 7a–7e — cold/hot single-query performance.

One row per (query type, scale factor, approach), with the paper's fixed
2-day/1-station query per type.  Shapes to hold: T1 flat everywhere;
eager_dmd wins T2/T3 by orders of magnitude over lazy; lazy reaches the
eager ballpark on T4; lazy is flat in the scale factor while the eager
variants degrade once data plus indexes outgrow the buffer pool.
"""

from conftest import run_once

from repro.bench import run_fig7


def test_fig7_single_query_performance(benchmark, ctx):
    table = run_once(benchmark, lambda: run_fig7(ctx))
    table.emit("fig7_queries.txt")
    expected_rows = (
        5
        * len(ctx.profile.scale_factors)
        * len(ctx.profile.fig7_approaches)
    )
    assert len(table.rows) == expected_rows


def test_fig7_lazy_flat_in_scale_factor(ctx):
    """The paper: "lazy does not get affected by the scale factor"."""
    from repro.bench.experiments import _cold_hot_with_reset
    from repro.workloads.queries import t4_query

    smallest = ctx.profile.scale_factors[0]
    largest = ctx.profile.scale_factors[-1]
    runs = ctx.profile.query_runs
    small_db = ctx.prepared("lazy", smallest).db
    large_db = ctx.prepared("lazy", largest).db
    sql_small = t4_query(ctx.query_params(smallest))
    sql_large = t4_query(ctx.query_params(largest))
    small_time = _cold_hot_with_reset(small_db, sql_small, runs, False)
    large_time = _cold_hot_with_reset(large_db, sql_large, runs, False)
    # Same query, same chunk count: within a generous constant factor.
    assert large_time.cold_seconds < 10 * max(small_time.cold_seconds, 1e-4)


def test_fig7_eager_dmd_wins_t2(ctx):
    """eager_dmd answers T2 from the materialized view in ~milliseconds."""
    from repro.workloads.queries import t2_query

    sf = ctx.profile.scale_factors[-1]
    sql = t2_query(ctx.query_params(sf))
    dmd_db = ctx.prepared("eager_dmd", sf).db
    lazy_db = ctx.prepared("lazy", sf).db
    lazy_db.reset_derived_metadata()
    lazy_db.drop_caches()
    dmd_db.drop_caches()
    from repro.bench.timing import time_call

    dmd_time = time_call(lambda: dmd_db.query(sql))
    lazy_time = time_call(lambda: lazy_db.query(sql))
    assert dmd_time < lazy_time


def test_fig7_hot_t4_lazy_microbenchmark(benchmark, ctx):
    """pytest-benchmark statistics for the hot lazy T4 query."""
    from repro.workloads.queries import t4_query

    sf = ctx.profile.scale_factors[0]
    db = ctx.prepared("lazy", sf).db
    sql = t4_query(ctx.query_params(sf))
    db.query(sql)  # warm the recycler
    benchmark(lambda: db.query(sql))


def test_fig7_hot_t1_microbenchmark(benchmark, ctx):
    """T1 is metadata-only and should be fast on any approach."""
    from repro.workloads.queries import t1_query

    sf = ctx.profile.scale_factors[0]
    db = ctx.prepared("lazy", sf).db
    sql = t1_query(ctx.query_params(sf))
    db.query(sql)
    benchmark(lambda: db.query(sql))
