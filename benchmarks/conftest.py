"""Shared benchmark session state.

One :class:`ExperimentContext` per session: repositories are built once
under ``REPRO_BENCH_DATA`` (a temp dir by default) and prepared databases
are cached across benchmark files.  Profile selection:
``REPRO_BENCH_PROFILE`` = quick (default) / small / paper.
"""

import pytest

from repro.bench import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    context = ExperimentContext()
    yield context
    context.close()


def run_once(benchmark, fn):
    """Run a whole-experiment benchmark exactly once and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
