"""Figure 6 — loading-cost breakdown for all five approaches × scale factors.

Buckets mirror the paper's stacked bars: mSEED→CSV, CSV→DB, mSEED→DB,
metadata extraction, index construction, DMd derivation.  Shapes to hold:
lazy is metadata-only and orders of magnitude below every eager variant;
eager_csv is the slowest eager pipeline; indexing roughly doubles eager
preparation; eager_dmd adds the view materialization on top.
"""

from conftest import run_once

from repro.bench import run_fig6


def test_fig6_loading_breakdown(benchmark, ctx):
    table = run_once(benchmark, lambda: run_fig6(ctx))
    table.emit("fig6_loading.txt")

    by_key = {}
    for sf in ctx.profile.scale_factors:
        for approach in ("eager_csv", "eager_plain", "eager_index",
                         "eager_dmd", "lazy"):
            by_key[(sf, approach)] = ctx.prepared(approach, sf).report

    largest = ctx.profile.scale_factors[-1]
    # Lazy preparation is dramatically cheaper than any eager variant.  At
    # paper scale the gap is orders of magnitude; at laptop scale per-file
    # overheads (and CI noise) compress it, so assert a conservative factor.
    lazy_total = by_key[(largest, "lazy")].total_seconds
    for approach in ("eager_csv", "eager_plain", "eager_index", "eager_dmd"):
        assert lazy_total < by_key[(largest, approach)].total_seconds / 2
    # The CSV detour costs more than loading mSEED directly.
    assert (
        by_key[(largest, "eager_csv")].total_seconds
        > by_key[(largest, "eager_plain")].total_seconds
    )
    # eager_dmd strictly extends eager_index which extends eager_plain.
    assert by_key[(largest, "eager_dmd")].bucket("dmd") > 0
    assert by_key[(largest, "eager_index")].bucket("indexing") > 0
