"""Table III — dataset size characteristics.

Regenerates the size columns of the paper's Table III: raw repository
(mSEED), CSV blow-up, database after plain load, index overhead (+keys),
and the metadata-only footprint of Lazy.  The shape to hold:
CSV ≫ DB > mSEED ≫ Lazy.
"""

from conftest import run_once

from repro.bench import run_table3


def test_table3_sizes(benchmark, ctx):
    table = run_once(benchmark, lambda: run_table3(ctx))
    table.emit("table3_sizes.txt")
    assert len(table.rows) == len(ctx.profile.scale_factors)
    # Verify the ordering claim on the raw reports (bytes, not strings).
    for sf in ctx.profile.scale_factors:
        csv_report = ctx.prepared("eager_csv", sf).report
        lazy_report = ctx.prepared("lazy", sf).report
        assert csv_report.csv_bytes > csv_report.db_bytes / 2
        assert csv_report.csv_bytes > csv_report.repo_bytes
        assert csv_report.db_bytes > csv_report.repo_bytes
        assert lazy_report.metadata_bytes < csv_report.repo_bytes / 10
