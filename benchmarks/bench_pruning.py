"""Statistics-driven chunk pruning + workload prefetch: the ablation sweep.

Two experiments motivated by the chunk-planner work:

* **selectivity** — a value-predicate aggregate over ``dataview`` whose
  threshold is swept across the per-chunk maxima quantiles, so the chunk
  selectivity steps through ~100%, 50%, 25%, 12.5%.  Stage one cannot
  narrow value predicates (they touch no metadata), so the unpruned
  baseline fetches every chunk; the planner prunes chunks whose enriched
  min/max statistics exclude the threshold.  Swept across serving tier
  (``remote``: both recycler tiers cold with the paper's 5 ms/chunk
  modeled fetch; ``disk``: memory tier cold, chunks mmap-re-hydrate;
  ``memory``: fully warm) × executor (serial / thread pipeline), pruning
  on vs off.  **Every pruned result is compared against its unpruned
  twin; any mismatch fails the process — this is the CI correctness
  gate.**
* **prefetch** — a client walking forward through time day by day
  (the serving pattern the sommelier predicts), remote regime, with a
  think-time gap between queries.  With ``prefetch=True`` the facade
  warms each session's next chunk during the gap, so the follow-up query
  finds it resident.

Usage::

    PYTHONPATH=src python benchmarks/bench_pruning.py --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_pruning.py --smoke
"""

from __future__ import annotations

import argparse
import math
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))
SELECTIVITY_TARGETS = (1.0, 0.5, 0.25, 0.125)


def value_query(threshold: int) -> str:
    return (
        "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean, "
        "MAX(D.sample_value) AS peak "
        "FROM dataview "
        f"WHERE D.sample_value >= {threshold}"
    )


PRIME_SQL = "SELECT COUNT(*) AS n FROM dataview"


def same_rows(a, b) -> bool:
    """NaN-tolerant row equality (empty-input AVG yields NaN on both sides)."""
    rows_a, rows_b = a.to_dicts(), b.to_dicts()
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if va != vb and not (va != va and vb != vb):
                return False
    return True


def thresholds_by_selectivity(db) -> list[tuple[float, int]]:
    """(target selectivity, value threshold) pairs from enriched stats."""
    maxima = sorted(
        entry.ranges["D.sample_value"][1]
        for entry in db.database.chunk_stats.snapshot().values()
        if entry.enriched
    )
    total = len(maxima)
    pairs = []
    for target in SELECTIVITY_TARGETS:
        index = max(0, total - max(1, math.ceil(target * total)))
        pairs.append((target, int(maxima[index])))
    return pairs


def reset_tier(db, tier: str) -> None:
    """Put the recycler into the tier's starting state for one measurement.

    The previous measurement left an arbitrary subset warm, so each tier
    re-establishes its invariant: ``remote`` = both tiers cold, ``disk`` =
    every chunk committed on disk but none in memory, ``memory`` = every
    chunk resident.
    """
    if tier == "remote":
        db.database.recycler.clear(spilled=True)
        return
    db.query(PRIME_SQL)  # pull every chunk into the memory tier
    if tier == "disk":
        db.database.recycler.flush_to_store()
        db.database.recycler.clear(spilled=False)


def run_selectivity(args, repository, table) -> tuple[bool, dict]:
    """The pruning ablation; returns (results_identical, headline info)."""
    identical = True
    headline: dict = {}
    executors = [("serial", 1), ("thread", args.io_threads)]
    with tempfile.TemporaryDirectory(prefix="repro-bench-prune-") as scratch:
        for mode_index, (mode, io_threads) in enumerate(executors):
            for prune in (False, True):
                workdir = os.path.join(scratch, f"sel-{mode_index}-{prune}")
                db, _ = prepare(
                    "lazy", repository, workdir=workdir,
                    options=TwoStageOptions(
                        io_threads=io_threads, prune_chunks=prune
                    ),
                )
                db.database.chunk_loader.io_delay_ms = args.fetch_latency_ms
                db.query(PRIME_SQL)  # enrich every chunk's statistics
                pairs = thresholds_by_selectivity(db)
                for tier in ("remote", "disk", "memory"):
                    for target, threshold in pairs:
                        reset_tier(db, tier)
                        result = db.query(value_query(threshold))
                        survivors = len(result.rewrite.required_uris) - (
                            result.stats.chunks_pruned
                        )
                        selectivity = survivors / max(
                            1, len(result.rewrite.required_uris)
                        )
                        key = (mode, tier, target)
                        row = {
                            "stage2_s": result.stage_two_seconds,
                            "rows": result.table,
                            "pruned": result.stats.chunks_pruned,
                            "loaded": result.stats.chunks_loaded,
                            "rehydrated": result.stats.chunks_rehydrated,
                            "selectivity": selectivity,
                        }
                        if not prune:
                            headline[key] = {"off": row}
                            continue
                        baseline = headline[key]["off"]
                        identical &= same_rows(baseline["rows"], result.table)
                        speedup = baseline["stage2_s"] / max(
                            row["stage2_s"], 1e-9
                        )
                        headline[key]["on"] = row
                        headline[key]["speedup"] = speedup
                        table.add_row(
                            "selectivity", mode, tier,
                            round(selectivity, 3), threshold,
                            row["pruned"], row["loaded"], row["rehydrated"],
                            round(baseline["stage2_s"], 4),
                            round(row["stage2_s"], 4),
                            round(speedup, 2),
                        )
                db.close()
    return identical, headline


def walk_queries(days: int) -> list[list[str]]:
    """Per-station day-by-day walks (one sequential session each)."""
    walks = []
    for station, channel in STATIONS:
        walk = []
        for day in range(days):
            start = EPOCH_2010_MS + day * MILLIS_PER_DAY
            walk.append(
                t4_query(
                    QueryParams(
                        station=station, channel=channel,
                        start_ms=start, end_ms=start + MILLIS_PER_DAY,
                    )
                )
            )
        walks.append(walk)
    return walks


def run_prefetch(args, repository, stats, table) -> bool:
    """The prefetch ablation; returns results_identical."""
    days = stats.num_files // len(STATIONS)
    walks = walk_queries(days)
    identical = True
    reference: list | None = None
    base_latency = 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-prefetch-") as scratch:
        for enabled in (False, True):
            db, _ = prepare(
                "lazy", repository,
                workdir=os.path.join(scratch, f"walk-{enabled}"),
                options=TwoStageOptions(
                    io_threads=args.io_threads,
                    prune_chunks=enabled,
                    prefetch=enabled,
                ),
            )
            db.database.chunk_loader.io_delay_ms = args.fetch_latency_ms
            tables = []
            latency = 0.0
            loaded = prefetched = 0
            started = time.perf_counter()
            for walk in walks:
                with db.session() as session:
                    for sql in walk:
                        result = session.query(sql)
                        latency += result.seconds
                        loaded += result.stats.chunks_loaded
                        prefetched += result.stats.chunks_prefetched
                        tables.append(result.table)
                        time.sleep(args.think_ms / 1000.0)
            wall = time.perf_counter() - started
            if db.prefetcher is not None:
                db.prefetcher.wait_idle()
            db.close()
            if reference is None:
                reference = tables
                base_latency = latency
            else:
                identical &= len(tables) == len(reference) and all(
                    same_rows(a, b) for a, b in zip(reference, tables)
                )
            table.add_row(
                "prefetch", "on" if enabled else "off", "remote",
                "", args.think_ms, "", loaded, prefetched,
                round(base_latency, 4), round(latency, 4),
                round(base_latency / max(latency, 1e-9), 2),
            )
    return identical


def run(args: argparse.Namespace) -> tuple[ReportTable, bool]:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    table = ReportTable(
        title=(
            f"Chunk pruning + prefetch ablation (sf-{args.sf} {args.scale}, "
            f"{stats.num_files} chunks, {stats.num_samples:,} samples, "
            f"{args.fetch_latency_ms:g}ms modeled fetch)"
        ),
        headers=[
            "experiment", "mode", "tier", "selectivity", "threshold",
            "pruned", "loaded", "rehydrated", "off_s", "on_s", "speedup",
        ],
    )
    identical, headline = run_selectivity(args, repository, table)
    identical &= run_prefetch(args, repository, stats, table)

    best = [
        (key, info["speedup"])
        for key, info in headline.items()
        if key[1] == "remote"
        and "speedup" in info
        and info["on"]["selectivity"] <= 0.25
    ]
    if best:
        top = max(best, key=lambda kv: kv[1])
        table.add_note(
            "headline: remote-regime stage two at "
            f"{headline[top[0]]['on']['selectivity']:.0%} chunk selectivity "
            f"is {top[1]:.2f}x faster with pruning on "
            f"(executor={top[0][0]})"
        )
    table.add_note(
        "selectivity: threshold swept over per-chunk max quantiles; off_s/"
        "on_s are stage-two seconds with pruning off/on at identical tier "
        "state; value predicates are invisible to stage one, so the off "
        "baseline fetches every chunk"
    )
    table.add_note(
        "prefetch: day-by-day session walks with think time between "
        "queries; on = prune_chunks+prefetch, off_s/on_s are summed query "
        "latencies (think time excluded)"
    )
    table.add_note(
        f"results_identical={'yes' if identical else 'NO'} "
        "(pruned/prefetched vs baseline, every configuration)"
    )
    return table, identical


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="pruning ablation (selectivity × tier × executor)"
    )
    parser.add_argument("--io-threads", type=int, default=4)
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=5.0,
        help="modeled remote-repository fetch latency per chunk",
    )
    parser.add_argument(
        "--think-ms", type=float, default=10.0,
        help="client think time between a session's queries (prefetch "
        "experiment)",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="pruning.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.sf = 1
        args.scale = "test"
        args.io_threads = 2

    table, identical = run(args)
    text_path = table.emit("pruning.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if not identical:
        print("CORRECTNESS GATE FAILED: pruned results differ from baseline")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
