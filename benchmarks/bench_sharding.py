"""Sharded scatter-gather execution: shards × clients sweeps.

Four experiments motivated by the ROADMAP's scale-out item:

* **executor-compare** — one cold multi-chunk T4 query per stage-two
  executor (serial / thread / process) at the same ``io_threads``: the
  within-query decode-parallelism baseline sharding is measured against,
  re-measured on this runner (the JSON artifact embeds ``cpu_count`` so a
  1-core result is read as what it is);
* **cold-scatter** — one cold whole-table aggregate per shard count in
  the remote regime (modeled fetch latency): each shard worker fetches
  and decodes only its own partition, so the per-chunk latencies overlap
  across shards even on one core;
* **throughput remote** — shards × clients sweep draining a workload of
  whole-table scans with the loader's fetch-latency model enabled and
  the recycler capped below the working set: every query pays remote
  fetches for chunks spread across every shard, the latency-bound
  serving regime scatter-gather targets.  This is the headline scaling
  experiment;
* **throughput warm** — the same sweep with warm per-shard recyclers and
  no modeled latency: the pure-CPU regime, bounded by the core count (a
  1-core runner shows ≈1× and is reported honestly as such).

Every query result in every experiment is compared row-for-row against a
serial (unsharded) baseline; any drift makes the run exit nonzero.

Usage::

    PYTHONPATH=src python benchmarks/bench_sharding.py \
        --shards 1,2,4 --clients 1,2,4 --sf 3 --scale small
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke
"""

from __future__ import annotations

import argparse
import hashlib
import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.reporting import ReportTable  # noqa: E402
from repro.core.loading import prepare  # noqa: E402
from repro.core.two_stage import TwoStageOptions  # noqa: E402
from repro.data import SCALE_SMALL, SCALE_TEST, build_or_reuse  # noqa: E402
from repro.data.ingv import EPOCH_2010_MS, MILLIS_PER_DAY  # noqa: E402
from repro.engine.types import format_timestamp  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    TimeSpan,
    WorkloadSpec,
    generate_workload,
)
from repro.workloads.queries import QueryParams, t4_query  # noqa: E402

SCALES = {"test": SCALE_TEST, "small": SCALE_SMALL}
STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))


def build_workload(
    span: TimeSpan, queries_per_station: int, seed: int = 20150413
) -> list[str]:
    """A T4 mix across all stations, interleaved deterministically."""
    queries: list[str] = []
    for offset, (station, channel) in enumerate(STATIONS):
        spec = WorkloadSpec(
            query_type="T4",
            num_queries=queries_per_station,
            query_selectivity=0.5,
            workload_selectivity=1.0,
            station=station,
            channel=channel,
            seed=seed + offset,
        )
        queries.extend(generate_workload(spec, span))
    queries.sort(key=lambda sql: hashlib.md5(sql.encode()).hexdigest())
    return queries


def scan_query(span: TimeSpan) -> str:
    """A scan-dominated aggregate touching every chunk in the span."""
    return (
        "SELECT AVG(D.sample_value) AS avg_value, "
        "COUNT(D.sample_value) AS n_samples "
        f"FROM D WHERE D.sample_time >= '{format_timestamp(span.start_ms)}' "
        f"AND D.sample_time < '{format_timestamp(span.end_ms)}'"
    )


def serial_baseline(repository, queries: list[str]) -> dict[str, list[dict]]:
    """Expected rows per statement from an unsharded serial database."""
    db, _ = prepare("lazy", repository, options=TwoStageOptions(io_threads=1))
    try:
        return {sql: db.query(sql).table.to_dicts() for sql in queries}
    finally:
        db.close()


def sharded_options(shards: int) -> TwoStageOptions:
    if shards > 0:
        return TwoStageOptions(shards=shards)
    return TwoStageOptions(io_threads=1)


def open_database(
    repository,
    shards: int,
    workdir: str,
    fetch_latency_ms: float = 0.0,
    spill: bool = True,
    **kwargs,
):
    """A prepared lazy database with every shard worker already spawned.

    The latency model and spill setting are applied *before* the pools
    spawn — workers pickle the loader and inherit the recycler's spill
    setting at pool creation.  Pool spawn itself (one interpreter + numpy
    import per shard) is a one-time cost unrelated to steady-state
    scaling, so it is paid here, outside the timed sections.
    """
    db, _ = prepare(
        "lazy",
        repository,
        workdir=workdir,
        options=sharded_options(shards),
        **kwargs,
    )
    if fetch_latency_ms:
        db.database.chunk_loader.io_delay_ms = fetch_latency_ms
    if not spill:
        db.database.recycler.spill_on_evict = False
    if shards > 0:
        db.database.sharding(shards).warm_pools()
    return db


def measure_cold_scatter(
    repository,
    shards: int,
    span: TimeSpan,
    workdir: str,
    fetch_latency_ms: float,
    expected: list[dict],
) -> tuple[float, int]:
    """One cold whole-table scan; returns (seconds, mismatches)."""
    db, _ = prepare(
        "lazy", repository, workdir=workdir, options=sharded_options(shards)
    )
    try:
        # The latency model must be set before the pools spawn: each
        # worker pickles the loader (delay included) at pool creation.
        db.database.chunk_loader.io_delay_ms = fetch_latency_ms
        if shards > 0:
            db.database.sharding(shards).warm_pools()
        started = time.perf_counter()
        rows = db.query(scan_query(span)).table.to_dicts()
        seconds = time.perf_counter() - started
        return seconds, int(rows != expected)
    finally:
        db.close()


def measure_cold_executor(
    repository, executor: str, io_threads: int, span: TimeSpan, workdir: str
) -> tuple[float, int]:
    """One cold multi-chunk T4 query with the given decode executor."""
    db, _ = prepare(
        "lazy",
        repository,
        workdir=workdir,
        options=TwoStageOptions(io_threads=io_threads, executor=executor),
    )
    try:
        sql = t4_query(
            QueryParams(
                station="ISK",
                channel="BHE",
                start_ms=span.start_ms,
                end_ms=span.end_ms,
            )
        )
        started = time.perf_counter()
        result = db.query(sql)
        seconds = time.perf_counter() - started
        return seconds, result.stats.chunks_loaded
    finally:
        db.close()


def measure_throughput(
    db, queries: list[str], expected: dict[str, list[dict]], clients: int
) -> tuple[float, float, int]:
    """Drain the workload with N pooled client threads, verifying rows.

    Returns ``(wall_seconds, queries_per_second, mismatches)``.
    """
    pool = db.session_pool(size=clients)
    cursor = iter(queries)
    mismatches = [0] * clients

    def drain(slot: int) -> None:
        with pool.session() as session:
            while True:
                try:
                    sql = next(cursor)  # GIL-atomic enough for a benchmark
                except StopIteration:
                    return
                rows = session.query(sql).table.to_dicts()
                if rows != expected[sql]:
                    mismatches[slot] += 1

    started = time.perf_counter()
    if clients == 1:
        drain(0)
    else:
        with ThreadPoolExecutor(max_workers=clients) as executor:
            list(executor.map(drain, range(clients)))
    wall = time.perf_counter() - started
    return wall, len(queries) / wall, sum(mismatches)


def run(args: argparse.Namespace) -> tuple[ReportTable, int]:
    repository, stats = build_or_reuse(
        args.base, args.sf, SCALES[args.scale], fiam_only=False
    )
    days = stats.num_files // 4  # one file per station per day
    span = TimeSpan(EPOCH_2010_MS, EPOCH_2010_MS + days * MILLIS_PER_DAY)
    queries = build_workload(span, args.queries_per_station)
    expected = serial_baseline(repository, queries + [scan_query(span)])

    table = ReportTable(
        title=(
            f"Sharded scatter-gather (sf-{args.sf} {args.scale}, "
            f"{stats.num_files} chunks, {stats.num_samples:,} samples)"
        ),
        headers=[
            "experiment", "shards", "clients", "queries",
            "wall_s", "qps", "speedup",
        ],
    )
    mismatches = 0

    with tempfile.TemporaryDirectory(prefix="repro-bench-shard-") as root:
        # -- decode-executor baseline (thread vs process, cold) ---------
        serial_seconds = None
        for index, (executor, io_threads) in enumerate(
            [("thread", 1), ("thread", args.executor_threads),
             ("process", args.executor_threads)]
        ):
            seconds, chunks = measure_cold_executor(
                repository, executor, io_threads, span,
                os.path.join(root, f"exec{index}"),
            )
            if serial_seconds is None:
                serial_seconds = seconds
            label = "serial" if io_threads == 1 else executor
            table.add_row(
                f"executor {label} x{io_threads} ({chunks} chunks)",
                0, 1, 1, round(seconds, 4), round(1 / seconds, 2),
                round(serial_seconds / seconds, 2),
            )

        # -- cold scatter-gather (remote regime) ------------------------
        serial_seconds = None
        for shards in [0] + args.shards:
            seconds, bad = measure_cold_scatter(
                repository, shards, span,
                os.path.join(root, f"cold{shards}"),
                args.fetch_latency_ms,
                expected[scan_query(span)],
            )
            mismatches += bad
            if serial_seconds is None:
                serial_seconds = seconds
            table.add_row(
                f"cold-scatter ({args.fetch_latency_ms:g}ms fetch)",
                shards, 1, 1, round(seconds, 4), round(1 / seconds, 2),
                round(serial_seconds / seconds, 2),
            )

        # -- remote-regime throughput (the headline sweep) --------------
        # Capped recycler + fetch latency + whole-table scans: every
        # query blocks on remote fetches spread across every shard, so
        # the modeled latencies overlap across worker processes.
        scans = [scan_query(span)] * args.scan_rounds
        baselines: dict[int, float] = {}
        for shards in args.shards:
            db = open_database(
                repository, shards, os.path.join(root, f"remote{shards}"),
                fetch_latency_ms=args.fetch_latency_ms,
                spill=False,
                recycler_bytes=args.remote_recycler_bytes,
            )
            try:
                db.query(queries[0])  # derive DMd outside the timing
                for clients in args.clients:
                    wall, qps, bad = measure_throughput(
                        db, scans, expected, clients
                    )
                    mismatches += bad
                    baselines.setdefault(clients, qps)
                    table.add_row(
                        f"throughput remote ({args.fetch_latency_ms:g}ms "
                        "fetch)",
                        shards, clients, len(scans), round(wall, 4),
                        round(qps, 2), round(qps / baselines[clients], 2),
                    )
            finally:
                db.close()

        # -- warm throughput (CPU-bound ceiling) ------------------------
        baselines = {}
        for shards in args.shards:
            db = open_database(
                repository, shards, os.path.join(root, f"warm{shards}")
            )
            try:
                for sql in queries:  # load every shard's working set
                    db.query(sql)
                for clients in args.clients:
                    wall, qps, bad = measure_throughput(
                        db, queries, expected, clients
                    )
                    mismatches += bad
                    baselines.setdefault(clients, qps)
                    table.add_row(
                        "throughput warm", shards, clients, len(queries),
                        round(wall, 4), round(qps, 2),
                        round(qps / baselines[clients], 2),
                    )
            finally:
                db.close()

    table.add_note(
        "speedup: executor rows vs serial; cold-scatter rows vs shards=0 "
        "(unsharded serial); throughput rows vs the first shard count at "
        "the same client count"
    )
    table.add_note(
        "remote = capped recycler + modeled fetch latency (latency-bound "
        "regime: per-chunk waits overlap across shard processes even on "
        "one core); warm = per-shard recyclers hold the working set "
        "(pure-CPU regime, bounded by the host core count in metadata)"
    )
    table.add_note(
        "every result in every experiment is compared row-for-row against "
        "the serial unsharded baseline"
    )
    if mismatches:
        table.add_note(
            f"RESULT DRIFT: {mismatches} sharded result(s) differed from "
            "the serial baseline"
        )
    return table, mismatches


def parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sharded scatter-gather benchmark (shards × clients)"
    )
    parser.add_argument("--shards", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--clients", type=parse_int_list, default=[1, 2, 4])
    parser.add_argument("--sf", type=int, default=3, choices=(1, 3, 9, 27))
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument(
        "--queries-per-station", type=int, default=6,
        help="T4 workload size is 4 stations × this",
    )
    parser.add_argument(
        "--fetch-latency-ms", type=float, default=10.0,
        help="modeled remote-repository fetch latency per chunk",
    )
    parser.add_argument(
        "--executor-threads", type=int, default=4,
        help="io_threads for the thread/process executor baseline",
    )
    parser.add_argument(
        "--scan-rounds", type=int, default=6,
        help="whole-table scans per client count in the remote sweep",
    )
    parser.add_argument(
        "--remote-recycler-bytes", type=int, default=512 * 1024,
        help="recycler budget for the remote experiment (below working set)",
    )
    parser.add_argument(
        "--base",
        default=os.path.join(tempfile.gettempdir(), "repro-bench-data"),
        help="dataset cache directory",
    )
    parser.add_argument(
        "--out", default="sharding.json", help="JSON artifact filename"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI configuration (sf-1 test data, short sweeps)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.shards = [1, 2, 4]
        args.clients = [1, 2]
        args.queries_per_station = 2
        args.fetch_latency_ms = 10.0
        # Below the sf-1 working set so the remote regime refetches even
        # at the smoke scale.
        args.remote_recycler_bytes = 64 * 1024
        args.sf = 1
        args.scale = "test"

    table, mismatches = run(args)
    text_path = table.emit("sharding.txt")
    json_path = table.save_json(args.out)
    print(f"\nsaved to {text_path} and {json_path}")
    if mismatches:
        print(
            f"FAILED: {mismatches} sharded result(s) differed from the "
            "serial baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
