"""Table II — INGV dataset characteristics per scale factor.

Regenerates the rows of the paper's Table II (files / segments / data
records for sf-1..sf-27) from the synthetic repositories, alongside the
paper's own numbers for comparison.
"""

from conftest import run_once

from repro.bench import run_table2


def test_table2_dataset(benchmark, ctx):
    table = run_once(benchmark, lambda: run_table2(ctx))
    table.emit("table2_dataset.txt")
    assert len(table.rows) == len(ctx.profile.scale_factors)
    # Structural invariants of Table II: files = 4 stations x days and
    # monotone growth across scale factors.
    files = [row[1] for row in table.rows]
    segments = [row[2] for row in table.rows]
    samples = [row[3] for row in table.rows]
    assert files == sorted(files)
    assert segments == sorted(segments)
    assert samples == sorted(samples)
