#!/usr/bin/env python3
"""The five loading approaches head to head (a miniature Figure 6 + 7).

Prepares the same repository with eager_csv, eager_plain, eager_index,
eager_dmd and lazy; prints the preparation-cost breakdown, the storage
account (Table III's columns) and then a cold T4/T5 query on each.

Run:  python examples/loading_showdown.py
"""

import tempfile
import time

from repro import prepare
from repro.data import SCALE_TEST, build_or_reuse
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t4_query, t5_query

MILLIS_PER_DAY = 24 * 3600 * 1000
APPROACHES = ("eager_csv", "eager_plain", "eager_index", "eager_dmd", "lazy")


def main() -> None:
    base = tempfile.mkdtemp(prefix="repro-showdown-")
    repository, stats = build_or_reuse(base, scale_factor=3, scale=SCALE_TEST)
    print(
        f"repository: {stats.num_files} chunks, "
        f"{stats.num_samples:,} samples, {stats.repo_bytes:,} bytes\n"
    )

    params = QueryParams(
        station="ISK",
        channel="BHE",
        start_ms=EPOCH_2010_MS,
        end_ms=EPOCH_2010_MS + 2 * MILLIS_PER_DAY,
        max_val_threshold=1000.0,
        std_dev_threshold=10.0,
    )

    header = (
        f"{'approach':<12} {'prep':>9} {'breakdown':<46} "
        f"{'db bytes':>12} {'T4 cold':>9} {'T5 cold':>9}"
    )
    print(header)
    print("-" * len(header))
    for approach in APPROACHES:
        db, report = prepare(approach, repository)
        breakdown = " ".join(
            f"{bucket}={seconds * 1000:.0f}ms"
            for bucket, seconds in report.seconds.items()
        )
        db.drop_caches()
        started = time.perf_counter()
        t4_answer = db.query(t4_query(params)).table.to_dicts()[0]
        t4_cold = time.perf_counter() - started
        db.drop_caches()
        started = time.perf_counter()
        db.query(t5_query(params))
        t5_cold = time.perf_counter() - started
        print(
            f"{approach:<12} {report.total_seconds * 1000:>7.0f}ms "
            f"{breakdown:<46} {report.db_bytes:>12,} "
            f"{t4_cold * 1000:>7.0f}ms {t5_cold * 1000:>7.0f}ms"
        )
        if approach == APPROACHES[0]:
            reference = t4_answer
        else:
            assert t4_answer == reference, "approaches must agree!"
        db.close()

    print(
        "\nSame answers everywhere — lazy loading changes the cost profile "
        "(tiny preparation, pay-per-chunk queries), not the semantics."
    )


if __name__ == "__main__":
    main()
