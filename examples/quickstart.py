#!/usr/bin/env python3
"""Quickstart: register a chunked file repository and query it lazily.

Builds a small synthetic seismic repository (the INGV stand-in), registers
it with a SommelierDB — which loads *only the metadata* — and runs the
paper's Query 1.  Watch the run-time optimizer pick exactly the chunks the
query needs, and the Recycler make the second run free.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import SommelierDB
from repro.data import SCALE_TEST, build_or_reuse


def main() -> None:
    base = tempfile.mkdtemp(prefix="repro-quickstart-")
    print("Building a synthetic chunk repository (sf-1, test scale)...")
    repository, stats = build_or_reuse(base, scale_factor=1, scale=SCALE_TEST)
    print(
        f"  {stats.num_files} chunk files, {stats.num_segments} segments, "
        f"{stats.num_samples:,} samples, {stats.repo_bytes:,} bytes on disk"
    )

    print("\nRegistering the repository (metadata only)...")
    db = SommelierDB.create()
    report = db.register_repository(repository)
    print(
        f"  registrar: {report.num_files} files in {report.seconds:.3f}s, "
        f"metadata footprint {report.metadata_bytes:,} bytes"
    )
    print("  table D (actual data) rows:",
          db.database.catalog.table("D").num_rows)

    query = """
        SELECT AVG(D.sample_value) AS avg_value,
               COUNT(D.sample_value) AS n_samples
        FROM dataview
        WHERE F.station = 'ISK' AND F.channel = 'BHE'
          AND D.sample_time >= '2010-01-01T06:00:00.000'
          AND D.sample_time <  '2010-01-01T09:00:00.000'
    """

    print("\nThe compiled two-stage plan:")
    print(db.explain(query))

    print("\nFirst (cold) run:")
    result = db.query(query)
    print(f"  answer: {result.table.to_dicts()}")
    print(
        f"  {result.seconds * 1000:.1f}ms total; stage one "
        f"{result.stage_one_seconds * 1000:.1f}ms; "
        f"chunks required={len(result.rewrite.required_uris)}, "
        f"loaded={result.stats.chunks_loaded}"
    )

    print("\nSecond (hot) run — the Recycler serves the chunk:")
    again = db.query(query)
    print(
        f"  {again.seconds * 1000:.1f}ms total; chunks loaded="
        f"{again.stats.chunks_loaded}, from cache="
        f"{again.stats.chunks_from_cache}"
    )
    db.close()


if __name__ == "__main__":
    main()
