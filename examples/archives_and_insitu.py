#!/usr/bin/env python3
"""Extension tour: internally-chunked archives and in-situ chunk access.

Two of the paper's extension points, working together:

* Section II-C notes that chunks do not always map to files — BAM files in
  genomics are "huge files [that] are internally chunked".  We pack a whole
  repository into one ``.xar`` archive and register it; every chunk keeps
  its identity via ``archive#member`` URIs.
* Section VII calls NoDB-style in-situ accessors "orthogonal and even
  complementary ... to provide sub-chunk access granularity".  With the
  ``in_situ`` strategy, a chunk access decodes only the segments that
  overlap the query's time window.

Run:  python examples/archives_and_insitu.py
"""

import os
import tempfile

from repro import SommelierDB
from repro.data import SCALE_TEST, build_or_reuse
from repro.mseed.archive import ArchiveRepository, pack_archive
from repro.workloads import QueryParams, t4_query
from repro.data.ingv import EPOCH_2010_MS

HOUR_MS = 3600 * 1000


def main() -> None:
    base = tempfile.mkdtemp(prefix="repro-archive-")
    repository, stats = build_or_reuse(base, scale_factor=1, scale=SCALE_TEST)

    # Pack the whole repository into a single internally-chunked archive.
    archive_path = os.path.join(base, "bundle.xar")
    chunk_paths = [c.uri for c in repository.list_chunks()]
    archive_bytes = pack_archive(archive_path, chunk_paths)
    archive = ArchiveRepository(archive_path)
    print(
        f"packed {stats.num_files} chunk files "
        f"({stats.repo_bytes:,} bytes) into one archive "
        f"({archive_bytes:,} bytes, {archive.num_chunks} members)"
    )

    db = SommelierDB.create()
    report = db.register_repository(archive)
    print(
        f"registered the archive: {report.num_files} chunks, "
        f"{report.num_segments} segments, {report.seconds * 1000:.1f}ms\n"
    )

    # A narrow two-hour window inside one day.
    sql = t4_query(
        QueryParams(
            station="FIAM",
            channel="HHZ",
            start_ms=EPOCH_2010_MS + 6 * HOUR_MS,
            end_ms=EPOCH_2010_MS + 8 * HOUR_MS,
        )
    )

    print("full-load strategy (decode the whole member, cache it):")
    result = db.query(sql)
    print(
        f"  answer={result.table.to_dicts()}  "
        f"rows ingested={result.stats.chunk_rows_loaded:,}"
    )

    db.drop_caches()
    db.database.chunk_access_strategy = "in_situ"
    print("\nin-situ strategy (decode only overlapping segments):")
    result = db.query(sql)
    print(
        f"  answer={result.table.to_dicts()}  "
        f"rows ingested={result.stats.chunk_rows_loaded:,}"
    )
    print(
        "\nsame answer, fewer decoded rows — sub-chunk granularity inside "
        "an internally-chunked archive."
    )
    db.close()


if __name__ == "__main__":
    main()
