#!/usr/bin/env python3
"""Interactive seismology exploration: the paper's motivating scenario.

A seismologist points the system at a repository of waveform chunks and
explores: first the metadata (which stations? how much data?), then derived
hourly summaries (where is the signal volatile?), and finally the waveform
itself — each step touching only the data it needs.  Exercises all five
query types of Table I and Algorithm 1's incremental derivation.

Run:  python examples/seismology_exploration.py
"""

import tempfile

from repro import SommelierDB
from repro.data import SCALE_TEST, build_or_reuse


def show(title: str, db: SommelierDB, sql: str) -> None:
    result, derivation = db.query_with_derivation(sql)
    print(f"\n--- {title} ({db.query_type(sql).value}) ---")
    if derivation.applicable and derivation.psu_size:
        print(
            f"  [Algorithm 1] derived {derivation.windows_inserted} new "
            f"window(s) for {derivation.psu_size} uncovered key(s), "
            f"loading {derivation.chunks_loaded} chunk(s)"
        )
    elif derivation.applicable:
        print("  [Algorithm 1] derived metadata already covered (PSu empty)")
    for row in result.table.to_dicts()[:6]:
        print("  ", row)
    if result.table.num_rows > 6:
        print(f"   ... {result.table.num_rows - 6} more rows")
    print(
        f"  {result.seconds * 1000:.1f}ms, "
        f"{result.stats.chunks_loaded} chunk(s) loaded"
    )


def main() -> None:
    base = tempfile.mkdtemp(prefix="repro-explore-")
    repository, _ = build_or_reuse(base, scale_factor=3, scale=SCALE_TEST)
    db = SommelierDB.create()
    db.register_repository(repository)

    # T1 — what is in the cellar?  Metadata only, no chunk touched.
    show(
        "What did station FIAM record?",
        db,
        """
        SELECT F.station AS station, COUNT(S.segment_no) AS segments,
               SUM(S.sample_count) AS samples
        FROM gmdview WHERE F.station = 'FIAM' GROUP BY F.station
        """,
    )

    # T2 — hourly summaries: Algorithm 1 derives them on first touch.
    show(
        "Hourly summary metadata for FIAM (first touch derives it)",
        db,
        """
        SELECT H.window_start_ts, H.window_max_val, H.window_std_dev
        FROM H
        WHERE H.window_station = 'FIAM'
          AND H.window_start_ts >= '2010-01-01T00:00:00.000'
          AND H.window_start_ts <  '2010-01-01T12:00:00.000'
        ORDER BY window_start_ts
        """,
    )

    # T3 — same summaries joined back to the given metadata.
    show(
        "Windows overlapping segments (DMd ⋈ GMd; already covered)",
        db,
        """
        SELECT H.window_start_ts, MAX(H.window_max_val) AS max_val,
               COUNT(S.segment_no) AS overlapping_segments
        FROM windowmetaview
        WHERE F.station = 'FIAM'
          AND H.window_start_ts >= '2010-01-01T00:00:00.000'
          AND H.window_start_ts <  '2010-01-01T06:00:00.000'
        GROUP BY H.window_start_ts ORDER BY H.window_start_ts
        """,
    )

    # T4 — the short-term average of Query 1 (actual data, lazily loaded).
    show(
        "Short-term average over a 2-hour window (Query 1 shape)",
        db,
        """
        SELECT AVG(D.sample_value) AS avg_value, COUNT(D.sample_value) AS n
        FROM dataview
        WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
          AND D.sample_time >= '2010-01-02T10:00:00.000'
          AND D.sample_time <  '2010-01-02T12:00:00.000'
        """,
    )

    # T5 — Query 2: bring waveform data only for volatile, high-amplitude
    # hours, found via the derived metadata.
    show(
        "Waveform peaks in volatile hours (Query 2 shape)",
        db,
        """
        SELECT MAX(D.sample_value) AS peak, COUNT(D.sample_value) AS n
        FROM windowdataview
        WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
          AND H.window_start_ts >= '2010-01-01T00:00:00.000'
          AND H.window_start_ts <  '2010-01-03T00:00:00.000'
          AND H.window_max_val > 1000 AND H.window_std_dev > 10
        """,
    )

    print("\n--- session stats ---")
    print(
        f"  queries: {db.stats.queries_executed}, "
        f"derivations: {db.stats.derivations}, "
        f"windows materialized: {db.stats.windows_materialized}, "
        f"chunks loaded in total: {db.stats.chunks_loaded_total}"
    )
    print(
        f"  recycler: {len(db.database.recycler)} chunk(s) cached, "
        f"{db.database.recycler.bytes_cached:,} bytes"
    )
    db.close()


if __name__ == "__main__":
    main()
