#!/usr/bin/env python3
"""Approximate query answering over chunk samples (paper Section VIII).

When a query selects many chunks, lazy loading shifts a large cost to query
time.  The sampler runs stage one exactly (metadata is cheap), loads only a
fraction of the required chunks, and estimates the aggregates with
standard errors — trading accuracy for latency, as the paper's future-work
section proposes.

Run:  python examples/approximate_answers.py
"""

import tempfile
import time

from repro import SommelierDB
from repro.data import SCALE_TEST, build_or_reuse
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def main() -> None:
    base = tempfile.mkdtemp(prefix="repro-approx-")
    # FIAM-only repository, sf-9: plenty of chunks for one station.
    repository, stats = build_or_reuse(
        base, scale_factor=9, scale=SCALE_TEST, fiam_only=True
    )
    db = SommelierDB.create()
    db.register_repository(repository)
    print(f"repository: {stats.num_files} chunks from station FIAM\n")

    # A query over the entire time span — every chunk is relevant.
    sql = t4_query(
        QueryParams(
            station="FIAM",
            channel="HHZ",
            start_ms=EPOCH_2010_MS,
            end_ms=EPOCH_2010_MS + 400 * MILLIS_PER_DAY,
        )
    )

    started = time.perf_counter()
    exact = db.query(sql)
    exact_seconds = time.perf_counter() - started
    exact_row = exact.table.to_dicts()[0]
    print(
        f"exact answer:  avg={exact_row['avg_value']:.3f} "
        f"n={exact_row['n_samples']:,} "
        f"({exact_seconds * 1000:.0f}ms, "
        f"{exact.stats.chunks_loaded} chunks loaded)"
    )

    for fraction in (0.5, 0.25, 0.1):
        db.drop_caches()  # make the sample pay its own loading costs
        started = time.perf_counter()
        approx = db.approximate_query(sql, fraction=fraction)
        seconds = time.perf_counter() - started
        avg = approx.estimate_by_name("avg_value")
        count = approx.estimate_by_name("n_samples")
        stderr = f"±{avg.standard_error:.3f}" if avg.standard_error else ""
        print(
            f"sample {fraction:>4.0%}:  avg={avg.estimate:.3f}{stderr} "
            f"n≈{count.estimate:,.0f} "
            f"({seconds * 1000:.0f}ms, {approx.chunks_sampled}/"
            f"{approx.chunks_total} chunks)"
        )
    db.close()


if __name__ == "__main__":
    main()
