"""Runtime lock-order sanitizer: factories, edge graph, inversion detection."""

import threading

import pytest

from repro.util.lock_sanitizer import (
    ENV_FLAG,
    LockOrderViolation,
    SanitizedLock,
    make_lock,
    make_rlock,
    observed_edges,
    reset_observed_edges,
    sanitizer_enabled,
)


@pytest.fixture
def clean_graph():
    reset_observed_edges()
    yield
    reset_observed_edges()


class TestFactories:
    def test_disabled_returns_plain_primitives(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not sanitizer_enabled()
        lock = make_lock("X._lock")
        rlock = make_rlock("X._rlock")
        assert not isinstance(lock, SanitizedLock)
        assert not isinstance(rlock, SanitizedLock)
        with lock:
            with rlock:
                with rlock:  # reentrancy of the plain RLock
                    pass

    def test_zero_counts_as_disabled(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not sanitizer_enabled()

    def test_enabled_returns_sanitized_wrappers(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert sanitizer_enabled()
        assert isinstance(make_lock("X._lock"), SanitizedLock)
        assert isinstance(make_rlock("X._rlock"), SanitizedLock)


class TestOrderGraph:
    def test_consistent_order_records_edges(self, clean_graph):
        a = SanitizedLock("A._lock")
        b = SanitizedLock("B._lock")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert observed_edges() == [("A._lock", "B._lock")]

    def test_inversion_raises(self, clean_graph):
        a = SanitizedLock("A._lock")
        b = SanitizedLock("B._lock")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderViolation, match="inversion"):
                a.acquire()

    def test_inversion_detected_without_real_contention(self, clean_graph):
        # The edge graph is global across threads: thread 1 establishes
        # A -> B, thread 2's B -> A raises even though no deadlock
        # materializes in this schedule.
        a = SanitizedLock("A._lock")
        b = SanitizedLock("B._lock")
        failures = []

        def establish():
            with a:
                with b:
                    pass

        def invert():
            try:
                with b:
                    with a:
                        pass
            except LockOrderViolation as exc:
                failures.append(exc)

        t1 = threading.Thread(target=establish)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=invert)
        t2.start()
        t2.join()
        assert len(failures) == 1

    def test_same_name_nesting_is_not_an_edge(self, clean_graph):
        # Striped locks share one name; nesting distinct objects under
        # the same name must not self-edge.
        s1 = SanitizedLock("Recycler._stripes")
        s2 = SanitizedLock("Recycler._stripes")
        with s1:
            with s2:
                pass
        assert observed_edges() == []

    def test_reset_clears_edges(self, clean_graph):
        a = SanitizedLock("A._lock")
        b = SanitizedLock("B._lock")
        with a:
            with b:
                pass
        reset_observed_edges()
        assert observed_edges() == []
        # The inverse order is now legal again.
        with b:
            with a:
                pass
        assert observed_edges() == [("B._lock", "A._lock")]


class TestReentrancy:
    def test_rlock_reacquire_is_fine(self, clean_graph):
        lock = SanitizedLock("C._lock", reentrant=True)
        with lock:
            with lock:
                assert lock.locked()
        assert not lock.locked()

    def test_plain_lock_reacquire_raises_instead_of_hanging(
        self, clean_graph
    ):
        lock = SanitizedLock("C._lock")
        with lock:
            with pytest.raises(LockOrderViolation, match="re-acquired"):
                lock.acquire()
        assert not lock.locked()

    def test_rlock_reacquire_records_no_self_edge(self, clean_graph):
        lock = SanitizedLock("C._lock", reentrant=True)
        with lock:
            with lock:
                pass
        assert observed_edges() == []


class TestLockProtocol:
    def test_nonblocking_acquire(self, clean_graph):
        lock = SanitizedLock("C._lock")
        assert lock.acquire(blocking=False) is True
        assert lock.locked()
        lock.release()
        assert not lock.locked()

    def test_nonblocking_acquire_failure_leaves_stack_clean(
        self, clean_graph
    ):
        lock = SanitizedLock("C._lock")
        holder_done = threading.Event()
        release_now = threading.Event()

        def hold():
            with lock:
                holder_done.set()
                release_now.wait(timeout=5)

        thread = threading.Thread(target=hold)
        thread.start()
        holder_done.wait(timeout=5)
        assert lock.acquire(blocking=False) is False
        release_now.set()
        thread.join()
        # Our failed attempt must not have been pushed as "held".
        other = SanitizedLock("D._lock")
        with other:
            pass
        assert observed_edges() == []

    def test_context_manager_returns_true(self, clean_graph):
        lock = SanitizedLock("C._lock")
        with lock as acquired:
            assert acquired is True

    def test_repr_names_the_lock(self):
        assert "C._lock" in repr(SanitizedLock("C._lock"))
