"""Tests for the in-situ (NoDB-style) chunk-access strategy (§VII)."""

import pytest

from repro.workloads import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000
HOUR_MS = 3600 * 1000


@pytest.fixture()
def narrow_sql(day_range):
    start, _ = day_range
    return t4_query(
        QueryParams(
            station="ISK",
            channel="BHE",
            start_ms=start + 2 * HOUR_MS,
            end_ms=start + 4 * HOUR_MS,
        )
    )


class TestInSituStrategy:
    def test_same_answer_as_full_load(self, tiny_repo, narrow_sql):
        from repro.core.loading import prepare

        full_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.database.chunk_access_strategy = "in_situ"
        assert (
            insitu_db.query(narrow_sql).table.to_dicts()
            == full_db.query(narrow_sql).table.to_dicts()
        )
        full_db.close()
        insitu_db.close()

    def test_fewer_rows_ingested(self, tiny_repo, narrow_sql):
        from repro.core.loading import prepare

        full_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.database.chunk_access_strategy = "in_situ"
        full = full_db.query(narrow_sql)
        partial = insitu_db.query(narrow_sql)
        assert partial.stats.chunk_rows_loaded < full.stats.chunk_rows_loaded
        full_db.close()
        insitu_db.close()

    def test_partial_loads_not_cached(self, tiny_repo, narrow_sql):
        from repro.core.loading import prepare

        insitu_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.database.chunk_access_strategy = "in_situ"
        insitu_db.query(narrow_sql)
        # The recycler must not contain partial chunks (they would poison
        # later queries with different predicates).
        assert len(insitu_db.database.recycler) == 0
        insitu_db.close()

    def test_second_query_wider_range_correct(self, tiny_repo, day_range):
        from repro.core.loading import prepare

        start, end = day_range
        narrow = t4_query(
            QueryParams("ISK", "BHE", start + 2 * HOUR_MS, start + 3 * HOUR_MS)
        )
        wide = t4_query(QueryParams("ISK", "BHE", start, end))
        insitu_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.database.chunk_access_strategy = "in_situ"
        reference_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.query(narrow)
        assert (
            insitu_db.query(wide).table.to_dicts()
            == reference_db.query(wide).table.to_dicts()
        )
        insitu_db.close()
        reference_db.close()

    def test_falls_back_without_time_predicate(self, tiny_repo):
        from repro.core.loading import prepare

        sql = """
            SELECT COUNT(D.sample_value) AS n FROM dataview
            WHERE F.station = 'ISK' AND F.channel = 'BHE'
        """
        insitu_db, _ = prepare("lazy", tiny_repo[0])
        insitu_db.database.chunk_access_strategy = "in_situ"
        reference_db, _ = prepare("lazy", tiny_repo[0])
        assert (
            insitu_db.query(sql).table.to_dicts()
            == reference_db.query(sql).table.to_dicts()
        )
        insitu_db.close()
        reference_db.close()
