"""Tests for approximate query answering via chunk sampling (§VIII)."""


import pytest

from repro.core.sampling import ChunkSampler
from repro.engine.errors import PlanError
from repro.workloads import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


@pytest.fixture()
def t4_sql(two_day_range):
    start, end = two_day_range
    return t4_query(
        QueryParams(station="ISK", channel="BHE", start_ms=start, end_ms=end)
    )


class TestChunkSampler:
    def test_full_fraction_is_exact(self, lazy_db, t4_sql):
        exact = lazy_db.query(t4_sql).table.to_dicts()[0]
        approx = lazy_db.approximate_query(t4_sql, fraction=1.0)
        assert approx.exact
        assert approx.estimate_by_name("avg_value").estimate == pytest.approx(
            exact["avg_value"]
        )
        assert approx.estimate_by_name("n_samples").estimate == pytest.approx(
            exact["n_samples"]
        )

    def test_partial_sample_loads_fewer_chunks(self, lazy_db, t4_sql):
        approx = lazy_db.approximate_query(t4_sql, fraction=0.5)
        assert approx.chunks_sampled < approx.chunks_total or (
            approx.chunks_total <= 2  # min_chunks floor
        )
        assert approx.chunks_sampled >= 1

    def test_avg_estimate_reasonable(self, lazy_db, t4_sql):
        exact = lazy_db.query(t4_sql).table.to_dicts()[0]["avg_value"]
        approx = lazy_db.approximate_query(t4_sql, fraction=0.5)
        estimate = approx.estimate_by_name("avg_value").estimate
        # Chunk means of the synthetic signal are near zero with noise;
        # assert the estimate is in a loose absolute band around exact.
        assert abs(estimate - exact) < 500

    def test_count_scales_with_inverse_fraction(self, lazy_db, t4_sql):
        exact = lazy_db.query(t4_sql).table.to_dicts()[0]["n_samples"]
        approx = lazy_db.approximate_query(t4_sql, fraction=0.5)
        estimate = approx.estimate_by_name("n_samples").estimate
        assert 0.4 * exact < estimate < 2.5 * exact

    def test_min_max_flagged_as_bounds(self, lazy_db, two_day_range):
        start, end = two_day_range
        sql = f"""
            SELECT MAX(D.sample_value) AS peak FROM dataview
            WHERE F.station = 'ISK' AND F.channel = 'BHE'
              AND D.sample_time >= '{QueryParams(start_ms=start).start_iso}'
              AND D.sample_time < '{QueryParams(start_ms=end).start_iso}'
        """
        approx = lazy_db.approximate_query(sql, fraction=1.0)
        assert approx.estimate_by_name("peak").is_bound

    def test_group_by_rejected(self, lazy_db, two_day_range):
        start, end = two_day_range
        sql = """
            SELECT F.station, COUNT(*) AS n FROM dataview GROUP BY F.station
        """
        with pytest.raises(PlanError):
            lazy_db.approximate_query(sql)

    def test_non_aggregate_rejected(self, lazy_db):
        with pytest.raises(PlanError):
            lazy_db.approximate_query("SELECT F.station FROM F")

    def test_invalid_fraction(self, lazy_db):
        with pytest.raises(ValueError):
            ChunkSampler(
                lazy_db.database, lazy_db.config, lazy_db.compiler,
                fraction=0.0,
            )

    def test_deterministic_given_seed(self, lazy_db, t4_sql):
        a = lazy_db.approximate_query(t4_sql, fraction=0.5, seed=1)
        b = lazy_db.approximate_query(t4_sql, fraction=0.5, seed=1)
        assert (
            a.estimate_by_name("avg_value").estimate
            == b.estimate_by_name("avg_value").estimate
        )

    def test_no_matching_chunks(self, lazy_db):
        sql = """
            SELECT COUNT(D.sample_value) AS n FROM dataview
            WHERE F.station = 'NOPE' AND F.channel = 'X'
        """
        approx = lazy_db.approximate_query(sql)
        assert approx.chunks_total == 0
        assert approx.estimate_by_name("n").estimate == 0

    def test_stderr_present_with_multiple_chunks(self, lazy_db, t4_sql):
        approx = lazy_db.approximate_query(t4_sql, fraction=1.0)
        if approx.chunks_sampled > 1:
            assert approx.estimate_by_name("avg_value").standard_error is not None
