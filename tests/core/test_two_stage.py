"""Tests for the two-stage execution model and the run-time rewrite."""


from repro.core.two_stage import TwoStageOptions
from repro.engine import algebra
from repro.engine.mal import CallRuntimeOptimizer, EvalPlan, ReturnValue
from repro.workloads import QueryParams, t1_query, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def t4(two_day_range, station="ISK", channel="BHE"):
    start, end = two_day_range
    return t4_query(
        QueryParams(station=station, channel=channel, start_ms=start, end_ms=end)
    )


class TestCompilation:
    def test_program_shape(self, lazy_db, two_day_range):
        compiled = lazy_db.compiler.compile(lazy_db.bind(t4(two_day_range)))
        kinds = [type(i) for i in compiled.program.instructions]
        assert kinds == [EvalPlan, CallRuntimeOptimizer, EvalPlan, ReturnValue]

    def test_qf_leaves_are_metadata_only(self, lazy_db, two_day_range):
        compiled = lazy_db.compiler.compile(lazy_db.bind(t4(two_day_range)))
        reds = lazy_db.database.catalog.metadata_table_names()
        assert compiled.qf_plan.base_tables() <= reds

    def test_qs_references_result_scan(self, lazy_db, two_day_range):
        compiled = lazy_db.compiler.compile(lazy_db.bind(t4(two_day_range)))

        def has_result_scan(node):
            if isinstance(node, algebra.ResultScan):
                return True
            return any(has_result_scan(c) for c in node.children())

        assert has_result_scan(compiled.qs_plan)

    def test_time_bounds_inferred_onto_segments(self, lazy_db, two_day_range):
        compiled = lazy_db.compiler.compile(lazy_db.bind(t4(two_day_range)))
        rendered = compiled.qf_plan.pretty()
        assert "S.start_time" in rendered
        assert "S.sample_count" in rendered  # the computed segment end

    def test_inference_can_be_disabled(self, lazy_db, two_day_range):
        options = TwoStageOptions(infer_time_bounds=False)
        from repro.core.two_stage import TwoStageCompiler

        compiler = TwoStageCompiler(
            lazy_db.database, lazy_db.config, options
        )
        compiled = compiler.compile(lazy_db.bind(t4(two_day_range)))
        assert "S.sample_count *" not in compiled.qf_plan.pretty()

    def test_metadata_only_query_single_effective_stage(self, lazy_db):
        sql = t1_query(QueryParams(station="ISK"))
        compiled = lazy_db.compiler.compile(lazy_db.bind(sql))
        assert not compiled.two_stage


class TestLazyExecution:
    def test_loads_only_needed_chunks(self, lazy_db, day_range):
        result = lazy_db.query(t4(day_range))
        # 1 station-day at test scale = exactly one chunk file.
        assert len(result.rewrite.required_uris) == 1
        assert result.stats.chunks_loaded == 1

    def test_second_run_hits_recycler(self, lazy_db, day_range):
        lazy_db.query(t4(day_range))
        result = lazy_db.query(t4(day_range))
        assert result.stats.chunks_loaded == 0
        assert len(result.rewrite.cached_uris) == 1

    def test_other_station_loads_other_chunks(self, lazy_db, day_range):
        first = lazy_db.query(t4(day_range, station="ISK", channel="BHE"))
        second = lazy_db.query(t4(day_range, station="FIAM", channel="HHZ"))
        assert set(first.rewrite.required_uris).isdisjoint(
            second.rewrite.required_uris
        )

    def test_no_matching_metadata_loads_nothing(self, lazy_db, day_range):
        result = lazy_db.query(t4(day_range, station="NOPE", channel="X"))
        assert result.stats.chunks_loaded == 0
        assert result.table.to_dicts()[0]["n_samples"] == 0

    def test_d_table_stays_empty(self, lazy_db, day_range):
        lazy_db.query(t4(day_range))
        assert lazy_db.database.catalog.table("D").num_rows == 0

    def test_stage_times_recorded(self, lazy_db, day_range):
        result = lazy_db.query(t4(day_range))
        assert result.two_stage
        assert result.stage_one_seconds > 0
        assert result.stage_two_seconds > 0
        assert result.seconds >= result.stage_one_seconds

    def test_matches_eager_answer(self, lazy_db, eager_db, day_range):
        lazy_answer = lazy_db.query(t4(day_range)).table.to_dicts()
        eager_answer = eager_db.query(t4(day_range)).table.to_dicts()
        assert lazy_answer == eager_answer

    def test_parallel_loading_instruction(self, tiny_repo, two_day_range):
        from repro.core.loading import prepare

        db, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(parallel_threads=4),
        )
        start, end = two_day_range
        sql = t4_query(
            QueryParams(station="ISK", channel="BHE", start_ms=start, end_ms=end)
        )
        result = db.query(sql)
        assert result.stats.chunks_loaded == 2
        db.close()

    def test_serial_loading_option(self, tiny_repo, two_day_range):
        from repro.core.loading import prepare

        db, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(parallel_threads=1),
        )
        start, end = two_day_range
        sql = t4_query(
            QueryParams(station="ISK", channel="BHE", start_ms=start, end_ms=end)
        )
        assert db.query(sql).stats.chunks_loaded == 2
        db.close()


class TestSelectionPushdownIntoChunks:
    def test_pushed_predicate_filters_rows(self, tiny_repo, day_range):
        from repro.core.loading import prepare

        db_push, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(push_selections_into_chunks=True),
        )
        db_nopush, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(push_selections_into_chunks=False),
        )
        start, end = day_range
        sql = t4_query(
            QueryParams(
                station="ISK",
                channel="BHE",
                start_ms=start,
                end_ms=start + MILLIS_PER_DAY // 2,
            )
        )
        a = db_push.query(sql).table.to_dicts()
        b = db_nopush.query(sql).table.to_dicts()
        assert a == b
        db_push.close()
        db_nopush.close()

    def test_cache_holds_unfiltered_chunk(self, lazy_db, day_range):
        start, _ = day_range
        narrow = t4_query(
            QueryParams(
                station="ISK",
                channel="BHE",
                start_ms=start,
                end_ms=start + MILLIS_PER_DAY // 4,
            )
        )
        wide = t4_query(
            QueryParams(
                station="ISK",
                channel="BHE",
                start_ms=start,
                end_ms=start + MILLIS_PER_DAY,
            )
        )
        first = lazy_db.query(narrow)
        second = lazy_db.query(wide)
        # Same single chunk; the second query must still see all its rows.
        assert second.stats.chunks_loaded == 0
        assert (
            second.table.to_dicts()[0]["n_samples"]
            > first.table.to_dicts()[0]["n_samples"]
        )


class TestEagerExecution:
    def test_single_stage_no_rewrite(self, eager_db, day_range):
        result = eager_db.query(t4(day_range))
        assert not result.two_stage
        assert result.stats.chunks_loaded == 0

    def test_join_order_still_metadata_first(self, eager_db, day_range):
        result = eager_db.query(t4(day_range))
        assert result.join_order.index("D") == len(result.join_order) - 1
