"""Unit tests for Algorithm 1's predicate-extraction internals."""


from repro.core.partial_views import (
    _aliases_of,
    _column_equivalence_classes,
    _merge,
    _string_constraint,
    _time_constraint,
)
from repro.engine.expressions import Comparison, IsIn, col, lit
from repro.engine.types import TIMESTAMP


class TestStringConstraint:
    def test_equality(self):
        pred = Comparison("=", col("H.window_station"), lit("FIAM"))
        assert _string_constraint(pred, "H.window_station") == {"FIAM"}

    def test_flipped_equality(self):
        pred = Comparison("=", lit("FIAM"), col("H.window_station"))
        assert _string_constraint(pred, "H.window_station") == {"FIAM"}

    def test_in_list(self):
        pred = IsIn(col("H.window_station"), ["A", "B"])
        assert _string_constraint(pred, "H.window_station") == {"A", "B"}

    def test_other_column_ignored(self):
        pred = Comparison("=", col("H.window_channel"), lit("HHZ"))
        assert _string_constraint(pred, "H.window_station") is None

    def test_range_predicate_ignored(self):
        pred = Comparison(">", col("H.window_station"), lit("A"))
        assert _string_constraint(pred, "H.window_station") is None


class TestTimeConstraint:
    COL = "H.window_start_ts"

    def test_greater_equal(self):
        pred = Comparison(">=", col(self.COL), lit(1000, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (1000, None)

    def test_strictly_greater_shifts(self):
        pred = Comparison(">", col(self.COL), lit(1000, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (1001, None)

    def test_less_than(self):
        pred = Comparison("<", col(self.COL), lit(2000, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (None, 2000)

    def test_less_equal_shifts(self):
        pred = Comparison("<=", col(self.COL), lit(2000, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (None, 2001)

    def test_equality_is_point_range(self):
        pred = Comparison("=", col(self.COL), lit(1500, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (1500, 1501)

    def test_flipped_orientation(self):
        pred = Comparison("<=", lit(1000, TIMESTAMP), col(self.COL))
        assert _time_constraint(pred, self.COL) == (1000, None)

    def test_unrelated_column(self):
        pred = Comparison(">=", col("D.sample_time"), lit(1, TIMESTAMP))
        assert _time_constraint(pred, self.COL) == (None, None)


class TestEquivalenceClasses:
    def test_direct_equality(self):
        preds = [Comparison("=", col("H.window_station"), col("F.station"))]
        classes = _column_equivalence_classes(preds)
        assert _aliases_of("H.window_station", classes) == {
            "H.window_station",
            "F.station",
        }

    def test_transitive_merge(self):
        preds = [
            Comparison("=", col("A.x"), col("B.y")),
            Comparison("=", col("B.y"), col("C.z")),
        ]
        classes = _column_equivalence_classes(preds)
        assert _aliases_of("A.x", classes) == {"A.x", "B.y", "C.z"}

    def test_literal_comparisons_ignored(self):
        preds = [Comparison("=", col("A.x"), lit(5))]
        assert _column_equivalence_classes(preds) == []

    def test_unrelated_column_alias_is_self(self):
        assert _aliases_of("Q.q", []) == {"Q.q"}


class TestMerge:
    def test_both_none(self):
        assert _merge(None, None) is None

    def test_one_side(self):
        assert _merge(None, {"A"}) == {"A"}
        assert _merge({"A"}, None) == {"A"}

    def test_intersection(self):
        assert _merge({"A", "B"}, {"B", "C"}) == {"B"}
