"""Semantic result recycler: fingerprints, subsumption, invalidation."""

import pytest

from repro.core.loading import prepare
from repro.core.result_cache import ColumnBounds, ResultCache, normalize_plan
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t5_query

HOUR_MS = 3600 * 1000

AGG_SQL = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM dataview "
    "WHERE F.station = 'ISK' AND D.sample_time >= {} AND D.sample_time < {}"
)
ROW_SQL = (
    "SELECT D.sample_time AS t, D.sample_value AS v FROM dataview "
    "WHERE F.station = 'ISK' AND D.sample_time >= {} AND D.sample_time < {}"
)


@pytest.fixture()
def cached_db(tiny_repo):
    db, _ = prepare(
        "lazy", tiny_repo[0], options=TwoStageOptions(result_cache=True)
    )
    yield db
    db.close()


def cache_stats(db) -> dict:
    return db.planner_stats()["result_cache"]


class TestColumnBounds:
    def covers(self, cached, query) -> bool:
        return ColumnBounds.from_conjuncts(cached).covers(
            ColumnBounds.from_conjuncts(query)
        )

    def test_wider_range_covers_narrower(self):
        assert self.covers([(">=", 0), ("<", 100)], [(">=", 10), ("<", 50)])
        assert self.covers([(">=", 0)], [(">=", 0), ("<", 50)])
        assert not self.covers([(">=", 10)], [(">=", 0)])
        assert not self.covers([("<", 50)], [("<", 100)])

    def test_edge_inclusivity(self):
        # Cached t > 5 does not admit the query's t >= 5 point.
        assert not self.covers([(">", 5)], [(">=", 5)])
        assert self.covers([(">=", 5)], [(">", 5)])
        assert not self.covers([("<", 5)], [("<=", 5)])
        assert self.covers([("<=", 5)], [("<", 5)])

    def test_unbounded_covers_everything(self):
        assert self.covers([], [(">=", 3), ("<", 9)])
        assert self.covers([], [("=", "ISK")])
        assert not self.covers([(">=", 3)], [])

    def test_equality_points(self):
        assert self.covers([(">=", 0), ("<=", 10)], [("=", 5)])
        assert not self.covers([(">=", 0), ("<", 5)], [("=", 5)])
        # A cached equality serves only the identical bound set.
        assert self.covers([("=", "ISK")], [("=", "ISK")])
        assert not self.covers([("=", "ISK")], [("=", "ARCI")])
        assert not self.covers([("=", "ISK")], [])

    def test_redundant_conjuncts_canonicalize(self):
        a = ColumnBounds.from_conjuncts([(">=", 5), (">=", 3)])
        b = ColumnBounds.from_conjuncts([(">=", 5)])
        assert a == b


class TestNormalization:
    def test_reordered_where_shares_fingerprint(self, lazy_db):
        a = lazy_db.bind(
            "SELECT COUNT(*) AS n FROM dataview "
            "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
        )
        b = lazy_db.bind(
            "SELECT COUNT(*) AS n FROM dataview "
            "WHERE F.channel = 'BHE' AND F.station = 'ISK'"
        )
        assert normalize_plan(a).fingerprint == normalize_plan(b).fingerprint

    def test_bounds_leave_the_template(self, lazy_db):
        start = EPOCH_2010_MS
        a = normalize_plan(lazy_db.bind(ROW_SQL.format(start, start + 10)))
        b = normalize_plan(
            lazy_db.bind(ROW_SQL.format(start + 5, start + 7))
        )
        assert a.fingerprint != b.fingerprint
        assert a.template == b.template
        assert a.bounds["D.sample_time"].covers(b.bounds["D.sample_time"])

    def test_aggregate_and_limit_block_refiltering(self, lazy_db):
        start = EPOCH_2010_MS
        assert not normalize_plan(
            lazy_db.bind(AGG_SQL.format(start, start + 10))
        ).refilterable
        assert not normalize_plan(
            lazy_db.bind(ROW_SQL.format(start, start + 10) + " LIMIT 5")
        ).refilterable
        assert normalize_plan(
            lazy_db.bind(ROW_SQL.format(start, start + 10))
        ).refilterable

    def test_output_columns_follow_projection_aliases(self, lazy_db):
        normalized = normalize_plan(
            lazy_db.bind(ROW_SQL.format(EPOCH_2010_MS, EPOCH_2010_MS + 10))
        )
        assert normalized.output_columns["D.sample_time"] == "t"
        assert normalized.output_columns["D.sample_value"] == "v"
        assert "F.station" not in normalized.output_columns


class TestExactRepeat:
    def test_repeat_skips_both_stages(self, cached_db, day_range):
        start, end = day_range
        first = cached_db.query(AGG_SQL.format(start, end))
        second = cached_db.query(AGG_SQL.format(start, end))
        assert first.result_cache is None
        assert second.result_cache == "exact"
        assert second.stats.results_from_cache == 1
        assert second.stats.chunks_loaded == 0
        assert second.stats.chunks_from_cache == 0
        assert second.table.to_dicts() == first.table.to_dicts()
        assert cached_db.stats.result_cache_hits == 1

    def test_iso_and_numeric_timestamps_interoperate(self, cached_db):
        start = EPOCH_2010_MS
        numeric = cached_db.query(ROW_SQL.format(start, start + HOUR_MS))
        iso = cached_db.query(
            "SELECT D.sample_time AS t, D.sample_value AS v FROM dataview "
            "WHERE F.station = 'ISK' "
            "AND D.sample_time >= '2010-01-01T00:00:00.000' "
            "AND D.sample_time < '2010-01-01T01:00:00.000'"
        )
        assert iso.result_cache in ("exact", "subsumed")
        assert iso.table.to_dicts() == numeric.table.to_dicts()

    def test_disabled_by_default(self, lazy_db, day_range):
        start, end = day_range
        assert lazy_db.result_cache is None
        lazy_db.query(AGG_SQL.format(start, end))
        repeat = lazy_db.query(AGG_SQL.format(start, end))
        assert repeat.result_cache is None
        assert repeat.stats.results_from_cache == 0
        assert "result_cache" not in lazy_db.planner_stats()


class TestSubsumption:
    def test_zoom_in_is_bit_identical_to_execution(
        self, cached_db, lazy_db, day_range
    ):
        start, end = day_range
        cached_db.query(ROW_SQL.format(start, end))
        for lo, hi in (
            (start + HOUR_MS, start + 3 * HOUR_MS),
            (start, start + HOUR_MS),
            (start + 23 * HOUR_MS, end),
        ):
            served = cached_db.query(ROW_SQL.format(lo, hi))
            direct = lazy_db.query(ROW_SQL.format(lo, hi))
            assert served.result_cache == "subsumed"
            assert served.stats.results_subsumed == 1
            assert served.stats.chunks_loaded == 0
            assert served.table.to_dicts() == direct.table.to_dicts()
        assert cached_db.stats.result_cache_subsumed == 3

    def test_unbounded_station_covers_bounded(self, cached_db, lazy_db):
        start = EPOCH_2010_MS
        broad = (
            "SELECT F.station AS station, D.sample_value AS v FROM dataview "
            f"WHERE D.sample_time >= {start} "
            f"AND D.sample_time < {start + HOUR_MS}"
        )
        cached_db.query(broad)
        narrow = broad + " AND F.station = 'ARCI'"
        served = cached_db.query(narrow)
        direct = lazy_db.query(narrow)
        assert served.result_cache == "subsumed"
        assert served.table.to_dicts() == direct.table.to_dicts()

    def test_narrower_cache_cannot_serve_wider_query(self, cached_db):
        start = EPOCH_2010_MS
        cached_db.query(ROW_SQL.format(start, start + HOUR_MS))
        wider = cached_db.query(ROW_SQL.format(start, start + 2 * HOUR_MS))
        assert wider.result_cache is None

    def test_different_station_equality_is_no_match(self, cached_db):
        start = EPOCH_2010_MS
        cached_db.query(ROW_SQL.format(start, start + HOUR_MS))
        other = cached_db.query(
            ROW_SQL.replace("'ISK'", "'ARCI'").format(start, start + HOUR_MS)
        )
        assert other.result_cache is None

    def test_aggregates_only_hit_exactly(self, cached_db, day_range):
        start, end = day_range
        cached_db.query(AGG_SQL.format(start, end))
        narrower = cached_db.query(AGG_SQL.format(start, start + HOUR_MS))
        assert narrower.result_cache is None

    def test_bound_column_missing_from_output_blocks_subsumption(
        self, cached_db
    ):
        start = EPOCH_2010_MS
        no_time_output = (
            "SELECT D.sample_value AS v FROM dataview "
            "WHERE F.station = 'ISK' "
            "AND D.sample_time >= {} AND D.sample_time < {}"
        )
        cached_db.query(no_time_output.format(start, start + 2 * HOUR_MS))
        narrower = cached_db.query(
            no_time_output.format(start, start + HOUR_MS)
        )
        assert narrower.result_cache is None

    def test_order_by_rides_along(self, cached_db, lazy_db):
        start = EPOCH_2010_MS
        sorted_sql = (
            ROW_SQL + " ORDER BY v"
        )
        cached_db.query(sorted_sql.format(start, start + 2 * HOUR_MS))
        served = cached_db.query(sorted_sql.format(start, start + HOUR_MS))
        direct = lazy_db.query(sorted_sql.format(start, start + HOUR_MS))
        assert served.result_cache == "subsumed"
        assert served.table.to_dicts() == direct.table.to_dicts()


class TestInvalidation:
    def test_register_repository_drops_everything(self, tiny_repo, day_range):
        start, end = day_range
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(result_cache=True)
        )
        try:
            db.query(AGG_SQL.format(start, end))
            assert cache_stats(db)["entries"] == 1
            db.register_repository(tiny_repo[0])
            assert cache_stats(db)["entries"] == 0
            assert cache_stats(db)["invalidations"] == 1
        finally:
            db.close()

    def test_reset_derived_metadata_drops_h_entries_only(
        self, cached_db, day_range
    ):
        start, end = day_range
        params = QueryParams(
            station="ISK", channel="BHE", start_ms=start, end_ms=end,
            max_val_threshold=-1e12,
        )
        cached_db.query(t5_query(params))  # reads H (derived)
        cached_db.query(AGG_SQL.format(start, end))  # reads F/S/D only
        assert cache_stats(cached_db)["entries"] == 2
        cached_db.reset_derived_metadata()
        assert cache_stats(cached_db)["entries"] == 1
        repeat = cached_db.query(AGG_SQL.format(start, end))
        assert repeat.result_cache == "exact"

    def test_new_window_materialization_invalidates_h_entries(
        self, cached_db, day_range
    ):
        start, end = day_range
        params = QueryParams(
            station="ISK", channel="BHE", start_ms=start, end_ms=end,
            max_val_threshold=-1e12,
        )
        first = cached_db.query(t5_query(params))
        assert first.result_cache is None
        # The identical query derives nothing new and hits.
        assert cached_db.query(t5_query(params)).result_cache == "exact"
        # A different window materializes new H rows -> H entries drop.
        other = QueryParams(
            station="ARCI", channel="BHZ", start_ms=start, end_ms=end,
            max_val_threshold=-1e12,
        )
        cached_db.query(t5_query(other))
        repeat = cached_db.query(t5_query(params))
        assert repeat.result_cache is None  # re-executed, re-admitted
        assert cached_db.query(t5_query(params)).result_cache == "exact"


class TestBudget:
    def test_eviction_by_benefit_density(self, tiny_repo, day_range):
        start, end = day_range
        db, _ = prepare(
            "lazy", tiny_repo[0],
            options=TwoStageOptions(
                result_cache=True, result_cache_bytes=1
            ),
        )
        try:
            # Nothing fits a 1-byte budget; the cache must stay empty and
            # queries must keep executing correctly.
            first = db.query(AGG_SQL.format(start, end))
            repeat = db.query(AGG_SQL.format(start, end))
            assert repeat.result_cache is None
            assert repeat.table.to_dicts() == first.table.to_dicts()
            assert cache_stats(db)["entries"] == 0
        finally:
            db.close()

    def test_budget_bounds_bytes_cached(self, cached_db, day_range):
        start, end = day_range
        cache = cached_db.result_cache
        first = cached_db.query(ROW_SQL.format(start, start + 2 * HOUR_MS))
        # Room for one result but not two: admitting the second (disjoint)
        # result must evict the first, never blow the budget.
        cache.budget_bytes = first.table.nbytes + 1
        cached_db.query(
            ROW_SQL.format(start + 2 * HOUR_MS, start + 4 * HOUR_MS)
        )
        snapshot = cache.stats_snapshot()
        assert snapshot["bytes_cached"] <= cache.budget_bytes
        assert snapshot["evictions"] == 1
        assert snapshot["entries"] == 1

    def test_unit_eviction_prefers_low_benefit(self):
        from repro.engine.column import Column
        from repro.engine.table import Schema, Table
        from repro.engine.types import INT64
        import numpy as np

        cache = ResultCache(budget_bytes=2048)

        def table(rows: int) -> Table:
            return Table(
                Schema.of(("v", INT64)),
                [Column(INT64, np.arange(rows, dtype=np.int64))],
            )

        class Fake:
            def __init__(self, tag):
                self.fingerprint = (tag,)
                self.template = (tag,)
                self.bounds = {}
                self.bound_conjuncts = ()
                self.refilterable = False
                self.output_columns = {}
                self.base_tables = frozenset({"D"})

        cheap, dear = Fake("cheap"), Fake("dear")
        assert cache.admit(cheap, table(128), compute_seconds=0.001)
        assert cache.admit(dear, table(64), compute_seconds=10.0)
        # A third entry forces an eviction: the low-benefit one goes.
        assert cache.admit(Fake("new"), table(128), compute_seconds=1.0)
        assert cache.serve(dear) is not None
        assert cache.serve(cheap) is None
        assert cache.stats.evictions >= 1


class TestGenerations:
    def test_stale_admit_is_rejected_after_invalidation(self, lazy_db):
        """A result computed before an invalidation must not be admitted
        after it — that would resurrect exactly what the invalidation
        flushed (the concurrent-registration race)."""
        cache = ResultCache()
        normalized = normalize_plan(
            lazy_db.bind("SELECT COUNT(*) AS n FROM gmdview")
        )
        table = lazy_db.query("SELECT COUNT(*) AS n FROM gmdview").table
        generation = cache.generation
        cache.invalidate_all()  # lands while the query is "executing"
        assert not cache.admit(normalized, table, 0.1, generation=generation)
        assert len(cache) == 0
        assert cache.admit(
            normalized, table, 0.1, generation=cache.generation
        )
        assert len(cache) == 1


class TestSessions:
    def test_session_stats_carry_result_cache_hits(self, cached_db, day_range):
        start, end = day_range
        with cached_db.session() as session:
            session.query(AGG_SQL.format(start, end))
            session.query(AGG_SQL.format(start, end))
            assert session.stats.result_cache_hits == 1
            assert session.stats.queries_executed == 2
