"""Unit tests for the benchmark harness (reporting, profiles, timing)."""

import os

import pytest

from repro.bench.profiles import BENCH_SCALES, PROFILES, active_profile
from repro.bench.reporting import (
    ReportTable,
    format_bytes,
    format_seconds,
)
from repro.bench.timing import measure_cold_hot, time_call


class TestFormatting:
    def test_seconds_ranges(self):
        assert format_seconds(0.0123) == "12.3ms"
        assert format_seconds(1.5) == "1.50s"
        assert format_seconds(250.0) == "250s"

    def test_bytes_ranges(self):
        assert format_bytes(512) == "512B"
        assert format_bytes(2048) == "2.0KB"
        assert format_bytes(3 * 1024 * 1024) == "3.0MB"
        assert format_bytes(5 << 30) == "5.0GB"


class TestReportTable:
    def test_render_aligned(self):
        table = ReportTable("Demo", ["a", "bee"])
        table.add_row("x", 1)
        table.add_row("longer", 22)
        text = table.render()
        assert "Demo" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:5]}) <= 2  # aligned

    def test_row_width_checked(self):
        table = ReportTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_notes_rendered(self):
        table = ReportTable("T", ["a"])
        table.add_row(1)
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_save(self, tmp_path):
        table = ReportTable("T", ["a"])
        table.add_row(42)
        path = table.save("out.txt", root=str(tmp_path))
        assert os.path.isfile(path)
        assert "42" in open(path).read()


class TestProfiles:
    def test_default_profile_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROFILE", raising=False)
        assert active_profile().name == "quick"

    def test_env_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "small")
        assert active_profile().name == "small"

    def test_unknown_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "warp")
        with pytest.raises(ValueError):
            active_profile()

    def test_all_profiles_cover_four_scale_factors(self):
        for profile in PROFILES.values():
            assert profile.scale_factors == (1, 3, 9, 27)

    def test_scale_names_unique(self):
        names = [s.name for s in BENCH_SCALES.values()]
        assert len(set(names)) == len(names)

    def test_paper_profile_day_counts(self):
        paper = PROFILES["paper"]
        assert paper.scale.days_for_sf(27) == 1096


class TestTiming:
    def test_time_call_positive(self):
        assert time_call(lambda: sum(range(1000))) > 0

    def test_measure_cold_hot(self, lazy_db, day_range):
        from repro.workloads import QueryParams, t4_query

        start, end = day_range
        sql = t4_query(QueryParams("ISK", "BHE", start, end))
        timing = measure_cold_hot(lazy_db, sql, runs=1)
        assert timing.cold_seconds > 0
        assert timing.hot_seconds > 0
        # Cold includes chunk loading; hot hits the recycler.
        assert timing.hot_seconds <= timing.cold_seconds * 5
