"""Tests for the SommelierDB facade and the Table-I query taxonomy."""

import pytest

from repro.core.query_types import QueryType, classify_plan
from repro.workloads import (
    QueryParams,
    t1_query,
    t2_query,
    t3_query,
    t4_query,
    t5_query,
)

HOUR_MS = 3600 * 1000


@pytest.fixture()
def params(two_day_range):
    start, end = two_day_range
    return QueryParams(
        station="FIAM",
        channel="HHZ",
        start_ms=start,
        end_ms=end,
        max_val_threshold=0.0,
        std_dev_threshold=0.0,
    )


class TestQueryTypes:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (t1_query, QueryType.T1),
            (t2_query, QueryType.T2),
            (t3_query, QueryType.T3),
            (t4_query, QueryType.T4),
            (t5_query, QueryType.T5),
        ],
    )
    def test_templates_classified(self, lazy_db, params, builder, expected):
        assert lazy_db.query_type(builder(params)) is expected

    def test_refers_flags(self):
        assert QueryType.T5.refers_to_derived
        assert QueryType.T5.refers_to_actual
        assert not QueryType.T1.refers_to_actual
        assert not QueryType.T4.refers_to_derived

    def test_ad_only_classification(self, lazy_db):
        plan = lazy_db.bind("SELECT COUNT(*) FROM D")
        assert classify_plan(plan, lazy_db.database.catalog) is QueryType.AD_ONLY


class TestSommelierFacade:
    def test_explain_lazy(self, lazy_db, params):
        text = lazy_db.explain(t4_query(params))
        assert "T4" in text
        assert "MAL program" in text
        assert "runtime-optimizer" in text

    def test_explain_eager(self, eager_db, params):
        text = eager_db.explain(t4_query(params))
        assert "single-stage" in text

    def test_stats_accumulate(self, lazy_db, params):
        lazy_db.query(t4_query(params))
        lazy_db.query(t5_query(params))
        assert lazy_db.stats.queries_executed == 2
        assert lazy_db.stats.derivations == 1
        assert lazy_db.stats.chunks_loaded_total >= 2

    def test_drop_caches_forces_reload(self, lazy_db, params):
        lazy_db.query(t4_query(params))
        lazy_db.drop_caches()
        result = lazy_db.query(t4_query(params))
        assert result.stats.chunks_loaded > 0

    def test_context_manager(self, tiny_repo):
        from repro import SommelierDB

        with SommelierDB.create() as db:
            db.register_repository(tiny_repo[0], threads=1)
            assert db.database.catalog.table("F").num_rows > 0

    def test_query_seconds_include_derivation(self, lazy_db, params):
        result, derivation = lazy_db.query_with_derivation(t5_query(params))
        assert result.seconds >= derivation.seconds

    def test_ad_only_query_falls_back_to_all_chunks(self, lazy_db):
        result = lazy_db.query("SELECT COUNT(*) AS n FROM D")
        assert result.rewrite.used_all_chunks_fallback
        total = lazy_db.database.catalog.table("F").num_rows
        assert len(result.rewrite.required_uris) == total
        assert result.table.to_dicts()[0]["n"] > 0
