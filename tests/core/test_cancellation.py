"""Cooperative query cancellation via :class:`CancelToken`.

The serving front end's request timeouts ride on this: setting the token
makes the engine unwind at the next chunk boundary with
:class:`QueryCancelled`, leaving the database consistent and reusable.
"""

from __future__ import annotations

import threading

import pytest

from repro.data.ingv import EPOCH_2010_MS
from repro.engine.errors import EngineError, QueryCancelled
from repro.engine.physical import CancelToken

MILLIS_PER_DAY = 24 * 3600 * 1000

TWO_DAY_SQL = (
    "SELECT COUNT(*) AS n FROM dataview "
    f"WHERE F.station = 'ISK' AND D.sample_time >= {EPOCH_2010_MS} "
    f"AND D.sample_time < {EPOCH_2010_MS + 2 * MILLIS_PER_DAY}"
)


def test_cancelled_is_an_engine_error():
    # Servers catching EngineError must see cancellation unwinding too.
    assert issubclass(QueryCancelled, EngineError)


def test_preset_token_cancels_before_execution(lazy_db):
    token = CancelToken()
    token.cancel()
    assert token.cancelled
    with pytest.raises(QueryCancelled):
        lazy_db.query(TWO_DAY_SQL, cancel=token)


def test_mid_flight_cancel_unwinds_and_leaves_db_usable(lazy_db):
    lazy_db.database.chunk_loader.io_delay_ms = 150.0
    token = CancelToken()
    outcome: list = []

    def run():
        try:
            lazy_db.query(TWO_DAY_SQL, cancel=token)
            outcome.append("completed")
        except QueryCancelled:
            outcome.append("cancelled")

    thread = threading.Thread(target=run)
    thread.start()
    token.cancel()
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert outcome == ["cancelled"]

    # The engine unwound cleanly: the same query still answers (and the
    # next run does not inherit the old token).
    lazy_db.database.chunk_loader.io_delay_ms = 0.0
    result = lazy_db.query(TWO_DAY_SQL)
    assert result.table.num_rows == 1


def test_untouched_token_does_not_interfere(lazy_db):
    token = CancelToken()
    result = lazy_db.query(TWO_DAY_SQL, cancel=token)
    assert result.table.num_rows == 1
    (count_row,) = result.table.rows()
    assert count_row[0] > 0
