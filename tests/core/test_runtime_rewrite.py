"""Unit tests for the run-time rewrite (rewrite rule (1)) in isolation."""

import pytest

from repro.core.runtime_rewrite import RewriteReport, rewrite_actual_scans
from repro.engine import algebra
from repro.engine.expressions import Comparison, col, lit


def find_nodes(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


@pytest.fixture()
def scan_d(lazy_db):
    return algebra.Scan("D", lazy_db.database.qualified_schema("D"))


@pytest.fixture()
def uris(lazy_db):
    return sorted(lazy_db.database.catalog.table("F").data.column("uri"))[:3]


class TestRewriteRule1:
    def test_plain_scan_becomes_union(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        assert isinstance(rewritten, algebra.Union)
        assert len(rewritten.children()) == 3
        assert report.rewrote_scans == 1

    def test_all_uncached_become_chunk_access(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        assert len(find_nodes(rewritten, algebra.ChunkAccess)) == 3
        assert len(find_nodes(rewritten, algebra.CacheScan)) == 0

    def test_cached_chunks_become_cache_scans(self, lazy_db, scan_d, uris):
        # Warm one chunk into the recycler.
        table, cost = lazy_db.database.load_chunk(uris[0], "D")
        lazy_db.database.recycler.put(uris[0], table, cost)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        assert len(find_nodes(rewritten, algebra.CacheScan)) == 1
        assert len(find_nodes(rewritten, algebra.ChunkAccess)) == 2

    def test_selection_pushed_into_chunk_access(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=True,
        )
        accesses = find_nodes(rewritten, algebra.ChunkAccess)
        assert all(a.pushed_predicate is predicate for a in accesses)

    def test_selection_stays_above_without_push(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=False,
        )
        assert isinstance(rewritten, algebra.Select)
        accesses = find_nodes(rewritten, algebra.ChunkAccess)
        assert all(a.pushed_predicate is None for a in accesses)

    def test_selection_above_cache_scan(self, lazy_db, scan_d, uris):
        table, cost = lazy_db.database.load_chunk(uris[0], "D")
        lazy_db.database.recycler.put(uris[0], table, cost)
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, [uris[0]], report
        )
        # σp(cache-scan(f)) — the selection sits above the cache scan.
        child = rewritten.children()[0]
        assert isinstance(child, algebra.Select)
        assert isinstance(child.child, algebra.CacheScan)

    def test_empty_uri_list_keeps_scan(self, lazy_db, scan_d):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, [], report
        )
        assert isinstance(rewritten, algebra.Scan)

    def test_metadata_scans_untouched(self, lazy_db, uris):
        scan_f = algebra.Scan("F", lazy_db.database.qualified_schema("F"))
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_f, lazy_db.database, lazy_db.config, uris, report
        )
        assert rewritten is scan_f or isinstance(rewritten, algebra.Scan)
        assert report.rewrote_scans == 0

    def test_parallel_rewrite_emits_pipeline_node(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report,
            io_threads=4,
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert list(rewritten.uris) == uris
        assert rewritten.io_threads == 4
        assert report.rewrote_scans == 1

    def test_parallel_rewrite_pushes_selection(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=True, io_threads=4,
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert rewritten.pushed_predicate is predicate

    def test_parallel_rewrite_single_chunk_stays_serial(
        self, lazy_db, scan_d, uris
    ):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris[:1], report,
            io_threads=4,
        )
        assert isinstance(rewritten, algebra.Union)

    def test_rewrite_inside_join(self, lazy_db, scan_d, uris):
        scan_s = algebra.Scan("S", lazy_db.database.qualified_schema("S"))
        join = algebra.Join(
            scan_s, scan_d, Comparison("=", col("S.file_id"), col("D.file_id"))
        )
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            join, lazy_db.database, lazy_db.config, uris, report
        )
        assert isinstance(rewritten, algebra.Join)
        assert isinstance(rewritten.right, algebra.Union)
