"""Unit tests for the run-time rewrite (rewrite rule (1)) in isolation.

Since the chunk-planner refactor every rewritten actual-data scan becomes
one :class:`~repro.engine.algebra.ParallelChunkScan` carrying a
statistics-pruned, cost-ordered :class:`ChunkPlan` (the serial executor is
the same scheduler with ``io_threads == 1``); the classic union of
cache-scans / chunk-accesses remains the shape for the in-situ access
strategy only.
"""

import pytest

from repro.core.runtime_rewrite import RewriteReport, rewrite_actual_scans
from repro.engine import algebra
from repro.engine.chunk_planner import TIER_REMOTE, TIER_RESIDENT
from repro.engine.expressions import Comparison, col, lit


def find_nodes(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


@pytest.fixture()
def scan_d(lazy_db):
    return algebra.Scan("D", lazy_db.database.qualified_schema("D"))


@pytest.fixture()
def uris(lazy_db):
    return sorted(lazy_db.database.catalog.table("F").data.column("uri"))[:3]


class TestRewriteRule1:
    def test_plain_scan_becomes_planned_chunk_scan(
        self, lazy_db, scan_d, uris
    ):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert list(rewritten.uris) == uris
        assert report.rewrote_scans == 1
        assert len(report.chunk_plans) == 1

    def test_all_uncached_planned_as_remote(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        assert all(
            chunk.tier == TIER_REMOTE for chunk in rewritten.plan.chunks
        )

    def test_cached_chunks_planned_as_resident(self, lazy_db, scan_d, uris):
        # Warm one chunk into the recycler.
        table, cost = lazy_db.database.load_chunk(uris[0], "D")
        lazy_db.database.recycler.put(uris[0], table, cost)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        tiers = {c.uri: c.tier for c in rewritten.plan.chunks}
        assert tiers[uris[0]] == TIER_RESIDENT
        assert all(tiers[uri] == TIER_REMOTE for uri in uris[1:])

    def test_remote_fetches_scheduled_before_resident(
        self, lazy_db, scan_d, uris
    ):
        table, cost = lazy_db.database.load_chunk(uris[0], "D")
        lazy_db.database.recycler.put(uris[0], table, cost)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report
        )
        plan = rewritten.plan
        scheduled_tiers = [plan.chunks[i].tier for i in plan.fetch_order]
        # Most expensive first: the free resident chunk is fetched last.
        assert scheduled_tiers[-1] == TIER_RESIDENT

    def test_selection_pushed_into_chunk_scan(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=True,
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert rewritten.pushed_predicate is predicate

    def test_selection_stays_above_without_push(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=False,
        )
        assert isinstance(rewritten, algebra.Select)
        assert isinstance(rewritten.child, algebra.ParallelChunkScan)
        assert rewritten.child.pushed_predicate is None

    def test_empty_uri_list_keeps_scan(self, lazy_db, scan_d):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, [], report
        )
        assert isinstance(rewritten, algebra.Scan)

    def test_metadata_scans_untouched(self, lazy_db, uris):
        scan_f = algebra.Scan("F", lazy_db.database.qualified_schema("F"))
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_f, lazy_db.database, lazy_db.config, uris, report
        )
        assert rewritten is scan_f or isinstance(rewritten, algebra.Scan)
        assert report.rewrote_scans == 0

    def test_parallel_rewrite_emits_pipeline_node(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris, report,
            io_threads=4,
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert list(rewritten.uris) == uris
        assert rewritten.io_threads == 4
        assert report.rewrote_scans == 1

    def test_single_chunk_uses_same_scheduler(self, lazy_db, scan_d, uris):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, lazy_db.database, lazy_db.config, uris[:1], report,
            io_threads=4,
        )
        assert isinstance(rewritten, algebra.ParallelChunkScan)
        assert len(rewritten.plan.chunks) == 1

    def test_rewrite_inside_join(self, lazy_db, scan_d, uris):
        scan_s = algebra.Scan("S", lazy_db.database.qualified_schema("S"))
        join = algebra.Join(
            scan_s, scan_d, Comparison("=", col("S.file_id"), col("D.file_id"))
        )
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            join, lazy_db.database, lazy_db.config, uris, report
        )
        assert isinstance(rewritten, algebra.Join)
        assert isinstance(rewritten.right, algebra.ParallelChunkScan)


class TestInSituUnionShape:
    """The in-situ strategy keeps the paper's per-chunk union rewrite."""

    @pytest.fixture()
    def in_situ_db(self, lazy_db):
        lazy_db.database.chunk_access_strategy = "in_situ"
        return lazy_db

    def test_scan_becomes_union_of_chunk_accesses(
        self, in_situ_db, scan_d, uris
    ):
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, in_situ_db.database, in_situ_db.config, uris, report
        )
        assert isinstance(rewritten, algebra.Union)
        assert len(find_nodes(rewritten, algebra.ChunkAccess)) == 3
        assert len(find_nodes(rewritten, algebra.CacheScan)) == 0

    def test_cached_chunks_become_cache_scans(self, in_situ_db, scan_d, uris):
        table, cost = in_situ_db.database.load_chunk(uris[0], "D")
        in_situ_db.database.recycler.put(uris[0], table, cost)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            scan_d, in_situ_db.database, in_situ_db.config, uris, report
        )
        assert len(find_nodes(rewritten, algebra.CacheScan)) == 1
        assert len(find_nodes(rewritten, algebra.ChunkAccess)) == 2

    def test_selection_above_cache_scan(self, in_situ_db, scan_d, uris):
        table, cost = in_situ_db.database.load_chunk(uris[0], "D")
        in_situ_db.database.recycler.put(uris[0], table, cost)
        predicate = Comparison(">", col("D.sample_value"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, in_situ_db.database, in_situ_db.config, [uris[0]], report
        )
        # σp(cache-scan(f)) — the selection sits above the cache scan.
        child = rewritten.children()[0]
        assert isinstance(child, algebra.Select)
        assert isinstance(child.child, algebra.CacheScan)


class TestStatisticsPruning:
    def test_value_predicate_prunes_enriched_chunks(
        self, lazy_db, scan_d, uris
    ):
        # Enrich one chunk's statistics via a decode; its max sample value
        # bounds what any predicate can demand of it.
        table, cost = lazy_db.database.load_chunk(uris[0], "D")
        stats = lazy_db.database.chunk_stats.get(uris[0])
        assert stats is not None and stats.enriched
        _, high = stats.ranges["D.sample_value"]
        predicate = Comparison(">", col("D.sample_value"), lit(int(high) + 1))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report
        )
        assert uris[0] in report.pruned_uris
        assert uris[0] not in rewritten.uris

    def test_unenriched_chunks_never_value_pruned(self, lazy_db, scan_d, uris):
        predicate = Comparison(">", col("D.sample_value"), lit(10**9))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report
        )
        # Registration-time stats know nothing about sample values.
        assert report.pruned_uris == []
        assert list(rewritten.uris) == uris

    def test_time_predicate_prunes_from_registration_stats(
        self, lazy_db, scan_d, uris
    ):
        # No decode needed: header-derived time spans are true bounds.
        predicate = Comparison("<", col("D.sample_time"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report
        )
        assert sorted(report.pruned_uris) == sorted(uris)
        assert rewritten.uris == ()

    def test_pruning_disabled_keeps_everything(self, lazy_db, scan_d, uris):
        predicate = Comparison("<", col("D.sample_time"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            prune_chunks=False,
        )
        assert report.pruned_uris == []
        assert list(rewritten.uris) == uris

    def test_pruning_safe_without_push(self, lazy_db, scan_d, uris):
        # The planner sees the full selection even when it is not pushed:
        # the Select above still filters, so pruning stays correct.
        predicate = Comparison("<", col("D.sample_time"), lit(0))
        plan = algebra.Select(scan_d, predicate)
        report = RewriteReport()
        rewritten = rewrite_actual_scans(
            plan, lazy_db.database, lazy_db.config, uris, report,
            push_selections=False,
        )
        assert isinstance(rewritten, algebra.Select)
        assert sorted(report.pruned_uris) == sorted(uris)
