"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_build_command(self):
        args = build_parser().parse_args(
            ["build", "--base", "/tmp/x", "--sf", "3", "--scale", "test"]
        )
        assert args.command == "build"
        assert args.sf == 3

    def test_query_requires_sql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--base", "/tmp/x"])

    def test_bench_experiments_enumerated(self):
        args = build_parser().parse_args(
            ["bench", "--experiment", "table2"]
        )
        assert args.experiment == "table2"

    def test_invalid_scale_factor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "--base", "/tmp/x", "--sf", "5"]
            )

    def test_invalid_approach(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--base", "x", "--sql", "s", "--approach", "turbo"]
            )


class TestCommands:
    def test_build_and_inspect(self, tmp_path, capsys):
        base = str(tmp_path / "data")
        assert main(["build", "--base", base, "--sf", "1"]) == 0
        out = capsys.readouterr().out
        assert "8 files" in out
        assert main(["inspect", "--base", base, "--sf", "1"]) == 0
        out = capsys.readouterr().out
        assert "total: 8 chunks" in out

    def test_query_lazy(self, tmp_path, capsys):
        base = str(tmp_path / "data")
        main(["build", "--base", base, "--sf", "1"])
        capsys.readouterr()
        code = main(
            [
                "query",
                "--base",
                base,
                "--sf",
                "1",
                "--sql",
                "SELECT F.station AS s, COUNT(S.segment_no) AS n "
                "FROM gmdview GROUP BY F.station ORDER BY s",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "'s': 'ARCI'" in out
        assert "0 chunk(s) loaded" in out

    def test_cache_text_and_json(self, tmp_path, capsys):
        import json

        base = str(tmp_path / "data")
        main(["build", "--base", base, "--sf", "1"])
        capsys.readouterr()
        sql = (
            "SELECT COUNT(*) AS n FROM dataview WHERE F.station = 'ISK' "
            "AND F.channel = 'BHE'"
        )
        assert main(["cache", "--base", base, "--sf", "1", "--sql", sql]) == 0
        out = capsys.readouterr().out
        assert "[memory]" in out and "[disk]" in out
        assert "insertions=2" in out

        code = main(
            ["cache", "--base", base, "--sf", "1", "--sql", sql, "--json"]
        )
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["memory"]["insertions"] == 2
        assert stats["disk"]["enabled"] == 1

    def test_cache_reopens_persistent_workdir_warm(self, tmp_path, capsys):
        import json

        base = str(tmp_path / "data")
        workdir = str(tmp_path / "db")
        main(["build", "--base", base, "--sf", "1"])
        capsys.readouterr()
        sql = (
            "SELECT COUNT(*) AS n FROM dataview WHERE F.station = 'ISK' "
            "AND F.channel = 'BHE'"
        )
        first = main(
            ["cache", "--base", base, "--sf", "1", "--sql", sql,
             "--workdir", workdir, "--json"]
        )
        assert first == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["memory"]["misses"] == 2  # cold: both chunks decoded

        again = main(
            ["cache", "--base", base, "--sf", "1", "--sql", sql,
             "--workdir", workdir, "--json"]
        )
        assert again == 0
        stats = json.loads(capsys.readouterr().out)
        # Reopened warm: the store tier served every chunk.
        assert stats["memory"]["rehydrates"] == 2
        assert stats["memory"]["misses"] == 0

    def test_query_explain(self, tmp_path, capsys):
        base = str(tmp_path / "data")
        main(["build", "--base", base, "--sf", "1"])
        capsys.readouterr()
        code = main(
            [
                "query",
                "--base",
                base,
                "--sf",
                "1",
                "--explain",
                "--sql",
                "SELECT COUNT(D.sample_value) AS n FROM dataview "
                "WHERE F.station = 'ISK'",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MAL program" in out
