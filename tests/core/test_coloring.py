"""Tests for query-graph coloring and join-order rules R1–R4."""

import pytest

from repro.core.coloring import (
    ColoredGraph,
    EdgeColor,
    RuleSet,
    order_joins,
)
from repro.engine import algebra
from repro.engine.errors import PlanError
from repro.engine.expressions import Comparison, col, lit
from repro.engine.join_graph import build_query_graph
from repro.engine.table import Schema
from repro.engine.types import INT64


def schema_for(name):
    return Schema.of((f"{name}.k", INT64), (f"{name}.v", INT64))


def join_plan(*specs):
    """Build a left-deep join over named tables with k=k conditions."""
    tables = list(specs)
    plan = algebra.Scan(tables[0], schema_for(tables[0]))
    for name in tables[1:]:
        plan = algebra.Join(
            plan,
            algebra.Scan(name, schema_for(name)),
            Comparison("=", col(f"{tables[0]}.k"), col(f"{name}.k")),
        )
    return plan


def sizes(**kwargs):
    return lambda name: kwargs.get(name, 100)


class TestEdgeColoring:
    def test_colors(self):
        plan = join_plan("m1", "m2", "a1")
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, red_tables={"m1", "m2"})
        colors = {
            tuple(sorted(edge.tables)): colored.edge_color(edge)
            for edge in graph.edges.values()
        }
        assert colors[("m1", "m2")] == EdgeColor.RED
        assert colors[("a1", "m1")] == EdgeColor.BLUE

    def test_black_edge(self):
        plan = algebra.Join(
            algebra.Scan("a1", schema_for("a1")),
            algebra.Scan("a2", schema_for("a2")),
            Comparison("=", col("a1.k"), col("a2.k")),
        )
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, red_tables=set())
        edge = next(iter(graph.edges.values()))
        assert colored.edge_color(edge) == EdgeColor.BLACK

    def test_vertex_partition(self):
        graph = build_query_graph(join_plan("m1", "a1"))
        colored = ColoredGraph(graph, red_tables={"m1"})
        assert colored.red_vertices == {"m1"}
        assert colored.black_vertices == {"a1"}


def assert_reds_before_blacks(order, reds):
    red_positions = [i for i, n in enumerate(order) if n in reds]
    black_positions = [i for i, n in enumerate(order) if n not in reds]
    if red_positions and black_positions:
        assert max(red_positions) < min(black_positions)


def black_subtree_is_linear(plan, reds):
    """R3: below any join with a black vertex, the right input is a leaf."""

    def contains_black(node):
        return any(t not in reds for t in node.base_tables())

    def visit(node):
        if isinstance(node, algebra.Join) and contains_black(node):
            right = node.right
            while isinstance(right, algebra.Select):
                right = right.child
            # right side holding black vertices must be a single leaf
            if (
                contains_black(node.left)
                or not isinstance(right, algebra.Scan)
            ) and (
                contains_black(node.right)
                and not isinstance(right, algebra.Scan)
            ):
                return False
            if not visit(node.left):
                return False
            if not visit(node.right):
                return False
        elif isinstance(node, algebra.Join):
            return visit(node.left) and visit(node.right)
        return True

    return visit(plan)


class TestOrderJoins:
    def test_r1_reds_first(self):
        plan = join_plan("m1", "a1", "m2")
        graph = build_query_graph(plan)
        reds = {"m1", "m2"}
        colored = ColoredGraph(graph, reds)
        ordered = order_joins(colored, sizes())
        assert_reds_before_blacks(ordered.join_order, reds)
        assert ordered.metadata_branch is not None
        assert ordered.metadata_branch.base_tables() == reds

    def test_r2_cross_product_merges_disconnected_reds(self):
        # m2 is only connected to a1 (blue edge); joining m1 and m2 needs a
        # cross product before any blue edge may be used.
        m1 = algebra.Scan("m1", schema_for("m1"))
        m2 = algebra.Scan("m2", schema_for("m2"))
        a1 = algebra.Scan("a1", schema_for("a1"))
        plan = algebra.Join(
            algebra.Join(
                m1, a1, Comparison("=", col("m1.k"), col("a1.k"))
            ),
            m2,
            Comparison("=", col("a1.v"), col("m2.v")),
        )
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, {"m1", "m2"})
        ordered = order_joins(colored, sizes())
        assert ordered.used_cross_product
        assert_reds_before_blacks(ordered.join_order, {"m1", "m2"})

    def test_r2_disabled_avoids_cross_product(self):
        m1 = algebra.Scan("m1", schema_for("m1"))
        m2 = algebra.Scan("m2", schema_for("m2"))
        a1 = algebra.Scan("a1", schema_for("a1"))
        plan = algebra.Join(
            algebra.Join(
                m1, a1, Comparison("=", col("m1.k"), col("a1.k"))
            ),
            m2,
            Comparison("=", col("a1.v"), col("m2.v")),
        )
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, {"m1", "m2"})
        ordered = order_joins(
            colored, sizes(), RuleSet.disabled("r2")
        )
        # Without R2, m2 is joined later through its blue edge (no cross
        # product), so the metadata branch contains only m1.
        assert not ordered.used_cross_product
        assert ordered.metadata_branch.base_tables() == {"m1"}

    def test_r4_black_edges_last(self):
        # a1-a2 are joined by a black edge; a2 also reachable via blue from
        # m1.  The blue edge must be preferred.
        m1 = algebra.Scan("m1", schema_for("m1"))
        a1 = algebra.Scan("a1", schema_for("a1"))
        a2 = algebra.Scan("a2", schema_for("a2"))
        plan = algebra.Join(
            algebra.Join(m1, a1, Comparison("=", col("m1.k"), col("a1.k"))),
            a2,
            Comparison("=", col("a1.v"), col("a2.v")),
        )
        graph = build_query_graph(plan)
        # add a blue edge m1-a2
        graph.add_predicate(Comparison("=", col("m1.k"), col("a2.k")))
        colored = ColoredGraph(graph, {"m1"})
        ordered = order_joins(colored, sizes(a1=1000, a2=10))
        assert ordered.join_order[0] == "m1"

    def test_local_predicates_attached_to_leaves(self):
        plan = algebra.Select(
            join_plan("m1", "a1"),
            Comparison("=", col("m1.v"), lit(5)),
        )
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, {"m1"})
        ordered = order_joins(colored, sizes())

        def find_selects(node):
            found = []
            stack = [node]
            while stack:
                current = stack.pop()
                if isinstance(current, algebra.Select):
                    found.append(current)
                stack.extend(current.children())
            return found

        selects = find_selects(ordered.plan)
        assert len(selects) == 1
        assert isinstance(selects[0].child, algebra.Scan)

    def test_metadata_only_graph(self):
        plan = join_plan("m1", "m2")
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, {"m1", "m2"})
        ordered = order_joins(colored, sizes())
        assert ordered.metadata_branch is ordered.plan

    def test_all_black_graph(self):
        plan = join_plan("a1", "a2")
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, set())
        ordered = order_joins(colored, sizes())
        assert ordered.metadata_branch is None
        assert set(ordered.join_order) == {"a1", "a2"}

    def test_empty_graph_rejected(self):
        from repro.engine.join_graph import QueryGraph

        with pytest.raises(PlanError):
            order_joins(ColoredGraph(QueryGraph(), set()), sizes())

    def test_unknown_rule_name(self):
        with pytest.raises(PlanError):
            RuleSet.disabled("r9")

    def test_smaller_table_seeds_red_plan(self):
        plan = join_plan("m1", "m2", "m3")
        graph = build_query_graph(plan)
        colored = ColoredGraph(graph, {"m1", "m2", "m3"})
        ordered = order_joins(colored, sizes(m1=1000, m2=10, m3=500))
        assert ordered.join_order[0] == "m2"

    def test_r3_linear_black_part(self):
        plan = join_plan("m1", "a1", "a2", "a3")
        graph = build_query_graph(plan)
        reds = {"m1"}
        colored = ColoredGraph(graph, reds)
        ordered = order_joins(colored, sizes())
        assert black_subtree_is_linear(ordered.plan, reds)
