"""Tests for Algorithm 1: incremental metadata derivation."""

import pytest

from repro.core.partial_views import _coalesce_runs
from repro.core.schema import HOUR_MS
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t2_query, t3_query, t5_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def params(start, hours, station="FIAM", channel="HHZ", **kwargs):
    return QueryParams(
        station=station,
        channel=channel,
        start_ms=start,
        end_ms=start + hours * HOUR_MS,
        **kwargs,
    )


class TestAlgorithmSteps:
    def test_skip_for_non_dmd_query(self, lazy_db, day_range):
        from repro.workloads import t4_query

        start, end = day_range
        sql = t4_query(QueryParams("ISK", "BHE", start, end))
        _, report = lazy_db.query_with_derivation(sql)
        assert not report.applicable

    def test_psq_enumeration_one_station(self, lazy_db):
        sql = t2_query(params(EPOCH_2010_MS, 6))
        _, report = lazy_db.query_with_derivation(sql)
        assert report.applicable
        assert report.psq_size == 6  # one (station, channel) pair x 6 hours

    def test_covering_avoids_recompute(self, lazy_db):
        sql = t2_query(params(EPOCH_2010_MS, 6))
        _, first = lazy_db.query_with_derivation(sql)
        assert first.psu_size == 6
        _, second = lazy_db.query_with_derivation(sql)
        assert second.psu_size == 0
        assert second.windows_inserted == 0

    def test_partial_overlap_computes_only_gap(self, lazy_db):
        lazy_db.query(t2_query(params(EPOCH_2010_MS, 6)))
        _, report = lazy_db.query_with_derivation(
            t2_query(params(EPOCH_2010_MS + 3 * HOUR_MS, 6))
        )
        # hours 3..9: hours 3..6 covered, 6..9 are new
        assert report.psu_size == 3

    def test_range_clipped_to_data_span(self, lazy_db):
        # Ask far beyond the 2-day dataset: PSq must clip to the ~48 hours
        # of actual data (segment gaps can spill one extra window).
        sql = t2_query(params(EPOCH_2010_MS, 24 * 365))
        _, report = lazy_db.query_with_derivation(sql)
        assert report.psq_size <= 50

    def test_unconstrained_station_enumerates_all_pairs(self, lazy_db):
        sql = f"""
            SELECT H.window_max_val FROM H
            WHERE H.window_start_ts >= '2010-01-01T00:00:00.000'
              AND H.window_start_ts < '2010-01-01T02:00:00.000'
        """
        _, report = lazy_db.query_with_derivation(sql)
        assert report.psq_size == 4 * 2  # 4 station/channel pairs x 2 hours

    def test_transitive_station_constraint_through_join(self, lazy_db):
        # T3 constrains F.station; H.window_station = F.station must narrow
        # the key space to one station.
        sql = t3_query(params(EPOCH_2010_MS, 4))
        _, report = lazy_db.query_with_derivation(sql)
        assert report.psq_size == 4

    def test_derivation_values_match_eager(self, lazy_db, eager_dmd_db):
        sql = t2_query(params(EPOCH_2010_MS, 12))
        lazy_rows = lazy_db.query(sql).table.to_dicts()
        eager_rows = eager_dmd_db.query(sql).table.to_dicts()
        assert len(lazy_rows) == len(eager_rows)
        for lazy_row, eager_row in zip(lazy_rows, eager_rows):
            assert lazy_row["window_start_ts"] == eager_row["window_start_ts"]
            assert lazy_row["max_val"] == pytest.approx(eager_row["max_val"])
            assert lazy_row["std_dev"] == pytest.approx(eager_row["std_dev"])

    def test_lazy_derivation_loads_chunks(self, lazy_db):
        _, report = lazy_db.query_with_derivation(
            t2_query(params(EPOCH_2010_MS, 3))
        )
        assert report.chunks_loaded >= 1

    def test_t5_uses_windows_for_chunk_filtering(self, lazy_db, two_day_range):
        start, end = two_day_range
        sql = t5_query(
            QueryParams(
                station="FIAM",
                channel="HHZ",
                start_ms=start,
                end_ms=end,
                max_val_threshold=0.0,
                std_dev_threshold=0.0,
            )
        )
        result = lazy_db.query(sql)
        assert result.table.to_dicts()[0]["n_samples"] > 0

    def test_empty_windows_remembered(self, lazy_db):
        # A station with no data in the asked range: derivation inserts
        # nothing but the keys count as materialized.
        sql = t2_query(params(EPOCH_2010_MS, 2, station="ISK", channel="BHE"))
        _, first = lazy_db.query_with_derivation(sql)
        _, second = lazy_db.query_with_derivation(sql)
        assert second.psu_size == 0

    def test_manager_sync_from_existing_table(self, eager_dmd_db):
        # eager_dmd materialized everything; a fresh query must not derive.
        _, report = eager_dmd_db.query_with_derivation(
            t2_query(params(EPOCH_2010_MS, 6))
        )
        assert report.psu_size == 0


class TestDeriveAll:
    def test_derive_all_covers_everything(self, lazy_db):
        report = lazy_db.views.derive_all()
        assert report.psq_size > 0
        assert report.psu_size == report.psq_size
        follow_up = lazy_db.views.derive_all()
        assert follow_up.psu_size == 0

    def test_h_rows_keyed_uniquely(self, lazy_db):
        lazy_db.views.derive_all()
        h_data = lazy_db.database.catalog.table("H").data
        keys = set(
            zip(
                h_data.column("window_station").to_list(),
                h_data.column("window_channel").to_list(),
                h_data.column("window_start_ts").to_list(),
            )
        )
        assert len(keys) == h_data.num_rows


class TestCoalesceRuns:
    def test_contiguous_merge(self):
        keys = [("S", "C", 0), ("S", "C", HOUR_MS), ("S", "C", 2 * HOUR_MS)]
        assert _coalesce_runs(keys) == [("S", "C", 0, 3 * HOUR_MS)]

    def test_gap_splits_runs(self):
        keys = [("S", "C", 0), ("S", "C", 5 * HOUR_MS)]
        runs = _coalesce_runs(keys)
        assert runs == [
            ("S", "C", 0, HOUR_MS),
            ("S", "C", 5 * HOUR_MS, 6 * HOUR_MS),
        ]

    def test_pairs_separated(self):
        keys = [("A", "C", 0), ("B", "C", 0)]
        assert len(_coalesce_runs(keys)) == 2

    def test_unsorted_input(self):
        keys = [("S", "C", 2 * HOUR_MS), ("S", "C", 0), ("S", "C", HOUR_MS)]
        assert _coalesce_runs(keys) == [("S", "C", 0, 3 * HOUR_MS)]
