"""Workload-aware prefetcher: prediction, warming, per-session history."""

import pytest

from repro.core.loading import prepare
from repro.core.prefetch import WorkloadPrefetcher
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def day_sql(day: int, station="ISK", channel="BHE") -> str:
    start = EPOCH_2010_MS + day * MILLIS_PER_DAY
    return t4_query(
        QueryParams(
            station=station, channel=channel,
            start_ms=start, end_ms=start + MILLIS_PER_DAY,
        )
    )


def station_uris(db, station: str) -> list[str]:
    files = db.database.catalog.table("F").data
    return sorted(
        uri
        for uri, st in zip(
            files.column("uri").values, files.column("station").values
        )
        if st == station
    )


class TestPrediction:
    def test_successor_of_day0_is_day1(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        submitted = prefetcher.note_query(1, [day0])
        assert submitted == [day1]
        prefetcher.wait_idle()
        assert day1 in lazy_db.database.recycler
        assert prefetcher.stats_snapshot()["completed"] == 1

    def test_last_chunk_has_no_successor(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        _, day1 = station_uris(lazy_db, "ISK")
        assert prefetcher.note_query(1, [day1]) == []

    def test_prediction_skips_already_required(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        assert prefetcher.note_query(1, [day0, day1]) == []

    def test_hits_counted_once_warmed(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        assert prefetcher.record_hits([day0]) == 0
        prefetcher.note_query(1, [day0])
        prefetcher.wait_idle()
        assert prefetcher.record_hits([day1]) == 1
        assert prefetcher.stats_snapshot()["hits"] == 1

    def test_evicted_chunk_is_no_hit_and_warmable_again(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        prefetcher.note_query(1, [day0])
        prefetcher.wait_idle()
        assert day1 in lazy_db.database.recycler
        # Evict everything: the warmed chunk is gone from the cache.
        lazy_db.database.recycler.clear()
        assert prefetcher.record_hits([day1]) == 0
        assert prefetcher.stats_snapshot()["hits"] == 0
        # ...and it is predictable (and warmable) again.
        assert prefetcher.note_query(1, [day0]) == [day1]
        prefetcher.wait_idle()
        assert day1 in lazy_db.database.recycler
        assert prefetcher.record_hits([day1]) == 1

    def test_pruned_but_resident_chunk_keeps_warm_status(self, lazy_db):
        # A warmed chunk the planner prunes from a later query is neither
        # a hit nor forgotten: only cold-reloaded chunks leave the set.
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        prefetcher.note_query(1, [day0])
        prefetcher.wait_idle()
        hits = prefetcher.record_hits(
            [day0, day1], resident_uris=[], loaded_uris=[day0]
        )
        assert hits == 0
        with prefetcher._lock:
            assert day1 in prefetcher._warmed  # pruned, still warm
        assert prefetcher.record_hits(
            [day1], resident_uris=[day1], loaded_uris=[]
        ) == 1

    def test_session_history_is_bounded(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        prefetcher._max_sessions = 4
        day0, _ = station_uris(lazy_db, "ISK")
        for session_id in range(10):
            prefetcher.note_query(session_id, [day0])
        assert len(prefetcher._sessions) <= 4
        assert 9 in prefetcher._sessions  # most recent survive
        assert 0 not in prefetcher._sessions

    def test_forward_streak_unlocks_depth(self, lazy_db):
        # Three ISK.BHE chunks do not exist at test scale, so exercise the
        # streak logic on the (station-grouped) frontier bookkeeping only.
        prefetcher = WorkloadPrefetcher(lazy_db.database, depth=2)
        day0, day1 = station_uris(lazy_db, "ISK")
        prefetcher.note_query(7, [day0])
        history = prefetcher._sessions[7]
        assert history.forward_streak == 1
        prefetcher.note_query(7, [day1])  # moved forward in time
        assert prefetcher._sessions[7].forward_streak == 2
        prefetcher.note_query(7, [day1])  # stalled: streak resets
        assert prefetcher._sessions[7].forward_streak == 1


class TestWarmedBookkeeping:
    def test_hit_is_counted_once_per_warm(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database)
        day0, day1 = station_uris(lazy_db, "ISK")
        prefetcher.note_query(1, [day0])
        prefetcher.wait_idle()
        # A dashboard re-reading the still-resident chunk: the first query
        # is the prefetcher's contribution, the repeats are the recycler's.
        assert prefetcher.record_hits([day1]) == 1
        assert prefetcher.record_hits([day1]) == 0
        assert prefetcher.record_hits([day1]) == 0
        assert prefetcher.stats_snapshot()["hits"] == 1
        # A fresh warm of the same URI earns a fresh (single) hit.
        lazy_db.database.recycler.clear()
        prefetcher.note_query(1, [day0])
        prefetcher.wait_idle()
        assert prefetcher.record_hits([day1]) == 1
        assert prefetcher.record_hits([day1]) == 0
        assert prefetcher.stats_snapshot()["hits"] == 2

    def test_warmed_set_is_lru_bounded(self, lazy_db):
        prefetcher = WorkloadPrefetcher(lazy_db.database, max_warmed=3)
        uris = sorted(
            lazy_db.database.catalog.table("F").data.column("uri").to_list()
        )
        assert len(uris) == 8
        for uri in uris:
            prefetcher._warm_one(uri)
        with prefetcher._lock:
            assert len(prefetcher._warmed) == 3
            # LRU: the most recently warmed survive.
            assert set(prefetcher._warmed) == set(uris[-3:])

    def test_soak_pruned_while_warm_does_not_accumulate(self, lazy_db):
        """The long-running-server scenario: chunks get warmed, then every
        later query planner-prunes them (resident but never loaded), so
        nothing ever evicts them from the warmed set organically."""
        prefetcher = WorkloadPrefetcher(lazy_db.database, max_warmed=4)
        uris = sorted(
            lazy_db.database.catalog.table("F").data.column("uri").to_list()
        )
        for round_no in range(50):
            uri = uris[round_no % len(uris)]
            prefetcher._warm_one(uri)
            # Pruned while warm: neither resident-hit nor reloaded.
            prefetcher.record_hits([uri], resident_uris=[], loaded_uris=[])
            with prefetcher._lock:
                assert len(prefetcher._warmed) <= 4
        assert prefetcher.stats_snapshot()["hits"] == 0


class TestFacadeIntegration:
    @pytest.fixture()
    def prefetch_db(self, tiny_repo):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(prefetch=True)
        )
        yield db
        db.close()

    def test_sequential_session_is_served_from_prefetch(self, prefetch_db):
        with prefetch_db.session() as session:
            first = session.query(day_sql(0))
            assert first.stats.chunks_loaded == 1
            assert first.stats.chunks_prefetched == 0
            prefetch_db.prefetcher.wait_idle()
            second = session.query(day_sql(1))
        # The day-1 chunk was warmed while the client was "thinking".
        assert second.stats.chunks_loaded == 0
        assert second.stats.chunks_prefetched == 1
        snapshot = prefetch_db.prefetcher.stats_snapshot()
        assert snapshot["issued"] == 1
        assert snapshot["completed"] == 1
        assert snapshot["hits"] == 1

    def test_eviction_between_queries_reports_no_phantom_hit(
        self, prefetch_db
    ):
        with prefetch_db.session() as session:
            session.query(day_sql(0))
            prefetch_db.prefetcher.wait_idle()
            # Evict the warmed chunk; the next query cold-loads it, and by
            # hit-recording time it is resident again — the counter must
            # use plan-time residency, not an after-the-fact probe.
            prefetch_db.database.recycler.clear()
            second = session.query(day_sql(1))
        assert second.stats.chunks_prefetched == 0
        assert second.stats.chunks_loaded >= 1

    def test_prefetch_disabled_by_default(self, lazy_db):
        assert lazy_db.prefetcher is None
        result = lazy_db.query(day_sql(0))
        assert result.stats.chunks_prefetched == 0

    def test_planner_stats_expose_prefetch_section(self, prefetch_db):
        stats = prefetch_db.planner_stats()
        assert "prefetch" in stats
        assert "planner" in stats
        assert stats["chunk_stats"]["chunks_tracked"] == 8
