"""Tests for the Registrar and the five loading approaches."""

import pytest

from repro.core.loading import APPROACHES, prepare
from repro.core.registrar import Registrar, XseedChunkLoader
from repro.core.schema import create_seismology_schema
from repro.engine.database import Database
from repro.engine.errors import ExecutionError


class TestRegistrar:
    def test_f_and_s_populated(self, lazy_db, tiny_repo):
        _, stats = tiny_repo
        f_table = lazy_db.database.catalog.table("F")
        s_table = lazy_db.database.catalog.table("S")
        assert f_table.num_rows == stats.num_files
        assert s_table.num_rows == stats.num_segments

    def test_file_ids_unique_and_dense(self, lazy_db):
        ids = lazy_db.database.catalog.table("F").data.column("file_id").to_list()
        assert sorted(ids) == list(range(len(ids)))

    def test_uri_station_consistency(self, lazy_db):
        f_data = lazy_db.database.catalog.table("F").data
        for uri, station in zip(
            f_data.column("uri").to_list(), f_data.column("station").to_list()
        ):
            assert station in uri

    def test_loader_installed(self, lazy_db):
        assert isinstance(lazy_db.database.chunk_loader, XseedChunkLoader)

    def test_serial_and_parallel_agree(self, tiny_repo, tmp_path):
        results = []
        for threads in (1, 4):
            database = Database(workdir=str(tmp_path / f"t{threads}"))
            create_seismology_schema(database)
            report = Registrar(database, threads=threads).register(tiny_repo[0])
            f_rows = database.catalog.table("F").data.to_dicts()
            results.append((report.num_files, report.num_segments, f_rows))
            database.close()
        assert results[0] == results[1]

    def test_registering_twice_appends_with_new_ids(self, tiny_repo, tmp_path):
        database = Database(workdir=str(tmp_path / "twice"))
        create_seismology_schema(database)
        registrar = Registrar(database, threads=1)
        registrar.register(tiny_repo[0])
        first_count = database.catalog.table("F").num_rows
        registrar.register(tiny_repo[0])
        ids = database.catalog.table("F").data.column("file_id").to_list()
        assert len(ids) == 2 * first_count
        assert len(set(ids)) == len(ids)
        database.close()

    def test_loader_rejects_unknown_table(self, lazy_db):
        loader = lazy_db.database.chunk_loader
        uri = lazy_db.database.catalog.table("F").data.column("uri")[0]
        with pytest.raises(ExecutionError):
            loader.load(uri, "F")

    def test_loader_rejects_unknown_uri(self, lazy_db):
        with pytest.raises(ExecutionError):
            lazy_db.database.chunk_loader.load("/nope.xseed", "D")


class TestLoadingApproaches:
    def test_all_five_registered(self):
        assert set(APPROACHES) == {
            "lazy",
            "eager_plain",
            "eager_csv",
            "eager_index",
            "eager_dmd",
        }

    def test_unknown_approach(self, tiny_repo):
        with pytest.raises(ValueError):
            prepare("eager_turbo", tiny_repo[0])

    def test_lazy_loads_no_actual_data(self, tiny_repo):
        db, report = prepare("lazy", tiny_repo[0])
        assert db.database.catalog.table("D").num_rows == 0
        assert report.num_samples == 0
        assert "mseed_to_db" not in report.seconds
        db.close()

    def test_lazy_metadata_tiny_vs_repo(self, tiny_repo):
        db, report = prepare("lazy", tiny_repo[0])
        assert 0 < report.metadata_bytes < report.repo_bytes
        db.close()

    def test_eager_plain_loads_everything(self, tiny_repo):
        _, stats = tiny_repo
        db, report = prepare("eager_plain", tiny_repo[0])
        assert report.num_samples == stats.num_samples
        assert db.database.table_num_rows("D") == stats.num_samples
        db.close()

    def test_eager_plain_pages_out_d(self, tiny_repo):
        db, _ = prepare("eager_plain", tiny_repo[0])
        assert db.database.catalog.table("D").paged
        db.close()

    def test_eager_csv_buckets_and_sizes(self, tiny_repo):
        db, report = prepare("eager_csv", tiny_repo[0])
        assert report.bucket("mseed_to_csv") > 0
        assert report.bucket("csv_to_db") > 0
        # Table III shape: CSV text much larger than the compressed chunks.
        assert report.csv_bytes > 3 * report.repo_bytes
        db.close()

    def test_eager_csv_same_rows_as_plain(self, tiny_repo):
        db_csv, r_csv = prepare("eager_csv", tiny_repo[0])
        db_plain, r_plain = prepare("eager_plain", tiny_repo[0])
        assert r_csv.num_samples == r_plain.num_samples
        db_csv.close()
        db_plain.close()

    def test_eager_index_builds_indexes(self, tiny_repo):
        db, report = prepare("eager_index", tiny_repo[0])
        assert report.bucket("indexing") > 0
        assert report.index_bytes > 0
        assert len(db.database.join_indexes) == 3  # S->F, D->F, D->S
        db.close()

    def test_eager_dmd_materializes_h(self, tiny_repo):
        db, report = prepare("eager_dmd", tiny_repo[0])
        assert report.bucket("dmd") > 0
        assert db.database.catalog.table("H").num_rows > 0
        db.close()

    def test_db_larger_than_repo_for_eager(self, tiny_repo):
        # Decompression + timestamp materialization blow up storage.
        db, report = prepare("eager_plain", tiny_repo[0])
        assert report.db_bytes > report.repo_bytes
        db.close()

    def test_lazy_prep_faster_than_eager(self, tiny_repo):
        _, lazy_report = prepare("lazy", tiny_repo[0])
        _, eager_report = prepare("eager_csv", tiny_repo[0])
        assert lazy_report.total_seconds < eager_report.total_seconds

    def test_total_seconds_sums_buckets(self, tiny_repo):
        db, report = prepare("eager_index", tiny_repo[0])
        assert report.total_seconds == pytest.approx(
            sum(report.seconds.values())
        )
        db.close()
