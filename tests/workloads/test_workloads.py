"""Tests for query templates and workload generation."""

import pytest

from repro.data.ingv import EPOCH_2010_MS
from repro.engine.sql import parse_select
from repro.workloads import (
    QUERY1,
    QUERY2,
    QUERY_BUILDERS,
    QueryParams,
    TimeSpan,
    WorkloadSpec,
    generate_workload,
    selectivity_range,
)

HOUR_MS = 3600 * 1000


class TestTemplates:
    @pytest.mark.parametrize("name", list(QUERY_BUILDERS))
    def test_all_templates_parse(self, name):
        params = QueryParams(
            station="FIAM",
            channel="HHZ",
            start_ms=EPOCH_2010_MS,
            end_ms=EPOCH_2010_MS + HOUR_MS,
        )
        statement = parse_select(QUERY_BUILDERS[name](params))
        assert statement.from_name

    def test_paper_examples_parse(self):
        assert parse_select(QUERY1).from_name == "dataview"
        assert parse_select(QUERY2).from_name == "windowdataview"

    def test_params_iso_rendering(self):
        params = QueryParams(start_ms=0, end_ms=1000)
        assert params.start_iso == "1970-01-01T00:00:00.000"
        assert params.end_iso == "1970-01-01T00:00:01.000"


class TestSelectivityRange:
    def test_zero(self):
        span = TimeSpan(100, 1100)
        assert selectivity_range(span, 0.0) == (100, 100)

    def test_full(self):
        span = TimeSpan(100, 1100)
        assert selectivity_range(span, 1.0) == (100, 1100)

    def test_half(self):
        span = TimeSpan(0, 1000)
        assert selectivity_range(span, 0.5) == (0, 500)

    def test_out_of_bounds(self):
        with pytest.raises(ValueError):
            selectivity_range(TimeSpan(0, 10), 1.5)


class TestWorkloadGeneration:
    def _span(self):
        return TimeSpan(EPOCH_2010_MS, EPOCH_2010_MS + 100 * HOUR_MS)

    def test_query_count(self):
        spec = WorkloadSpec("T4", 20, 0.025, 0.5)
        assert len(generate_workload(spec, self._span())) == 20

    def test_deterministic(self):
        spec = WorkloadSpec("T3", 10, 0.025, 0.8)
        a = generate_workload(spec, self._span())
        b = generate_workload(spec, self._span())
        assert a == b

    def test_different_seeds_differ(self):
        span = self._span()
        a = generate_workload(WorkloadSpec("T4", 10, 0.025, 0.8, seed=1), span)
        b = generate_workload(WorkloadSpec("T4", 10, 0.025, 0.8, seed=2), span)
        assert a != b

    def test_space_fully_covered(self):
        # First query starts at the space start; last ends at its end.
        span = self._span()
        spec = WorkloadSpec("T4", 5, 0.1, 0.6)
        queries = generate_workload(spec, span)
        assert str(span.start_ms // 1) or True
        # All generated queries parse and stay inside the workload space.
        for sql in queries:
            statement = parse_select(sql)
            assert statement.from_name == "dataview"

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadSpec("T9", 1, 0.1, 0.5), self._span())

    def test_station_parameter_respected(self):
        spec = WorkloadSpec("T4", 3, 0.1, 0.5, station="ISK", channel="BHE")
        for sql in generate_workload(spec, self._span()):
            assert "'ISK'" in sql
