"""Shared fixtures: tiny synthetic repositories and prepared databases.

Repository builds are session-scoped (deterministic, so safe to share);
databases are function-scoped unless the test only reads.
"""

from __future__ import annotations

import pytest

from repro.core.loading import prepare
from repro.data import SCALE_TEST, build_or_reuse
from repro.data.ingv import EPOCH_2010_MS

MILLIS_PER_DAY = 24 * 3600 * 1000


@pytest.fixture(scope="session")
def repo_base(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repos"))


@pytest.fixture(scope="session")
def tiny_repo(repo_base):
    """sf-1 test-scale repository: 8 files (4 stations x 2 days)."""
    repository, stats = build_or_reuse(repo_base, 1, SCALE_TEST)
    return repository, stats


@pytest.fixture(scope="session")
def tiny_fiam_repo(repo_base):
    """FIAM-only test-scale repository (for selectivity workloads)."""
    repository, stats = build_or_reuse(repo_base, 1, SCALE_TEST, fiam_only=True)
    return repository, stats


@pytest.fixture()
def lazy_db(tiny_repo):
    db, report = prepare("lazy", tiny_repo[0])
    yield db
    db.close()


@pytest.fixture()
def eager_db(tiny_repo):
    db, report = prepare("eager_plain", tiny_repo[0])
    yield db
    db.close()


@pytest.fixture()
def eager_index_db(tiny_repo):
    db, report = prepare("eager_index", tiny_repo[0])
    yield db
    db.close()


@pytest.fixture()
def eager_dmd_db(tiny_repo):
    db, report = prepare("eager_dmd", tiny_repo[0])
    yield db
    db.close()


@pytest.fixture()
def day_range():
    """The first full day of the synthetic datasets."""
    return EPOCH_2010_MS, EPOCH_2010_MS + MILLIS_PER_DAY


@pytest.fixture()
def two_day_range():
    return EPOCH_2010_MS, EPOCH_2010_MS + 2 * MILLIS_PER_DAY
