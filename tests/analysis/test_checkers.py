"""Per-checker fixtures: one known-bad and one known-good snippet each."""


class TestCounterPlumbing:
    def test_field_missing_from_merge_fires(self, run_checker):
        findings = run_checker(
            "counter-plumbing",
            """
            class ExecStats:
                rows_scanned: int = 0
                chunks_loaded: int = 0

                def reset(self):
                    self.rows_scanned = 0
                    self.chunks_loaded = 0

                def merge(self, other):
                    self.rows_scanned += other.rows_scanned
            """,
        )
        assert len(findings) == 1
        assert "chunks_loaded" in findings[0].message
        assert "merge" in findings[0].message

    def test_fully_plumbed_class_is_clean(self, run_checker):
        findings = run_checker(
            "counter-plumbing",
            """
            class ExecStats:
                rows_scanned: int = 0

                def reset(self):
                    self.rows_scanned = 0

                def merge(self, other):
                    self.rows_scanned += other.rows_scanned
            """,
        )
        assert findings == []

    def test_facade_key_missing_fires(self, run_checker):
        findings = run_checker(
            "counter-plumbing",
            """
            class SommelierStats:
                queries_executed: int = 0
                derivations: int = 0

                def merge(self, other):
                    self.queries_executed += other.queries_executed
                    self.derivations += other.derivations

            def counters_snapshot(self):
                snapshot = {}
                snapshot["facade"] = {"queries_executed": 1}
                return snapshot
            """,
        )
        assert len(findings) == 1
        assert "derivations" in findings[0].message
        assert "facade" in findings[0].message

    def test_missing_reset_method_fires(self, run_checker):
        findings = run_checker(
            "counter-plumbing",
            """
            class ExecStats:
                rows_scanned: int = 0

                def merge(self, other):
                    self.rows_scanned += other.rows_scanned
            """,
        )
        assert any("reset" in f.message for f in findings)


class TestPickleBoundary:
    BAD = """
        class Marker:
            def __init__(self, name):
                self.name = name

        UNIT = Marker("unit")

        def is_unit(value):
            return value is UNIT
    """

    def test_identity_compared_singleton_without_reduce_fires(
        self, run_checker
    ):
        findings = run_checker("pickle-boundary", self.BAD)
        assert len(findings) == 1
        assert "__reduce__" in findings[0].message
        assert "UNIT" in findings[0].message

    def test_reduce_makes_singleton_safe(self, run_checker):
        findings = run_checker(
            "pickle-boundary",
            """
            class Marker:
                def __init__(self, name):
                    self.name = name

                def __reduce__(self):
                    return (by_name, (self.name,))

            UNIT = Marker("unit")

            def is_unit(value):
                return value is UNIT
            """,
        )
        assert findings == []

    def test_uncompared_singleton_is_not_flagged(self, run_checker):
        findings = run_checker(
            "pickle-boundary",
            """
            class Marker:
                pass

            UNIT = Marker()
            """,
        )
        assert findings == []

    def test_enum_singletons_are_safe(self, run_checker):
        findings = run_checker(
            "pickle-boundary",
            """
            import enum

            class Mode(enum.Enum):
                LAZY = "lazy"

            def check(value):
                return value is Mode.LAZY
            """,
        )
        assert findings == []


class TestAsyncBlocking:
    def test_time_sleep_in_coroutine_fires(self, run_checker):
        findings = run_checker(
            "async-blocking",
            """
            import time

            async def handler(request):
                time.sleep(0.1)
            """,
        )
        assert len(findings) == 1
        assert "asyncio.sleep" in findings[0].message

    def test_awaited_asyncio_sleep_is_clean(self, run_checker):
        findings = run_checker(
            "async-blocking",
            """
            import asyncio

            async def handler(request):
                await asyncio.sleep(0.1)
            """,
        )
        assert findings == []

    def test_bare_acquire_fires_but_awaited_does_not(self, run_checker):
        findings = run_checker(
            "async-blocking",
            """
            async def bad(self):
                self._lock.acquire()

            async def good(self):
                await self._semaphore.acquire()
            """,
        )
        assert len(findings) == 1
        assert "bad" in findings[0].message

    def test_sync_helper_inside_coroutine_is_skipped(self, run_checker):
        # The usual run_in_executor payload: blocking calls are its point.
        findings = run_checker(
            "async-blocking",
            """
            import time

            async def handler(loop):
                def blocking_probe():
                    time.sleep(0.1)
                    return open("/dev/null")

                return await loop.run_in_executor(None, blocking_probe)
            """,
        )
        assert findings == []

    def test_sync_function_is_out_of_scope(self, run_checker):
        findings = run_checker(
            "async-blocking",
            """
            import time

            def worker():
                time.sleep(0.1)
            """,
        )
        assert findings == []


class TestCancellation:
    def test_fetching_schedule_loop_without_poll_fires(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            def run(self, schedule, ctx):
                for index in schedule:
                    table = self.recycler.get_or_load(index)
                    self.emit(table)
            """,
        )
        assert len(findings) == 1
        assert "cancel" in findings[0].message

    def test_polled_loop_is_clean(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            def run(self, schedule, ctx):
                for index in schedule:
                    ctx.check_cancelled()
                    table = self.recycler.get_or_load(index)
            """,
        )
        assert findings == []

    def test_claim_only_sweep_is_not_flagged(self, run_checker):
        # Bookkeeping over the schedule fetches nothing: nothing to cancel.
        findings = run_checker(
            "cancellation",
            """
            def claim(self, schedule):
                claimed = []
                for index in schedule:
                    claimed.append(index)
                return claimed
            """,
        )
        assert findings == []


class TestDurability:
    def test_write_then_rename_without_fsync_fires_twice(self, run_checker):
        findings = run_checker(
            "durability",
            """
            import json
            import os

            def checkpoint(path, payload):
                staging = path + ".tmp"
                with open(staging, "w") as handle:
                    json.dump(payload, handle)
                os.replace(staging, path)
            """,
        )
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "fsync" in messages
        assert "directory" in messages

    def test_fsynced_commit_is_clean(self, run_checker):
        findings = run_checker(
            "durability",
            """
            import json
            import os

            def checkpoint(path, payload):
                staging = path + ".tmp"
                with open(staging, "w") as handle:
                    json.dump(payload, handle)
                    _fsync_file(handle)
                os.replace(staging, path)
                _fsync_dir(os.path.dirname(path))
            """,
        )
        assert findings == []

    def test_rename_only_shuffle_is_exempt(self, run_checker):
        # Sweeps/quarantines move already-committed directories around.
        findings = run_checker(
            "durability",
            """
            import os

            def quarantine(entry, target):
                os.rename(entry, target)
            """,
        )
        assert findings == []


class TestLockDiscipline:
    def test_guarded_write_outside_lock_fires(self, run_checker):
        findings = run_checker(
            "lock-discipline",
            """
            import threading

            class Budget:
                _GUARDED = {"_lock": ("_bytes_cached",)}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._bytes_cached = 0

                def add(self, n):
                    self._bytes_cached += n
            """,
        )
        assert len(findings) == 1
        assert "_bytes_cached" in findings[0].message
        assert "with self._lock" in findings[0].message

    def test_guarded_write_under_lock_is_clean(self, run_checker):
        findings = run_checker(
            "lock-discipline",
            """
            import threading

            class Budget:
                _GUARDED = {"_lock": ("_bytes_cached",)}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._bytes_cached = 0

                def add(self, n):
                    with self._lock:
                        self._bytes_cached += n
            """,
        )
        assert findings == []

    def test_constructor_writes_are_exempt(self, run_checker):
        # No concurrent reader can exist while __init__ runs.
        findings = run_checker(
            "lock-discipline",
            """
            class Budget:
                _GUARDED = {"_lock": ("_bytes_cached",)}

                def __init__(self):
                    self._bytes_cached = 0
            """,
        )
        assert findings == []

    def test_locked_prefix_convention(self, run_checker):
        findings = run_checker(
            "lock-discipline",
            """
            class Pool:
                def bad(self):
                    self._locked_total = 1

                def good(self):
                    with self._lock:
                        self._locked_total = 1
            """,
        )
        assert len(findings) == 1
        assert "_locked_total" in findings[0].message


class TestSwallow:
    def test_bare_except_fires(self, run_checker):
        findings = run_checker(
            "swallow",
            """
            def probe():
                try:
                    risky()
                except:
                    return None
            """,
        )
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_silent_broad_except_fires(self, run_checker):
        findings = run_checker(
            "swallow",
            """
            def probe():
                try:
                    risky()
                except Exception:
                    pass
            """,
        )
        assert len(findings) == 1

    def test_handled_broad_except_is_clean(self, run_checker):
        findings = run_checker(
            "swallow",
            """
            def probe(stats):
                try:
                    risky()
                except Exception:
                    stats.failed += 1
            """,
        )
        assert findings == []

    def test_narrow_silent_except_is_clean(self, run_checker):
        findings = run_checker(
            "swallow",
            """
            def probe():
                try:
                    risky()
                except ValueError:
                    pass
            """,
        )
        assert findings == []


class TestCancellationLoopForms:
    def test_async_for_over_schedule_without_poll_fires(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            async def run(self, schedule, ctx):
                async for index in schedule.stream():
                    table = await self.load_chunk(index)
                    self.emit(table)
            """,
        )
        assert len(findings) == 1
        assert "cancel" in findings[0].message

    def test_async_for_with_poll_is_clean(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            async def run(self, schedule, ctx):
                async for index in schedule.stream():
                    ctx.raise_if_cancelled()
                    table = await self.load_chunk(index)
            """,
        )
        assert findings == []

    def test_while_draining_schedule_without_poll_fires(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            def drain(self, schedule, ctx):
                while schedule:
                    index = schedule.pop()
                    table = self.recycler.get_or_load(index)
            """,
        )
        assert len(findings) == 1
        assert "while loop" in findings[0].message

    def test_while_with_poll_is_clean(self, run_checker):
        findings = run_checker(
            "cancellation",
            """
            def drain(self, schedule, ctx):
                while schedule:
                    ctx.check_cancelled()
                    index = schedule.pop()
                    table = self.recycler.get_or_load(index)
            """,
        )
        assert findings == []

    def test_while_on_unrelated_condition_is_clean(self, run_checker):
        # The while gate never mentions a schedule: out of scope even
        # though the body fetches.
        findings = run_checker(
            "cancellation",
            """
            def drain(self, pending):
                while pending:
                    index = pending.pop()
                    table = self.recycler.get_or_load(index)
            """,
        )
        assert findings == []


LOCK_CYCLE_FILES = {
    "mod_a.py": """
        import threading
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from mod_b import B


        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def first(self, b: "B"):
                with self._lock:
                    b.second()

            def slow(self):
                with self._lock:
                    self.count += 1
        """,
    "mod_b.py": """
        import threading
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            from mod_a import A


        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def second(self):
                with self._lock:
                    pass

            def inverted(self, a: "A"):
                with self._lock:
                    a.slow()
        """,
}


class TestLockOrder:
    def test_cross_module_cycle_reports_both_witnesses(self, run_project):
        findings = run_project("lock-order", LOCK_CYCLE_FILES)
        assert len(findings) == 1
        message = findings[0].message
        assert "lock-order cycle" in message
        assert "A._lock" in message and "B._lock" in message
        # Both inversion witnesses are named so the report is actionable.
        assert "A.first" in message and "B.inverted" in message

    def test_consistent_order_is_clean(self, run_project):
        findings = run_project(
            "lock-order",
            {
                "mod.py": """
                import threading


                class Outer:
                    def __init__(self, inner):
                        self._lock = threading.Lock()
                        self.inner = inner

                    def work(self):
                        with self._lock:
                            self.inner.bump()


                class Inner:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def bump(self):
                        with self._lock:
                            self.count += 1
                """,
            },
        )
        assert findings == []

    def test_interprocedural_self_deadlock_fires(self, run_project):
        findings = run_project(
            "lock-order",
            {
                "mod.py": """
                import threading


                class C:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def outer(self):
                        with self._lock:
                            self.helper()

                    def helper(self):
                        with self._lock:
                            self.count += 1
                """,
            },
        )
        assert len(findings) == 1
        assert "deadlock" in findings[0].message
        assert "C.helper" in findings[0].message

    def test_rlock_reacquire_is_clean(self, run_project):
        findings = run_project(
            "lock-order",
            {
                "mod.py": """
                import threading


                class C:
                    def __init__(self):
                        self._lock = threading.RLock()
                        self.count = 0

                    def outer(self):
                        with self._lock:
                            self.helper()

                    def helper(self):
                        with self._lock:
                            self.count += 1
                """,
            },
        )
        assert findings == []


class TestBlockingUnderLock:
    def test_direct_sleep_under_guarded_lock_fires(self, run_project):
        findings = run_project(
            "blocking-under-lock",
            {
                "mod.py": """
                import threading
                import time


                class C:
                    _GUARDED = {"_lock": ("count",)}

                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def work(self):
                        with self._lock:
                            time.sleep(1.0)
                            self.count += 1
                """,
            },
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_interprocedural_blocking_reports_chain(self, run_project):
        findings = run_project(
            "blocking-under-lock",
            {
                "mod.py": """
                import threading
                import time


                class C:
                    _GUARDED = {"_lock": ("count",)}

                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def work(self):
                        with self._lock:
                            self.helper()

                    def helper(self):
                        time.sleep(1.0)
                """,
            },
        )
        assert len(findings) == 1
        assert "via" in findings[0].message
        assert "C.helper" in findings[0].message

    def test_unguarded_lock_is_not_flagged(self, run_project):
        # Only locks registered in _GUARDED opt in to the hot-path
        # blocking contract.
        findings = run_project(
            "blocking-under-lock",
            {
                "mod.py": """
                import threading
                import time


                class C:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def work(self):
                        with self._lock:
                            time.sleep(1.0)
                """,
            },
        )
        assert findings == []

    def test_shutdown_nowait_is_exempt(self, run_project):
        findings = run_project(
            "blocking-under-lock",
            {
                "mod.py": """
                import threading


                class C:
                    _GUARDED = {"_lock": ("pool",)}

                    def __init__(self, pool):
                        self._lock = threading.Lock()
                        self.pool = pool

                    def close(self):
                        with self._lock:
                            self.pool.shutdown(wait=False)
                """,
            },
        )
        assert findings == []

    def test_work_outside_lock_is_clean(self, run_project):
        findings = run_project(
            "blocking-under-lock",
            {
                "mod.py": """
                import threading
                import time


                class C:
                    _GUARDED = {"_lock": ("count",)}

                    def __init__(self):
                        self._lock = threading.Lock()
                        self.count = 0

                    def work(self):
                        time.sleep(1.0)
                        with self._lock:
                            self.count += 1
                """,
            },
        )
        assert findings == []


class TestAsyncReach:
    def test_coroutine_reaching_sync_open_fires(self, run_project):
        findings = run_project(
            "async-reach",
            {
                "mod.py": """
                def read_manifest(path):
                    with open(path) as handle:
                        return handle.read()


                async def serve(path):
                    return read_manifest(path)
                """,
            },
        )
        assert len(findings) == 1
        assert "coroutine" in findings[0].message
        assert "read_manifest" in findings[0].message

    def test_transitive_chain_is_reported(self, run_project):
        findings = run_project(
            "async-reach",
            {
                "mod.py": """
                import time


                def inner():
                    time.sleep(0.5)


                def outer():
                    inner()


                async def serve():
                    outer()
                """,
            },
        )
        assert len(findings) == 1
        assert "via" in findings[0].message
        assert "inner" in findings[0].message

    def test_offloaded_payload_is_clean(self, run_project):
        # Handing the blocking callable to an executor is the sanctioned
        # pattern: the coroutine itself never blocks.
        findings = run_project(
            "async-reach",
            {
                "mod.py": """
                import asyncio
                import time


                def payload():
                    time.sleep(0.5)


                async def serve(loop, pool):
                    return await loop.run_in_executor(pool, payload)
                """,
            },
        )
        assert findings == []

    def test_await_chain_is_clean(self, run_project):
        findings = run_project(
            "async-reach",
            {
                "mod.py": """
                import asyncio


                async def inner():
                    await asyncio.sleep(0.5)


                async def serve():
                    await inner()
                """,
            },
        )
        assert findings == []
