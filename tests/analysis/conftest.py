"""Shared fixtures for the static-analysis test suite."""

import textwrap

import pytest

from repro.analysis import analyze


@pytest.fixture
def run_checker(tmp_path):
    """Write ``source`` into a temp tree and run one checker over it."""

    def run(checker_id, source, filename="module.py"):
        path = tmp_path / filename
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = analyze([str(tmp_path)], only=(checker_id,))
        return report.findings

    return run


@pytest.fixture
def run_project(tmp_path):
    """Write a multi-file fixture package and run one checker over it.

    ``files`` maps relative paths (``"pkg/mod.py"``) to source strings;
    parent directories are created as needed.
    """

    def run(checker_id, files):
        for relpath, source in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        report = analyze([str(tmp_path)], only=(checker_id,))
        return report.findings

    return run
