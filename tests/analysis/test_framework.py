"""Framework behavior: suppressions, JSON schema, CLI wiring, clean tree."""

import json
import os
import textwrap

import pytest

import repro
from repro.analysis import analyze, checker_ids
from repro.analysis.findings import Finding
from repro.cli import main

SILENT_SWALLOW = """
    def probe():
        try:
            risky()
        except Exception:
            pass
"""

EXPECTED_CHECKERS = {
    "async-blocking",
    "async-reach",
    "blocking-under-lock",
    "cancellation",
    "counter-plumbing",
    "durability",
    "lock-discipline",
    "lock-order",
    "pickle-boundary",
    "swallow",
}


def _write(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestSuppression:
    def test_trailing_comment_suppresses(self, tmp_path):
        _write(
            tmp_path,
            """
            def probe():
                try:
                    risky()
                except Exception:  # repro: ignore[swallow]
                    pass
            """,
        )
        report = analyze([str(tmp_path)], only=("swallow",))
        assert report.findings == []
        assert report.suppressed == 1
        assert report.ok

    def test_comment_on_preceding_line_suppresses(self, tmp_path):
        _write(
            tmp_path,
            """
            def probe():
                try:
                    risky()
                # repro: ignore[swallow]
                except Exception:
                    pass
            """,
        )
        report = analyze([str(tmp_path)], only=("swallow",))
        assert report.findings == []
        assert report.suppressed == 1

    def test_blanket_ignore_suppresses_every_checker(self, tmp_path):
        _write(
            tmp_path,
            """
            def probe():
                try:
                    risky()
                except Exception:  # repro: ignore
                    pass
            """,
        )
        report = analyze([str(tmp_path)], only=("swallow",))
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_id_does_not_suppress(self, tmp_path):
        _write(
            tmp_path,
            """
            def probe():
                try:
                    risky()
                except Exception:  # repro: ignore[durability]
                    pass
            """,
        )
        report = analyze([str(tmp_path)], only=("swallow",))
        assert len(report.findings) == 1
        assert report.suppressed == 0
        assert not report.ok


class TestReport:
    def test_json_payload_schema(self, tmp_path):
        _write(tmp_path, SILENT_SWALLOW)
        payload = analyze([str(tmp_path)]).to_payload()
        assert set(payload) == {"summary", "findings"}
        summary = payload["summary"]
        assert set(summary) == {
            "roots",
            "checkers",
            "files_scanned",
            "findings",
            "suppressed",
            "baselined",
            "fail_on",
            "findings_by_checker",
            "ok",
        }
        assert summary["baselined"] == 0
        assert summary["fail_on"] == "warning"
        assert summary["files_scanned"] == 1
        assert summary["findings"] == 1
        assert summary["findings_by_checker"] == {"swallow": 1}
        assert summary["ok"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "checker",
            "severity",
            "path",
            "line",
            "message",
        }
        assert finding["checker"] == "swallow"
        assert finding["severity"] == "warning"
        assert finding["path"] == "module.py"
        assert finding["line"] > 0

    def test_parse_error_becomes_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text(
            "def broken(:\n", encoding="utf-8"
        )
        report = analyze([str(tmp_path)])
        assert not report.ok
        assert report.parse_errors
        assert report.parse_errors[0].checker == "parse"

    def test_render_text_includes_location_and_tally(self, tmp_path):
        _write(tmp_path, SILENT_SWALLOW)
        text = analyze([str(tmp_path)]).render_text()
        assert "module.py:" in text
        assert "warning[swallow]" in text
        assert "1 finding(s)" in text

    def test_registry_exposes_the_invariant_catalog(self):
        assert set(checker_ids()) == EXPECTED_CHECKERS

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding(
                checker="x", severity="fatal", path="a.py", line=1,
                message="m",
            )


class TestCli:
    def test_findings_exit_nonzero_and_output_written(
        self, tmp_path, capsys
    ):
        _write(tmp_path, SILENT_SWALLOW)
        out = tmp_path / "report.json"
        code = main([
            "analyze", "--root", str(tmp_path), "--json",
            "--output", str(out),
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["ok"] is False
        assert payload["metadata"]["kind"] == "analyze-report"
        # --output writes the same report even though the run failed.
        assert json.loads(out.read_text(encoding="utf-8")) == payload

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "VALUE = 1\n")
        code = main(["analyze", "--root", str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_checker_filter_and_unknown_id(self, tmp_path, capsys):
        _write(tmp_path, SILENT_SWALLOW)
        assert main([
            "analyze", "--root", str(tmp_path), "--checker", "durability",
        ]) == 0
        assert main([
            "analyze", "--root", str(tmp_path), "--checker", "nosuch",
        ]) == 2
        capsys.readouterr()

    def test_list_checkers(self, capsys):
        assert main(["analyze", "--list-checkers"]) == 0
        out = capsys.readouterr().out
        for checker_id in EXPECTED_CHECKERS:
            assert checker_id in out


class TestShippedTree:
    def test_src_tree_has_no_unsuppressed_findings(self):
        """The regression lock for every invariant fixed in this PR."""
        root = os.path.dirname(os.path.abspath(repro.__file__))
        report = analyze([root])
        assert report.all_findings() == []
        assert report.ok


class TestFailOn:
    def test_warning_finding_passes_under_fail_on_error(self, tmp_path):
        _write(tmp_path, SILENT_SWALLOW)
        report = analyze([str(tmp_path)], fail_on="error")
        assert len(report.findings) == 1  # still reported...
        assert report.ok  # ...but below the failure threshold

    def test_warning_finding_fails_by_default(self, tmp_path):
        _write(tmp_path, SILENT_SWALLOW)
        report = analyze([str(tmp_path)])
        assert not report.ok

    def test_parse_error_fails_regardless_of_threshold(self, tmp_path):
        _write(tmp_path, "def broken(:\n")
        report = analyze([str(tmp_path)], fail_on="error")
        assert not report.ok

    def test_unknown_severity_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fail_on"):
            analyze([str(tmp_path)], fail_on="fatal")

    def test_cli_fail_on_error_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, SILENT_SWALLOW)
        code = main([
            "analyze", "--root", str(tmp_path), "--fail-on", "error",
        ])
        assert code == 0
        capsys.readouterr()


class TestBaseline:
    def test_json_report_round_trips_as_baseline(self, tmp_path, capsys):
        from repro.analysis import load_baseline

        _write(tmp_path, SILENT_SWALLOW)
        report_path = tmp_path / "baseline.json"
        assert main([
            "analyze", "--root", str(tmp_path), "--json",
            "--output", str(report_path),
        ]) == 1
        capsys.readouterr()
        keys = load_baseline(str(report_path))
        assert len(keys) == 1
        report = analyze([str(tmp_path)], baseline=keys)
        assert report.findings == []
        assert report.baselined == 1
        assert report.ok

    def test_new_findings_still_fail_with_baseline(self, tmp_path, capsys):
        _write(tmp_path, SILENT_SWALLOW)
        report_path = tmp_path / "baseline.json"
        main([
            "analyze", "--root", str(tmp_path), "--json",
            "--output", str(report_path),
        ])
        capsys.readouterr()
        # Introduce a second, unbaselined finding in another file.
        _write(tmp_path, SILENT_SWALLOW, name="fresh.py")
        code = main([
            "analyze", "--root", str(tmp_path),
            "--baseline", str(report_path),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "1 baselined" in out
        assert "fresh.py" in out

    def test_bare_findings_list_accepted(self, tmp_path):
        from repro.analysis import load_baseline

        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps([
                {
                    "checker": "swallow",
                    "path": "module.py",
                    "message": "whatever",
                    "severity": "warning",
                    "line": 5,
                }
            ]),
            encoding="utf-8",
        )
        assert load_baseline(str(path)) == {
            ("swallow", "module.py", "whatever")
        }

    def test_malformed_baseline_raises(self, tmp_path):
        from repro.analysis import load_baseline

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"checker": "x"}]), encoding="utf-8")
        with pytest.raises(ValueError, match="checker/path/message"):
            load_baseline(str(path))

    def test_cli_missing_baseline_file_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "VALUE = 1\n")
        code = main([
            "analyze", "--root", str(tmp_path),
            "--baseline", str(tmp_path / "nope.json"),
        ])
        assert code == 2
        capsys.readouterr()
