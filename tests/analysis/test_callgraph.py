"""Call-graph builder: resolution cases and conservative degradation."""

import ast
import textwrap

import pytest

from repro.analysis.base import SourceModule
from repro.analysis.callgraph import CallGraph, module_key


def build_graph(tmp_path, files):
    modules = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        text = textwrap.dedent(source)
        path.write_text(text, encoding="utf-8")
        modules.append(SourceModule.parse(str(path), relpath, text))
    return CallGraph.build(modules)


def calls_of(graph, fn_key):
    """Resolved callee keys for every call in one function body."""
    fn = graph.functions[fn_key]
    scope = graph.scope(fn)
    resolved = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            target = graph.resolve_call(node, scope)
            resolved.append(target.key if target is not None else None)
    return resolved


class TestModuleKey:
    def test_plain_module(self):
        assert module_key("engine/recycler.py") == "engine.recycler"

    def test_package_init(self):
        assert module_key("engine/__init__.py") == "engine"

    def test_root_init(self):
        assert module_key("__init__.py") == ""


class TestResolution:
    def test_cross_module_function_call(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from pkg.util import helper\n"
                    "def entry():\n"
                    "    return helper()\n"
                ),
            },
        )
        assert calls_of(graph, "pkg.main::entry") == ["pkg.util::helper"]

    def test_relative_import_resolves(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/util.py": "def helper():\n    return 1\n",
                "pkg/main.py": (
                    "from .util import helper\n"
                    "def entry():\n"
                    "    return helper()\n"
                ),
            },
        )
        assert calls_of(graph, "pkg.main::entry") == ["pkg.util::helper"]

    def test_self_method_and_attribute_chain(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "store.py": (
                    "class Store:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                ),
                "db.py": (
                    "from store import Store\n"
                    "class DB:\n"
                    "    def __init__(self):\n"
                    "        self.store = Store()\n"
                    "    def read(self):\n"
                    "        return self.store.get()\n"
                    "    def read_twice(self):\n"
                    "        return self.read()\n"
                ),
            },
        )
        assert calls_of(graph, "db::DB.read") == ["store::Store.get"]
        assert calls_of(graph, "db::DB.read_twice") == ["db::DB.read"]

    def test_annotated_parameter_resolves_receiver(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "store.py": (
                    "class Store:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                ),
                "use.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    from store import Store\n"
                    "def read(store: 'Store'):\n"
                    "    return store.get()\n"
                ),
            },
        )
        assert calls_of(graph, "use::read") == ["store::Store.get"]

    def test_local_constructor_assignment(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "store.py": (
                    "class Store:\n"
                    "    def get(self):\n"
                    "        return 1\n"
                ),
                "use.py": (
                    "from store import Store\n"
                    "def read():\n"
                    "    s = Store()\n"
                    "    return s.get()\n"
                ),
            },
        )
        # Store() resolves to no __init__ (not defined) -> None, s.get()
        # resolves through the local's inferred type.
        assert calls_of(graph, "use::read") == [None, "store::Store.get"]

    def test_method_resolution_follows_bases(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 1\n"
                    "class Child(Base):\n"
                    "    def call(self):\n"
                    "        return self.shared()\n"
                ),
            },
        )
        assert calls_of(graph, "mod::Child.call") == ["mod::Base.shared"]

    def test_return_annotation_types_locals(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class Session:\n"
                    "    def run(self):\n"
                    "        return 1\n"
                    "class DB:\n"
                    "    def session(self) -> 'Session':\n"
                    "        return Session()\n"
                    "    def go(self):\n"
                    "        s = self.session()\n"
                    "        return s.run()\n"
                ),
            },
        )
        assert "mod::Session.run" in calls_of(graph, "mod::DB.go")

    def test_call_cycles_do_not_hang(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "def a():\n"
                    "    return b()\n"
                    "def b():\n"
                    "    return a()\n"
                ),
            },
        )
        assert calls_of(graph, "mod::a") == ["mod::b"]
        assert calls_of(graph, "mod::b") == ["mod::a"]

    def test_inheritance_cycle_does_not_hang(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class A(B):\n"
                    "    def go(self):\n"
                    "        return self.missing()\n"
                    "class B(A):\n"
                    "    pass\n"
                ),
            },
        )
        assert calls_of(graph, "mod::A.go") == [None]


class TestConservativeDegradation:
    @pytest.mark.parametrize(
        "body",
        [
            "    target = getattr(obj, 'method')\n    return target()\n",
            "    fn, arg = pick()\n    return fn(arg)\n",
            "    return obj[0].method()\n",
            "    return (lambda: 1)()\n",
        ],
    )
    def test_dynamic_targets_resolve_to_none(self, tmp_path, body):
        graph = build_graph(
            tmp_path,
            {"mod.py": f"def entry(obj):\n{body}"},
        )
        assert all(key is None for key in calls_of(graph, "mod::entry"))

    def test_rebound_local_is_poisoned(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "class A:\n"
                    "    def go(self):\n"
                    "        return 1\n"
                    "class B:\n"
                    "    def go(self):\n"
                    "        return 2\n"
                    "def entry(flag):\n"
                    "    x = A()\n"
                    "    x = B()\n"
                    "    return x.go()\n"
                ),
            },
        )
        # Conflicting rebinds drop the local to unknown rather than pick
        # one class arbitrarily.
        assert calls_of(graph, "mod::entry")[-1] is None

    def test_unknown_imports_never_crash(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "import os\n"
                    "import numpy as np\n"
                    "from collections import OrderedDict\n"
                    "from nowhere.missing import thing\n"
                    "def entry():\n"
                    "    np.save('x', [1])\n"
                    "    os.replace('a', 'b')\n"
                    "    return thing(OrderedDict())\n"
                ),
            },
        )
        assert all(key is None for key in calls_of(graph, "mod::entry"))

    def test_star_import_is_ignored(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "util.py": "def helper():\n    return 1\n",
                "mod.py": (
                    "from util import *\n"
                    "def entry():\n"
                    "    return helper()\n"
                ),
            },
        )
        assert calls_of(graph, "mod::entry") == [None]


class TestClassFacts:
    def test_lock_attrs_and_guarded(self, tmp_path):
        graph = build_graph(
            tmp_path,
            {
                "mod.py": (
                    "import threading\n"
                    "from repro.util.lock_sanitizer import make_lock\n"
                    "class C:\n"
                    "    _GUARDED = {'_lock': ('counter',)}\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self._big = threading.RLock()\n"
                    "        self._named = make_lock('C._named')\n"
                    "        self.counter = 0\n"
                ),
            },
        )
        info = graph.classes["mod::C"]
        assert info.lock_attrs == {
            "_lock": False,
            "_big": True,
            "_named": False,
        }
        assert info.guarded == {"_lock": ("counter",)}
