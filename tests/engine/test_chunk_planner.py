"""Chunk planner unit tests: pruning rules, tier costs, fetch scheduling."""

import numpy as np
import pytest

from repro.engine.chunk_planner import (
    ChunkPlan,
    ChunkPlanner,
    TIER_REMOTE,
    TIER_RESIDENT,
    TIER_SPILLED,
    TIER_UNPLANNED,
)
from repro.engine.column import Column
from repro.engine.database import Database
from repro.engine.expressions import BooleanOp, Comparison, col, lit
from repro.engine.predicates import (
    closed_int_bounds,
    extract_time_bounds,
    literal_bounds_by_column,
    range_may_satisfy,
)
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, TIMESTAMP


def make_chunk(values, times) -> Table:
    schema = Schema.of(("D.sample_time", TIMESTAMP), ("D.sample_value", INT64))
    return Table(
        schema,
        [
            Column(TIMESTAMP, np.asarray(times, dtype=np.int64)),
            Column(INT64, np.asarray(values, dtype=np.int64)),
        ],
    )


@pytest.fixture()
def database(tmp_path):
    db = Database(workdir=str(tmp_path / "db"))
    yield db
    db.close()


class TestPredicateHelpers:
    def test_range_may_satisfy_matrix(self):
        assert range_may_satisfy(">", 5, 0, 10)
        assert not range_may_satisfy(">", 10, 0, 10)
        assert range_may_satisfy(">=", 10, 0, 10)
        assert not range_may_satisfy(">=", 11, 0, 10)
        assert range_may_satisfy("<", 1, 0, 10)
        assert not range_may_satisfy("<", 0, 0, 10)
        assert range_may_satisfy("<=", 0, 0, 10)
        assert not range_may_satisfy("<=", -1, 0, 10)
        assert range_may_satisfy("=", 10, 0, 10)
        assert not range_may_satisfy("=", 11, 0, 10)
        # Non-numeric and unknown operators never prune.
        assert range_may_satisfy(">", "text", 0, 10)
        assert range_may_satisfy("<>", 5, 0, 10)

    def test_literal_bounds_by_column_both_orientations(self):
        predicate = BooleanOp(
            "AND",
            [
                Comparison(">=", col("D.sample_time"), lit(100)),
                Comparison(">", lit(200), col("D.sample_time")),
                Comparison("=", col("D.file_id"), lit(7)),
                Comparison("=", col("D.file_id"), col("S.file_id")),
            ],
        )
        bounds = literal_bounds_by_column(predicate)
        assert bounds["D.sample_time"] == [(">=", 100), ("<", 200)]
        assert bounds["D.file_id"] == [("=", 7)]
        assert literal_bounds_by_column(None) == {}

    def test_extract_time_bounds_half_open(self):
        predicate = BooleanOp(
            "AND",
            [
                Comparison(">", col("t"), lit(9)),
                Comparison("<=", col("t"), lit(20)),
            ],
        )
        assert extract_time_bounds(predicate, "t") == (10, 21)
        assert extract_time_bounds(predicate, "other") is None

    def test_closed_int_bounds(self):
        assert closed_int_bounds([(">", 9), ("<", 20)]) == (10, 19)
        assert closed_int_bounds([("=", 5)]) == (5, 5)
        assert closed_int_bounds([(">", 2.5)]) == (None, None)  # floats skip


class TestPruning:
    def test_value_bounds_prune_only_enriched(self, database):
        database.chunk_stats.observe_table("a", make_chunk([0, 50], [0, 1]))
        database.chunk_stats.record_registration(
            "b", {"D.sample_time": (0.0, 1.0)}
        )
        predicate = Comparison(">", col("D.sample_value"), lit(100))
        plan = database.chunk_planner.plan(["a", "b"], "D", predicate)
        assert [p.uri for p in plan.pruned] == ["a"]
        assert plan.uris == ("b",)
        assert plan.pruned[0].reason == "D.sample_value"

    def test_no_stats_no_pruning(self, database):
        predicate = Comparison(">", col("D.sample_value"), lit(10**12))
        plan = database.chunk_planner.plan(["x", "y"], "D", predicate)
        assert plan.pruned == ()
        assert plan.uris == ("x", "y")

    def test_prune_flag_off(self, database):
        database.chunk_stats.observe_table("a", make_chunk([0], [0]))
        predicate = Comparison(">", col("D.sample_value"), lit(100))
        plan = database.chunk_planner.plan(["a"], "D", predicate, prune=False)
        assert plan.pruned == ()

    def test_equality_bound_prunes_disjoint_file_ids(self, database):
        database.chunk_stats.record_registration(
            "f0", {"D.file_id": (0.0, 0.0)}
        )
        database.chunk_stats.record_registration(
            "f1", {"D.file_id": (1.0, 1.0)}
        )
        predicate = Comparison("=", col("D.file_id"), lit(1))
        plan = database.chunk_planner.plan(["f0", "f1"], "D", predicate)
        assert plan.uris == ("f1",)

    def test_segment_zone_gap_prunes_chunk(self, database):
        from repro.engine.indexes import ZoneMap

        zones = ZoneMap("D.sample_time")
        zones.add_zone(0, 0, 99)
        zones.add_zone(1, 200, 299)
        database.chunk_stats.record_registration(
            "gappy", {"D.sample_time": (0.0, 299.0)}, segment_zones=zones
        )
        inside_gap = BooleanOp(
            "AND",
            [
                Comparison(">=", col("D.sample_time"), lit(120)),
                Comparison("<", col("D.sample_time"), lit(180)),
            ],
        )
        plan = database.chunk_planner.plan(["gappy"], "D", inside_gap)
        assert [p.uri for p in plan.pruned] == ["gappy"]
        assert "segment zones" in plan.pruned[0].reason
        # A window overlapping a real segment keeps the chunk.
        overlapping = Comparison(">=", col("D.sample_time"), lit(250))
        plan = database.chunk_planner.plan(["gappy"], "D", overlapping)
        assert plan.uris == ("gappy",)

    def test_planner_counters_accumulate(self, database):
        database.chunk_stats.observe_table("a", make_chunk([0], [0]))
        predicate = Comparison(">", col("D.sample_value"), lit(100))
        database.chunk_planner.plan(["a", "b"], "D", predicate)
        snapshot = database.chunk_planner.stats_snapshot()
        assert snapshot["plans_built"] == 1
        assert snapshot["chunks_considered"] == 2
        assert snapshot["chunks_pruned"] == 1
        assert snapshot["chunks_scheduled"] == 1


class TestTiersAndSchedule:
    def test_tier_classification_and_cost_order(self, database):
        chunk = make_chunk([1, 2, 3], [10, 20, 30])
        # resident: in the recycler's memory tier
        database.recycler.put("resident", chunk, 0.01)
        # spilled: only in the on-disk store
        database.chunk_store.put("spilled", chunk, 0.01)
        plan = database.chunk_planner.plan(
            ["remote", "resident", "spilled"], "D", None
        )
        by_uri = {c.uri: c for c in plan.chunks}
        assert by_uri["resident"].tier == TIER_RESIDENT
        assert by_uri["spilled"].tier == TIER_SPILLED
        assert by_uri["remote"].tier == TIER_REMOTE
        assert (
            by_uri["resident"].cost_seconds
            < by_uri["spilled"].cost_seconds
            < by_uri["remote"].cost_seconds
        )
        # Fetch schedule: most expensive first, assembly order preserved.
        scheduled = [plan.chunks[i].uri for i in plan.fetch_order]
        assert scheduled == ["remote", "spilled", "resident"]
        assert plan.uris == ("remote", "resident", "spilled")

    def test_remote_cost_includes_modeled_fetch_latency(self, database):
        class Loader:
            io_delay_ms = 50.0

            def load(self, uri, table_name):  # pragma: no cover
                raise AssertionError("planning must not load")

        database.chunk_loader = Loader()
        plan = database.chunk_planner.plan(["remote"], "D", None)
        assert plan.chunks[0].cost_seconds >= 0.05

    def test_observed_decode_cost_feeds_estimates(self, database):
        database.chunk_stats.observe_table(
            "seen", make_chunk([1], [1]), loading_cost=0.25
        )
        # Un-observed chunks inherit the average observed cost.
        plan = database.chunk_planner.plan(["seen", "unseen"], "D", None)
        by_uri = {c.uri: c for c in plan.chunks}
        assert by_uri["seen"].cost_seconds == pytest.approx(0.25)
        assert by_uri["unseen"].cost_seconds == pytest.approx(0.25)

    def test_schedule_deterministic_on_ties(self, database):
        plan = database.chunk_planner.plan(["a", "b", "c"], "D", None)
        assert plan.fetch_order == (0, 1, 2)


class TestChunkPlanObject:
    def test_trivial_wrapper(self):
        plan = ChunkPlan.trivial(["u1", "u2"], "D")
        assert plan.uris == ("u1", "u2")
        assert plan.fetch_order == (0, 1)
        assert all(c.tier == TIER_UNPLANNED for c in plan.chunks)

    def test_describe_lists_schedule_and_pruned(self, database):
        database.chunk_stats.observe_table("a", make_chunk([0], [0]))
        predicate = Comparison(">", col("D.sample_value"), lit(100))
        plan = database.chunk_planner.plan(["a", "b"], "D", predicate)
        rendered = plan.describe()
        assert "1 to fetch, 1 pruned" in rendered
        assert "pruned (D.sample_value)" in rendered

    def test_parallel_chunk_scan_accepts_plan_and_lists(self, database):
        from repro.engine import algebra
        from repro.engine.table import Schema

        plan = database.chunk_planner.plan(["u1", "u2"], "D", None)
        node = algebra.ParallelChunkScan(plan, "D", Schema([]))
        assert node.uris == ("u1", "u2")
        legacy = algebra.ParallelChunkScan(["u1"], "D", Schema([]))
        assert legacy.plan.chunks[0].tier == TIER_UNPLANNED
