"""Tests for the vectorized equi-join kernels, checked against a
nested-loop oracle (including a hypothesis property)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.engine.column import Column
from repro.engine.hashjoin import (
    composite_codes_pair,
    equi_join_pairs,
    factorize_pair,
)
from repro.engine.types import INT64, STRING


def oracle_pairs(left, right):
    return sorted(
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    )


class TestFactorizePair:
    def test_consistent_codes_ints(self):
        left = np.asarray([5, 7, 5])
        right = np.asarray([7, 9])
        l_codes, r_codes, _ = factorize_pair(left, right)
        assert l_codes[1] == r_codes[0]  # both are value 7
        assert l_codes[0] == l_codes[2]

    def test_consistent_codes_strings(self):
        left = np.asarray(["a", "b"], dtype=object)
        right = np.asarray(["b", "c"], dtype=object)
        l_codes, r_codes, card = factorize_pair(left, right)
        assert l_codes[1] == r_codes[0]
        assert card == 3

    def test_empty_sides(self):
        l_codes, r_codes, _ = factorize_pair(
            np.asarray([], dtype=np.int64), np.asarray([1, 2])
        )
        assert len(l_codes) == 0 and len(r_codes) == 2


class TestEquiJoinPairs:
    def test_one_to_one(self):
        left = np.asarray([1, 2, 3])
        right = np.asarray([3, 1])
        l_codes, r_codes, _ = factorize_pair(left, right)
        l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
        assert sorted(zip(l_rows, r_rows)) == [(0, 1), (2, 0)]

    def test_many_to_many(self):
        left = np.asarray([1, 1])
        right = np.asarray([1, 1, 1])
        l_codes, r_codes, _ = factorize_pair(left, right)
        l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
        assert len(l_rows) == 6

    def test_no_matches(self):
        l_codes, r_codes, _ = factorize_pair(
            np.asarray([1, 2]), np.asarray([3, 4])
        )
        l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
        assert len(l_rows) == 0 and len(r_rows) == 0

    def test_build_side_choice_irrelevant(self):
        # larger left than right and vice versa must agree
        left = np.asarray([1, 2, 2, 3, 4])
        right = np.asarray([2, 4])
        l_codes, r_codes, _ = factorize_pair(left, right)
        a = sorted(zip(*equi_join_pairs(l_codes, r_codes)))
        b_r, b_l = equi_join_pairs(r_codes, l_codes)
        b = sorted(zip(b_l, b_r))
        assert a == b == oracle_pairs(left, right)


class TestCompositeCodes:
    def test_multi_column_keys(self):
        left = [
            Column.from_values(INT64, [1, 1, 2]),
            Column.from_values(STRING, ["a", "b", "a"]),
        ]
        right = [
            Column.from_values(INT64, [1, 2]),
            Column.from_values(STRING, ["b", "a"]),
        ]
        l_codes, r_codes = composite_codes_pair(left, right)
        l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
        assert sorted(zip(l_rows, r_rows)) == [(1, 0), (2, 1)]

    def test_no_false_matches_across_columns(self):
        # (1, "2") must not match (12, "") style collisions
        left = [
            Column.from_values(INT64, [1]),
            Column.from_values(INT64, [23]),
        ]
        right = [
            Column.from_values(INT64, [12]),
            Column.from_values(INT64, [3]),
        ]
        l_codes, r_codes = composite_codes_pair(left, right)
        l_rows, _ = equi_join_pairs(l_codes, r_codes)
        assert len(l_rows) == 0


@given(
    st.lists(st.integers(0, 8), max_size=40),
    st.lists(st.integers(0, 8), max_size=40),
)
def test_join_matches_nested_loop_oracle(left_vals, right_vals):
    left = np.asarray(left_vals, dtype=np.int64)
    right = np.asarray(right_vals, dtype=np.int64)
    l_codes, r_codes, _ = factorize_pair(left, right)
    l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
    assert sorted(zip(l_rows, r_rows)) == oracle_pairs(left, right)


@given(
    st.lists(st.sampled_from(["a", "b", "c"]), max_size=25),
    st.lists(st.sampled_from(["b", "c", "d"]), max_size=25),
)
def test_string_join_matches_oracle(left_vals, right_vals):
    left = np.asarray(left_vals, dtype=object)
    right = np.asarray(right_vals, dtype=object)
    l_codes, r_codes, _ = factorize_pair(left, right)
    l_rows, r_rows = equi_join_pairs(l_codes, r_codes)
    assert sorted(zip(l_rows, r_rows)) == oracle_pairs(left_vals, right_vals)
