"""Tests for the Recycler chunk cache (LRU and cost-aware policies)."""

import pytest

from repro.engine.errors import StorageError
from repro.engine.recycler import Recycler
from repro.engine.table import Schema, Table
from repro.engine.types import INT64


def make_chunk(rows: int) -> Table:
    schema = Schema.of(("v", INT64))
    return Table.from_rows(schema, [(i,) for i in range(rows)])


class TestBasics:
    def test_miss_then_hit(self):
        cache = Recycler(budget_bytes=1 << 20)
        assert cache.get("a") is None
        cache.put("a", make_chunk(10), loading_cost=0.1)
        assert cache.get("a") is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_contains_and_uris(self):
        cache = Recycler(budget_bytes=1 << 20)
        cache.put("x", make_chunk(1), 0.1)
        assert "x" in cache
        assert cache.cached_uris() == {"x"}

    def test_invalidate(self):
        cache = Recycler(budget_bytes=1 << 20)
        cache.put("x", make_chunk(1), 0.1)
        cache.invalidate("x")
        assert "x" not in cache
        assert cache.bytes_cached == 0

    def test_clear(self):
        cache = Recycler(budget_bytes=1 << 20)
        cache.put("x", make_chunk(1), 0.1)
        cache.put("y", make_chunk(1), 0.1)
        cache.clear()
        assert len(cache) == 0

    def test_replace_same_uri_no_leak(self):
        cache = Recycler(budget_bytes=1 << 20)
        cache.put("x", make_chunk(100), 0.1)
        before = cache.bytes_cached
        cache.put("x", make_chunk(100), 0.1)
        assert cache.bytes_cached == before

    def test_invalid_policy(self):
        with pytest.raises(StorageError):
            Recycler(budget_bytes=10, policy="random")

    def test_invalid_budget(self):
        with pytest.raises(StorageError):
            Recycler(budget_bytes=0)


class TestBudget:
    def test_never_exceeds_budget(self):
        chunk = make_chunk(100)
        budget = chunk.nbytes * 3 + 10
        cache = Recycler(budget_bytes=budget)
        for i in range(10):
            cache.put(f"u{i}", make_chunk(100), 0.1)
            assert cache.bytes_cached <= budget

    def test_oversized_chunk_rejected(self):
        cache = Recycler(budget_bytes=64)
        assert cache.put("big", make_chunk(1000), 0.1) is False
        assert len(cache) == 0

    def test_eviction_counted(self):
        chunk_bytes = make_chunk(100).nbytes
        cache = Recycler(budget_bytes=chunk_bytes * 2)
        for i in range(4):
            cache.put(f"u{i}", make_chunk(100), 0.1)
        assert cache.stats.evictions >= 2


class TestLRUPolicy:
    def test_least_recently_used_evicted(self):
        chunk_bytes = make_chunk(10).nbytes
        cache = Recycler(budget_bytes=chunk_bytes * 2 + 8, policy="lru")
        cache.put("a", make_chunk(10), 0.1)
        cache.put("b", make_chunk(10), 0.1)
        cache.get("a")  # refresh a
        cache.put("c", make_chunk(10), 0.1)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache


class TestCostAwarePolicy:
    def test_expensive_chunk_survives(self):
        chunk_bytes = make_chunk(10).nbytes
        cache = Recycler(budget_bytes=chunk_bytes * 2 + 8, policy="cost_aware")
        cache.put("cheap", make_chunk(10), loading_cost=0.001)
        cache.put("pricey", make_chunk(10), loading_cost=10.0)
        cache.put("new", make_chunk(10), loading_cost=0.5)
        assert "pricey" in cache
        assert "cheap" not in cache

    def test_frequency_matters(self):
        chunk_bytes = make_chunk(10).nbytes
        cache = Recycler(budget_bytes=chunk_bytes * 2 + 8, policy="cost_aware")
        cache.put("hot", make_chunk(10), loading_cost=1.0)
        cache.put("cold", make_chunk(10), loading_cost=1.0)
        for _ in range(5):
            cache.get("hot")
        cache.put("new", make_chunk(10), loading_cost=1.0)
        assert "hot" in cache and "cold" not in cache
