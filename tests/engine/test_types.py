"""Unit tests for the logical type system."""

import numpy as np
import pytest

from repro.engine.errors import TypeMismatchError
from repro.engine.types import (
    BOOL,
    FLOAT64,
    INT64,
    STRING,
    TIMESTAMP,
    common_numeric_type,
    format_timestamp,
    infer_type,
    parse_timestamp,
    type_by_name,
)


class TestParseTimestamp:
    def test_date_only(self):
        assert parse_timestamp("1970-01-01") == 0

    def test_epoch_midnight(self):
        assert parse_timestamp("1970-01-02T00:00:00") == 86400000

    def test_fractional_seconds(self):
        assert parse_timestamp("1970-01-01T00:00:00.250") == 250

    def test_space_separator(self):
        assert parse_timestamp("1970-01-01 00:00:01") == 1000

    def test_known_instant(self):
        # 2010-01-01T00:00:00Z
        assert parse_timestamp("2010-01-01T00:00:00.000") == 1262304000000

    def test_invalid_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_timestamp("not a time")

    def test_invalid_month_raises(self):
        with pytest.raises(TypeMismatchError):
            parse_timestamp("2010-13-01T00:00:00")


class TestFormatTimestamp:
    def test_roundtrip(self):
        millis = parse_timestamp("2010-04-20T23:00:00.125")
        assert parse_timestamp(format_timestamp(millis)) == millis

    def test_zero(self):
        assert format_timestamp(0) == "1970-01-01T00:00:00.000"


class TestCoercion:
    def test_int_accepts_bool(self):
        assert INT64.coerce_value(True) == 1

    def test_int_accepts_integral_float(self):
        assert INT64.coerce_value(3.0) == 3

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            INT64.coerce_value(3.5)

    def test_float_accepts_int(self):
        assert FLOAT64.coerce_value(3) == 3.0

    def test_string_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            STRING.coerce_value(42)

    def test_timestamp_accepts_iso_string(self):
        assert TIMESTAMP.coerce_value("1970-01-01T00:00:01") == 1000

    def test_timestamp_accepts_int(self):
        assert TIMESTAMP.coerce_value(12345) == 12345

    def test_none_passes_through(self):
        assert INT64.coerce_value(None) is None

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            BOOL.coerce_value(1)


class TestInference:
    def test_bool_before_int(self):
        assert infer_type(True) is BOOL

    def test_int(self):
        assert infer_type(7) is INT64

    def test_float(self):
        assert infer_type(7.5) is FLOAT64

    def test_string(self):
        assert infer_type("x") is STRING

    def test_numpy_scalars(self):
        assert infer_type(np.int64(3)) is INT64
        assert infer_type(np.float64(3.5)) is FLOAT64

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type(object())


class TestCommonNumericType:
    def test_int_int(self):
        assert common_numeric_type(INT64, INT64) is INT64

    def test_int_float(self):
        assert common_numeric_type(INT64, FLOAT64) is FLOAT64

    def test_timestamp_minus_timestamp_is_int(self):
        assert common_numeric_type(TIMESTAMP, TIMESTAMP) is INT64

    def test_timestamp_plus_int_is_timestamp(self):
        assert common_numeric_type(TIMESTAMP, INT64) is TIMESTAMP

    def test_string_rejected(self):
        with pytest.raises(TypeMismatchError):
            common_numeric_type(STRING, INT64)


class TestTypeByName:
    def test_lookup_case_insensitive(self):
        assert type_by_name("int64") is INT64
        assert type_by_name("TIMESTAMP") is TIMESTAMP

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            type_by_name("DECIMAL")
