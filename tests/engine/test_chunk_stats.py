"""Chunk statistics: catalog semantics, ZoneMap sub-chunk skipping, and
stats-sidecar round-trips through the ChunkStore crash-safety paths."""

import json
import os

import numpy as np
import pytest

from repro.engine.chunk_stats import (
    ChunkStats,
    ChunkStatsCatalog,
    compute_column_ranges,
)
from repro.engine.chunk_store import MANIFEST_NAME, ChunkStore
from repro.engine.column import Column
from repro.engine.indexes import ZoneMap
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, STRING, TIMESTAMP
from repro.mseed import reader


def make_table(values, times, stations=None) -> Table:
    fields = [("D.sample_time", TIMESTAMP), ("D.sample_value", INT64)]
    columns = [
        Column(TIMESTAMP, np.asarray(times, dtype=np.int64)),
        Column(INT64, np.asarray(values, dtype=np.int64)),
    ]
    if stations is not None:
        fields.append(("D.station", STRING))
        columns.append(Column.from_values(STRING, stations))
    return Table(Schema.of(*fields), columns)


class TestComputeRanges:
    def test_exact_min_max_per_numeric_column(self):
        table = make_table([5, -3, 12], [100, 200, 300])
        ranges = compute_column_ranges(table)
        assert ranges["D.sample_value"] == (-3.0, 12.0)
        assert ranges["D.sample_time"] == (100.0, 300.0)

    def test_string_and_hidden_columns_skipped(self):
        table = make_table([1], [2], stations=["ISK"])
        ranges = compute_column_ranges(table)
        assert "D.station" not in ranges
        assert set(ranges) == {"D.sample_time", "D.sample_value"}

    def test_empty_table_yields_no_ranges(self):
        table = make_table([], [])
        assert compute_column_ranges(table) == {}


class TestCatalog:
    def test_registration_then_enrichment(self):
        catalog = ChunkStatsCatalog()
        catalog.record_registration(
            "u", {"D.sample_time": (0.0, 99.0)}, num_rows=10
        )
        entry = catalog.get("u")
        assert not entry.enriched
        assert "D.sample_value" not in entry.ranges
        catalog.observe_table("u", make_table([7, -7], [5, 50]), 0.01)
        entry = catalog.get("u")
        assert entry.enriched
        assert entry.ranges["D.sample_value"] == (-7.0, 7.0)
        assert entry.loading_cost == 0.01

    def test_enrichment_is_idempotent_and_sticky(self):
        catalog = ChunkStatsCatalog()
        catalog.observe_table("u", make_table([1], [1]), 0.5)
        assert not catalog.observe_table("u", make_table([999], [999]))
        # Re-registration must not downgrade decode-derived truth.
        catalog.record_registration("u", {"D.sample_time": (0.0, 1.0)})
        assert catalog.get("u").enriched
        assert catalog.get("u").ranges["D.sample_value"] == (1.0, 1.0)

    def test_json_round_trip(self):
        catalog = ChunkStatsCatalog()
        zones = ZoneMap("D.sample_time")
        zones.add_zone(0, 0, 4)
        zones.add_zone(1, 8, 10)
        catalog.record_registration(
            "a", {"D.sample_time": (0.0, 10.0)}, segment_zones=zones
        )
        catalog.observe_table("b", make_table([3, 4], [7, 8]), 0.2)
        payload = json.loads(json.dumps(catalog.to_json()))
        restored = ChunkStatsCatalog()
        assert restored.load_json(payload) == 2
        assert restored.get("a").ranges == {"D.sample_time": (0.0, 10.0)}
        assert restored.get("b").enriched
        assert restored.get("b").loading_cost == 0.2
        # Zone maps survive the checkpoint: gap pruning works after reopen.
        restored_zones = restored.get("a").segment_zones
        assert restored_zones is not None
        assert restored_zones.attribute == "D.sample_time"
        assert restored_zones.prune_range(5, 7) == []
        assert restored_zones.prune_range(3, 9) == [0, 1]
        # The running decode-cost average restores with the entries.
        assert restored.average_loading_cost() == pytest.approx(0.2)

    def test_average_loading_cost_tracks_mutations(self):
        catalog = ChunkStatsCatalog()
        assert catalog.average_loading_cost() is None
        catalog.observe_table("a", make_table([1], [1]), 0.1)
        catalog.observe_table("b", make_table([2], [2]), 0.3)
        assert catalog.average_loading_cost() == pytest.approx(0.2)
        catalog.adopt_persisted("c", {"D.sample_value": (0.0, 1.0)},
                                loading_cost=0.5)
        assert catalog.average_loading_cost() == pytest.approx(0.3)
        catalog.clear()
        assert catalog.average_loading_cost() is None

    def test_malformed_checkpoint_entries_skipped(self):
        restored = ChunkStatsCatalog()
        assert restored.load_json("garbage") == 0
        assert (
            restored.load_json(
                [
                    {"uri": "ok", "ranges": {"c": [1, 2]}},
                    {"uri": "bad", "ranges": {"c": [2, 1]}},  # min > max
                    {"ranges": {}},  # no uri
                    {"uri": "bad2", "ranges": {"c": ["x", "y"]}},
                    "not-a-dict",
                ]
            )
            == 1
        )
        assert restored.get("ok") is not None
        assert restored.get("bad") is None

    def test_from_json_rejects_partial(self):
        assert ChunkStats.from_json({"uri": "u"}) is None
        assert ChunkStats.from_json({"uri": "u", "ranges": 3}) is None

    def test_parse_ranges_rejects_nan_bounds(self):
        from repro.engine.chunk_stats import parse_ranges

        assert parse_ranges({"c": [0.0, float("nan")]}) is None
        assert parse_ranges({"c": [0.0, 1.0]}) == {"c": (0.0, 1.0)}

    def test_nan_columns_get_no_ranges(self):
        from repro.engine.column import Column as Col
        from repro.engine.types import FLOAT64

        table = Table(
            Schema.of(("D.sample_value", INT64), ("D.weight", FLOAT64)),
            [
                Column(INT64, np.asarray([1, 2], dtype=np.int64)),
                Col(FLOAT64, np.asarray([np.nan, 1.0])),
            ],
        )
        ranges = compute_column_ranges(table)
        assert "D.weight" not in ranges  # NaN extrema would mis-prune
        assert ranges["D.sample_value"] == (1.0, 2.0)


class TestZoneMapSegmentSkipping:
    """Sub-chunk granularity: per-segment zones skip inter-segment gaps."""

    def test_zone_pruning_matches_in_situ_reader(self, tiny_repo):
        repository, _ = tiny_repo
        uri = repository.list_chunks()[0].uri
        meta = reader.read_metadata(uri)
        zones = ZoneMap("D.sample_time")
        for segment in meta.segments:
            zones.add_zone(
                segment.segment_no,
                segment.start_time_ms,
                segment.end_time_ms - 1,
            )
        assert len(zones) == len(meta.segments)
        # A window covering only the second segment must keep exactly the
        # segments the in-situ reader would decode.
        target = meta.segments[1]
        low = target.start_time_ms
        high = target.end_time_ms - 1
        kept = set(zones.prune_range(low, high))
        decoded = {
            s.header.segment_no
            for s in reader.read_samples_in_range(uri, low, high + 1)
        }
        assert decoded == kept

    def test_gap_window_skips_every_segment(self, tiny_repo):
        repository, _ = tiny_repo
        uri = repository.list_chunks()[0].uri
        meta = reader.read_metadata(uri)
        zones = ZoneMap("D.sample_time")
        gap = None
        previous_end = None
        for segment in meta.segments:
            zones.add_zone(
                segment.segment_no,
                segment.start_time_ms,
                segment.end_time_ms - 1,
            )
            if previous_end is not None and segment.start_time_ms > previous_end:
                gap = (previous_end, segment.start_time_ms - 1)
            previous_end = segment.end_time_ms
        if gap is None:  # the synthetic split left no gap in this chunk
            return
        assert zones.prune_range(gap[0], gap[1]) == []
        assert reader.read_samples_in_range(uri, gap[0], gap[1] + 1) == []

    def test_registrar_installs_zones_and_ranges(self, lazy_db, tiny_repo):
        repository, _ = tiny_repo
        uri = repository.list_chunks()[0].uri
        stats = lazy_db.database.chunk_stats.get(uri)
        assert stats is not None and not stats.enriched
        assert stats.segment_zones is not None
        assert stats.segment_zones.attribute == "D.sample_time"
        assert len(stats.segment_zones) > 0
        assert set(stats.ranges) == {
            "D.sample_time", "D.file_id", "D.segment_no",
        }
        low, high = stats.ranges["D.file_id"]
        assert low == high  # one file id per chunk


class TestStoreStatsSidecar:
    def test_sidecar_round_trip(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        store.put("u", make_table([5, -2, 9], [10, 20, 30]), 0.05)
        ranges = store.get_stats("u")
        assert ranges["D.sample_value"] == (-2.0, 9.0)
        assert ranges["D.sample_time"] == (10.0, 30.0)

    def test_absent_entry_has_no_stats(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        assert store.get_stats("missing") is None

    def test_corrupt_sidecar_treated_as_absent_chunk_still_readable(
        self, tmp_path
    ):
        store = ChunkStore(str(tmp_path))
        store.put("u", make_table([1, 2], [3, 4]), 0.05)
        manifest_path = os.path.join(store._entry_dir("u"), MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["stats"] = {"D.sample_value": ["broken", None]}
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        assert store.get_stats("u") is None  # absent, never wrong
        loaded = store.get("u")  # the chunk itself stays readable
        assert loaded is not None
        assert loaded[0].num_rows == 2

    def test_inverted_sidecar_range_rejected(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        store.put("u", make_table([1], [1]), 0.05)
        manifest_path = os.path.join(store._entry_dir("u"), MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["stats"] = {"D.sample_value": [9.0, 1.0]}
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        assert store.get_stats("u") is None

    def test_truncated_manifest_kills_entry_and_stats(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        store.put("u", make_table([1], [1]), 0.05)
        manifest_path = os.path.join(store._entry_dir("u"), MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(manifest_path, "w", encoding="utf-8") as handle:
            handle.write(text[: len(text) // 2])  # crash mid-write
        assert store.get_stats("u") is None
        assert store.get("u") is None

    def test_adopt_store_stats_after_restart(self, tmp_path):
        from repro.engine.database import Database

        workdir = str(tmp_path / "db")
        first = Database(workdir=workdir)
        first.chunk_store.put("u", make_table([4, 8], [1, 2]), 0.03)
        first.close()
        second = Database(workdir=workdir)
        assert second.adopt_store_stats() == 1
        entry = second.chunk_stats.get("u")
        assert entry.enriched
        assert entry.ranges["D.sample_value"] == (4.0, 8.0)
        assert entry.loading_cost == 0.03
        second.close()
