"""Shared chunk scans: overlapping consumers share one pass per table.

Bit-identity with private scans is the contract: ``shared_scan=True`` may
only change *who* materializes a chunk, never what any consumer sees.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.loading import prepare
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.engine.errors import QueryCancelled
from repro.engine.physical import CancelToken
from repro.workloads.queries import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def two_day_sql(station: str = "ISK", channel: str = "BHE") -> str:
    return t4_query(
        QueryParams(
            station=station,
            channel=channel,
            start_ms=EPOCH_2010_MS,
            end_ms=EPOCH_2010_MS + 2 * MILLIS_PER_DAY,
        )
    )


@pytest.fixture()
def shared_db(tiny_repo):
    db, _ = prepare(
        "lazy",
        tiny_repo[0],
        options=TwoStageOptions(io_threads=4, shared_scan=True),
    )
    yield db
    db.close()


class TestBitIdentity:
    def test_single_consumer_matches_private_scan(self, tiny_repo):
        sql = two_day_sql()
        private_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=4)
        )
        shared_db, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(io_threads=4, shared_scan=True),
        )
        try:
            expected = private_db.query(sql)
            observed = shared_db.query(sql)
            assert observed.table.to_dicts() == expected.table.to_dicts()
            # Nobody to share with: the lone consumer is not "attached".
            assert observed.stats.shared_scan_attached == 0
        finally:
            private_db.close()
            shared_db.close()

    def test_concurrent_consumers_match_private_scan(
        self, tiny_repo, shared_db
    ):
        sql = two_day_sql()
        private_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=4)
        )
        try:
            expected = private_db.query(sql).table.to_dicts()
        finally:
            private_db.close()

        pool = shared_db.session_pool(size=4)
        barrier = threading.Barrier(4)

        def client(_):
            with pool.session() as session:
                barrier.wait()
                return session.query(sql).table.to_dicts()

        with ThreadPoolExecutor(max_workers=4) as executor:
            results = list(executor.map(client, range(4)))
        assert all(rows == expected for rows in results)

    def test_mixed_predicates_share_chunks_not_results(self, shared_db):
        # Two different stations over the same table: overlapping passes
        # must keep each consumer's own predicate filtering intact.
        queries = [two_day_sql("ISK", "BHE"), two_day_sql("FIAM", "HHZ")]
        expected = [shared_db.query(sql).table.to_dicts() for sql in queries]
        shared_db.drop_caches()

        with ThreadPoolExecutor(max_workers=4) as executor:
            observed = list(
                executor.map(
                    lambda sql: shared_db.query(sql).table.to_dicts(),
                    queries * 2,
                )
            )
        assert observed[0] == expected[0]
        assert observed[1] == expected[1]
        assert observed[2] == expected[0]
        assert observed[3] == expected[1]


class TestSharingAccounting:
    def test_wave_shares_deliveries_and_counts_attachments(self, shared_db):
        sql = two_day_sql()
        shared_db.database.chunk_loader.io_delay_ms = 40.0
        pool = shared_db.session_pool(size=4)
        barrier = threading.Barrier(4)

        def client(_):
            with pool.session() as session:
                barrier.wait()
                result = session.query(sql)
                return result.stats

        with ThreadPoolExecutor(max_workers=4) as executor:
            stats = list(executor.map(client, range(4)))
        shared_db.database.chunk_loader.io_delay_ms = 0.0

        snapshot = shared_db.database.shared_scans.stats_snapshot()
        assert snapshot["consumers_total"] == 4
        assert snapshot["passes_started"] >= 1
        # With all four held at a barrier and slow loads, later arrivals
        # attach to the first consumer's pass and share its deliveries.
        assert snapshot["consumers_attached"] >= 1
        assert (
            snapshot["deliveries_shared"] + snapshot["assemblies_shared"] >= 1
        )
        assert sum(s.shared_scan_attached for s in stats) == (
            snapshot["consumers_attached"]
        )
        assert sum(s.chunks_shared for s in stats) >= 1

    def test_late_attach_picks_up_missed_chunks(self, shared_db):
        sql = two_day_sql()
        # Serial owner + slow loads: the first consumer is mid-pass
        # (first chunk in flight) when the second arrives.
        shared_db.database.chunk_loader.io_delay_ms = 150.0
        db = shared_db
        first_stats: list = []

        def first():
            first_stats.append(db.query(sql).stats)

        thread = threading.Thread(target=first)
        thread.start()
        time.sleep(0.08)
        late = db.query(sql)
        thread.join(timeout=30)
        assert not thread.is_alive()
        db.database.chunk_loader.io_delay_ms = 0.0

        assert late.table.to_dicts() == db.query(sql).table.to_dicts()
        # The late arrival attached to the in-flight pass and was handed
        # at least one chunk it did not materialize itself.
        assert late.stats.shared_scan_attached == 1
        assert late.stats.chunks_shared >= 1

    def test_facade_counters_roll_up(self, shared_db):
        sql = two_day_sql()
        with ThreadPoolExecutor(max_workers=4) as executor:
            list(executor.map(lambda _: shared_db.query(sql), range(4)))
        facade = shared_db.counters_snapshot()["facade"]
        assert facade["queries_executed"] == 4
        assert facade["shared_scan_attached"] >= 0
        snapshot = shared_db.counters_snapshot()["shared_scan"]
        assert snapshot["consumers_total"] == 4


class TestCancellation:
    def test_cancel_one_consumer_leaves_wave_intact(self, shared_db):
        """One consumer cancelled mid-pass: it unwinds with QueryCancelled
        and returns its session to the pool; the other consumers of the
        same wave complete with correct results."""
        sql = two_day_sql()
        expected = shared_db.query(sql).table.to_dicts()
        shared_db.drop_caches()
        shared_db.database.chunk_loader.io_delay_ms = 120.0

        pool = shared_db.session_pool(size=4)
        token = CancelToken()
        barrier = threading.Barrier(4)
        outcomes: list = []

        def victim():
            with pool.session() as session:
                barrier.wait()
                try:
                    session.query(sql, cancel=token)
                    outcomes.append("completed")
                except QueryCancelled:
                    outcomes.append("cancelled")

        def survivor():
            with pool.session() as session:
                barrier.wait()
                return session.query(sql).table.to_dicts()

        with ThreadPoolExecutor(max_workers=4) as executor:
            victim_future = executor.submit(victim)
            survivor_futures = [executor.submit(survivor) for _ in range(3)]
            time.sleep(0.06)  # let the wave get mid-pass
            token.cancel()
            victim_future.result(timeout=30)
            results = [f.result(timeout=30) for f in survivor_futures]
        shared_db.database.chunk_loader.io_delay_ms = 0.0

        assert outcomes == ["cancelled"]
        assert all(rows == expected for rows in results)
        # Every session — the cancelled one included — is back in the pool.
        assert pool.stats()["in_use"] == 0
        assert pool.stats()["idle"] == pool.stats()["created"]
        # The scheduler holds no state between waves.
        assert not shared_db.database.shared_scans._passes
        # And the database is still fully usable.
        assert shared_db.query(sql).table.to_dicts() == expected

    def test_abandoned_delivery_is_reclaimed(self, shared_db):
        """A waiter blocked on a cancelled owner's delivery re-claims it
        instead of failing or hanging."""
        sql = two_day_sql()
        expected = shared_db.query(sql).table.to_dicts()
        shared_db.drop_caches()
        shared_db.database.chunk_loader.io_delay_ms = 150.0

        token = CancelToken()
        db = shared_db
        outcomes: list = []

        def owner():
            try:
                db.query(sql, cancel=token)
                outcomes.append("completed")
            except QueryCancelled:
                outcomes.append("cancelled")

        thread = threading.Thread(target=owner)
        thread.start()
        time.sleep(0.06)  # owner claims the chunks, first load in flight
        late = None
        late_error = None

        def late_consumer():
            nonlocal late, late_error
            try:
                late = db.query(sql).table.to_dicts()
            except BaseException as exc:  # pragma: no cover - diagnostics
                late_error = exc

        late_thread = threading.Thread(target=late_consumer)
        late_thread.start()
        time.sleep(0.05)
        token.cancel()
        thread.join(timeout=30)
        late_thread.join(timeout=30)
        db.database.chunk_loader.io_delay_ms = 0.0

        assert not thread.is_alive() and not late_thread.is_alive()
        assert outcomes == ["cancelled"]
        assert late_error is None
        assert late == expected


class TestPlanSurface:
    def test_describe_marks_shared_scans(self, shared_db):
        from repro.engine import algebra

        compiled = shared_db.compiler.plan_stage_two(
            shared_db.bind(two_day_sql())
        )
        described = []

        def walk(node):
            if isinstance(node, algebra.ParallelChunkScan):
                described.append(node.describe())
            for child in node.children():
                walk(child)

        for instruction in compiled.program.instructions:
            plan = getattr(instruction, "plan", None)
            if plan is not None:
                walk(plan)
        assert described, "stage-two program has no ParallelChunkScan"
        assert all("shared" in text for text in described)
