"""Unit and property tests for Column and ColumnBuilder."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine.column import Column, ColumnBuilder, column_from_values
from repro.engine.errors import TypeMismatchError
from repro.engine.types import FLOAT64, INT64, STRING


class TestConstruction:
    def test_from_values_int(self):
        col = Column.from_values(INT64, [1, 2, 3])
        assert len(col) == 3
        assert col.to_list() == [1, 2, 3]

    def test_from_values_string_object_dtype(self):
        col = Column.from_values(STRING, ["a", "b"])
        assert col.values.dtype == object
        assert col.to_list() == ["a", "b"]

    def test_empty(self):
        assert len(Column.empty(FLOAT64)) == 0

    def test_constant(self):
        col = Column.constant(INT64, 7, 4)
        assert col.to_list() == [7, 7, 7, 7]

    def test_constant_string(self):
        col = Column.constant(STRING, "x", 3)
        assert col.to_list() == ["x", "x", "x"]

    def test_coercion_applies(self):
        col = Column.from_values(FLOAT64, [1, 2])
        assert col.values.dtype == np.float64

    def test_infer_from_values(self):
        assert column_from_values([1, 2]).dtype is INT64
        assert column_from_values(["a"]).dtype is STRING
        assert column_from_values([]).dtype is STRING


class TestBulkOps:
    def test_take(self):
        col = Column.from_values(INT64, [10, 20, 30])
        taken = col.take(np.asarray([2, 0]))
        assert taken.to_list() == [30, 10]

    def test_filter(self):
        col = Column.from_values(INT64, [1, 2, 3, 4])
        kept = col.filter(np.asarray([True, False, True, False]))
        assert kept.to_list() == [1, 3]

    def test_filter_requires_bool_mask(self):
        col = Column.from_values(INT64, [1])
        with pytest.raises(TypeMismatchError):
            col.filter(np.asarray([1]))

    def test_slice(self):
        col = Column.from_values(INT64, [1, 2, 3, 4])
        assert col.slice(1, 3).to_list() == [2, 3]

    def test_concat(self):
        a = Column.from_values(INT64, [1])
        b = Column.from_values(INT64, [2, 3])
        assert a.concat(b).to_list() == [1, 2, 3]

    def test_concat_type_mismatch(self):
        a = Column.from_values(INT64, [1])
        b = Column.from_values(FLOAT64, [2.0])
        with pytest.raises(TypeMismatchError):
            a.concat(b)

    def test_concat_all_single(self):
        a = Column.from_values(INT64, [1])
        assert Column.concat_all([a]) is a

    def test_concat_all_empty_raises(self):
        with pytest.raises(ValueError):
            Column.concat_all([])

    def test_unique_preserves_first_appearance(self):
        col = Column.from_values(INT64, [3, 1, 3, 2, 1])
        assert col.unique().to_list() == [3, 1, 2]

    def test_unique_strings(self):
        col = Column.from_values(STRING, ["b", "a", "b"])
        assert col.unique().to_list() == ["b", "a"]


class TestEquality:
    def test_equal(self):
        assert Column.from_values(INT64, [1, 2]) == Column.from_values(INT64, [1, 2])

    def test_unequal_values(self):
        assert Column.from_values(INT64, [1, 2]) != Column.from_values(INT64, [2, 1])

    def test_unequal_types(self):
        assert Column.from_values(INT64, [1]) != Column.from_values(FLOAT64, [1.0])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Column.from_values(INT64, [1]))


class TestNbytes:
    def test_int_column_nbytes(self):
        col = Column.from_values(INT64, list(range(100)))
        assert col.nbytes == 800

    def test_string_column_counts_payload(self):
        col = Column.from_values(STRING, ["abc", "de"])
        assert col.nbytes >= 5


class TestBuilder:
    def test_append_many(self):
        builder = ColumnBuilder(INT64, capacity=2)
        for i in range(100):
            builder.append(i)
        col = builder.finish()
        assert col.to_list() == list(range(100))

    def test_extend(self):
        builder = ColumnBuilder(STRING)
        builder.extend(["a", "b"])
        builder.extend(iter(["c"]))
        assert builder.finish().to_list() == ["a", "b", "c"]

    def test_extend_array_fast_path(self):
        builder = ColumnBuilder(INT64)
        builder.extend_array(np.arange(10))
        builder.extend_array(np.arange(5))
        assert len(builder.finish()) == 15

    def test_finish_snapshots(self):
        builder = ColumnBuilder(INT64)
        builder.append(1)
        first = builder.finish()
        builder.append(2)
        assert first.to_list() == [1]

    def test_coercion_on_append(self):
        builder = ColumnBuilder(FLOAT64)
        builder.append(3)
        assert builder.finish().to_list() == [3.0]


@given(st.lists(st.integers(min_value=-(2**62), max_value=2**62)))
def test_builder_roundtrip_property(values):
    builder = ColumnBuilder(INT64)
    builder.extend(values)
    assert builder.finish().to_list() == values


@given(
    st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1),
    st.data(),
)
def test_take_then_filter_consistency(values, data):
    col = Column.from_values(INT64, values)
    mask = np.asarray(
        data.draw(
            st.lists(
                st.booleans(), min_size=len(values), max_size=len(values)
            )
        ),
        dtype=bool,
    )
    filtered = col.filter(mask)
    gathered = col.take(np.flatnonzero(mask))
    assert filtered == gathered
