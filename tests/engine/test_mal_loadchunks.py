"""Tests for the LoadChunks MAL instruction (parallel chunk ingestion)."""

import pytest

from repro.engine.mal import LoadChunks, MalProgram
from repro.engine.physical import ExecutionContext


@pytest.fixture()
def uris(lazy_db):
    return sorted(lazy_db.database.catalog.table("F").data.column("uri"))[:4]


class TestLoadChunks:
    def test_serial_load_populates_recycler(self, lazy_db, uris):
        ctx = ExecutionContext(lazy_db.database)
        instruction = LoadChunks(uris=uris, table_name="D", threads=1)
        instruction.execute(ctx, MalProgram([]))
        assert all(uri in lazy_db.database.recycler for uri in uris)
        assert ctx.stats.chunks_loaded == len(uris)

    def test_parallel_load_equivalent(self, lazy_db, uris):
        ctx = ExecutionContext(lazy_db.database)
        LoadChunks(uris=uris, table_name="D", threads=4).execute(
            ctx, MalProgram([])
        )
        assert all(uri in lazy_db.database.recycler for uri in uris)

    def test_cached_chunks_skipped(self, lazy_db, uris):
        database = lazy_db.database
        table, cost = database.load_chunk(uris[0], "D")
        database.recycler.put(uris[0], table, cost)
        ctx = ExecutionContext(database)
        LoadChunks(uris=uris, table_name="D", threads=1).execute(
            ctx, MalProgram([])
        )
        assert ctx.stats.chunks_loaded == len(uris) - 1

    def test_rows_counted(self, lazy_db, uris):
        ctx = ExecutionContext(lazy_db.database)
        LoadChunks(uris=uris[:1], table_name="D", threads=1).execute(
            ctx, MalProgram([])
        )
        assert ctx.stats.chunk_rows_loaded > 0

    def test_describe(self, uris):
        instruction = LoadChunks(uris=uris, table_name="D", threads=2)
        text = instruction.describe()
        assert "4 chunk(s)" in text and "threads=2" in text
