"""Validation tests for logical plan node construction."""

import pytest

from repro.engine import algebra
from repro.engine.errors import PlanError, TypeMismatchError
from repro.engine.expressions import Comparison, col, lit
from repro.engine.table import Schema
from repro.engine.types import FLOAT64, INT64, STRING


@pytest.fixture()
def schema():
    return Schema.of(("T.a", INT64), ("T.b", STRING), ("T.c", FLOAT64))


@pytest.fixture()
def scan(schema):
    return algebra.Scan("T", schema)


class TestValidation:
    def test_select_unknown_column(self, scan):
        with pytest.raises(PlanError):
            algebra.Select(scan, Comparison("=", col("T.missing"), lit(1)))

    def test_project_empty_outputs(self, scan):
        with pytest.raises(PlanError):
            algebra.Project(scan, [])

    def test_project_schema_types(self, scan):
        project = algebra.Project(scan, [("x", col("T.c"))])
        assert project.schema.field("x").dtype is FLOAT64

    def test_join_schema_concat(self, scan, schema):
        other = algebra.Scan("U", Schema.of(("U.k", INT64)))
        join = algebra.Join(scan, other, None)
        assert join.schema.names == ("T.a", "T.b", "T.c", "U.k")
        assert join.is_cross_product

    def test_join_condition_validated(self, scan):
        other = algebra.Scan("U", Schema.of(("U.k", INT64)))
        with pytest.raises(PlanError):
            algebra.Join(scan, other, Comparison("=", col("T.a"), col("V.x")))

    def test_aggregate_requires_something(self, scan):
        with pytest.raises(PlanError):
            algebra.Aggregate(scan, [], [])

    def test_aggregate_unknown_group_column(self, scan):
        with pytest.raises(PlanError):
            algebra.Aggregate(
                scan, ["T.missing"],
                [algebra.AggregateSpec("COUNT", None, "n")],
            )

    def test_aggregate_spec_unknown_function(self):
        with pytest.raises(PlanError):
            algebra.AggregateSpec("MEDIAN", col("T.a"), "m")

    def test_count_star_only_aggregate_without_argument(self):
        with pytest.raises(PlanError):
            algebra.AggregateSpec("SUM", None, "s")

    def test_union_requires_children(self):
        with pytest.raises(PlanError):
            algebra.Union([])

    def test_union_name_mismatch(self, scan):
        other = algebra.Scan("U", Schema.of(("U.k", INT64)))
        with pytest.raises(PlanError):
            algebra.Union([scan, other])

    def test_union_type_mismatch(self, schema):
        a = algebra.Scan("T", schema)
        b = algebra.Scan(
            "T", Schema.of(("T.a", STRING), ("T.b", STRING), ("T.c", FLOAT64))
        )
        with pytest.raises(TypeMismatchError):
            algebra.Union([a, b])

    def test_sort_requires_keys(self, scan):
        with pytest.raises(PlanError):
            algebra.Sort(scan, [])

    def test_sort_unknown_key(self, scan):
        with pytest.raises(PlanError):
            algebra.Sort(scan, [algebra.SortKey("T.missing")])

    def test_limit_negative(self, scan):
        with pytest.raises(PlanError):
            algebra.Limit(scan, -1)


class TestIntrospection:
    def test_base_tables_union(self, scan):
        other = algebra.Scan("U", Schema.of(("U.k", INT64)))
        join = algebra.Join(scan, other, None)
        assert join.base_tables() == {"T", "U"}

    def test_base_tables_chunk_access(self, schema):
        access = algebra.ChunkAccess("file:///x", "T", schema)
        assert access.base_tables() == {"T"}

    def test_pretty_indents_children(self, scan):
        plan = algebra.Limit(
            algebra.Select(scan, Comparison("=", col("T.a"), lit(1))), 3
        )
        lines = plan.pretty().splitlines()
        assert lines[0].startswith("Limit")
        assert lines[1].startswith("  Select")
        assert lines[2].startswith("    Scan")

    def test_describe_mentions_predicate(self, scan):
        select = algebra.Select(scan, Comparison("=", col("T.a"), lit(1)))
        assert "T.a" in select.describe()

    def test_empty_relation_schema(self):
        empty = algebra.EmptyRelation()
        assert len(empty.schema) == 0

    def test_aggregate_output_types(self, scan):
        agg = algebra.Aggregate(
            scan,
            [],
            [
                algebra.AggregateSpec("COUNT", None, "n"),
                algebra.AggregateSpec("AVG", col("T.a"), "mean"),
                algebra.AggregateSpec("SUM", col("T.c"), "total"),
                algebra.AggregateSpec("MIN", col("T.a"), "lo"),
            ],
        )
        assert agg.schema.field("n").dtype is INT64
        assert agg.schema.field("mean").dtype is FLOAT64
        assert agg.schema.field("total").dtype is FLOAT64
        assert agg.schema.field("lo").dtype is INT64
