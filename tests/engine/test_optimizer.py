"""Tests for the rule-based logical optimizer (pushdown, folding)."""

import pytest

from repro.engine import algebra
from repro.engine.catalog import TableKind
from repro.engine.database import Database
from repro.engine.expressions import (
    BooleanOp,
    Comparison,
    col,
    lit,
)
from repro.engine.optimizer import (
    optimize,
    push_down_selections,
    simplify_predicates,
)
from repro.engine.physical import ExecutionContext, execute_plan
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, STRING


@pytest.fixture()
def db():
    database = Database(buffer_pool_bytes=1 << 20)
    for name in ("a", "b"):
        database.catalog.create_table(
            name,
            Schema.of(("k", INT64), ("v", STRING)),
            TableKind.METADATA,
        )
        database.insert(
            name,
            Table.from_rows(
                database.catalog.table(name).schema,
                [(1, "x"), (2, "y"), (3, "z")],
            ),
        )
    yield database
    database.close()


def scan(db, name):
    return algebra.Scan(name, db.qualified_schema(name))


def find_nodes(plan, node_type):
    found = []

    def visit(node):
        if isinstance(node, node_type):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(plan)
    return found


class TestPushdown:
    def test_single_table_predicate_moves_below_join(self, db):
        join = algebra.Join(
            scan(db, "a"),
            scan(db, "b"),
            Comparison("=", col("a.k"), col("b.k")),
        )
        plan = algebra.Select(join, Comparison("=", col("a.v"), lit("x")))
        optimized = push_down_selections(plan)
        # Top node is the join; the select sits on the 'a' side now.
        assert isinstance(optimized, algebra.Join)
        assert isinstance(optimized.left, algebra.Select)
        assert isinstance(optimized.left.child, algebra.Scan)

    def test_cross_table_predicate_stays(self, db):
        join = algebra.Join(scan(db, "a"), scan(db, "b"), None)
        plan = algebra.Select(join, Comparison("=", col("a.k"), col("b.k")))
        optimized = push_down_selections(plan)
        assert isinstance(optimized, algebra.Select)

    def test_pushdown_through_union(self, db):
        union = algebra.Union([scan(db, "a"), scan(db, "a")])
        plan = algebra.Select(union, Comparison("=", col("a.k"), lit(1)))
        optimized = push_down_selections(plan)
        assert isinstance(optimized, algebra.Union)
        for child in optimized.children():
            assert isinstance(child, algebra.Select)

    def test_semantics_preserved(self, db):
        join = algebra.Join(
            scan(db, "a"),
            scan(db, "b"),
            Comparison("=", col("a.k"), col("b.k")),
        )
        plan = algebra.Select(
            join,
            BooleanOp(
                "AND",
                [
                    Comparison(">", col("a.k"), lit(1)),
                    Comparison("=", col("b.v"), lit("z")),
                ],
            ),
        )
        before = execute_plan(plan, ExecutionContext(db))
        after = execute_plan(push_down_selections(plan), ExecutionContext(db))
        assert sorted(map(str, before.to_dicts())) == sorted(
            map(str, after.to_dicts())
        )

    def test_nested_selects_merge(self, db):
        plan = algebra.Select(
            algebra.Select(scan(db, "a"), Comparison(">", col("a.k"), lit(1))),
            Comparison("<", col("a.k"), lit(3)),
        )
        optimized = push_down_selections(plan)
        selects = find_nodes(optimized, algebra.Select)
        assert len(selects) == 1

    def test_does_not_cross_aggregate(self, db):
        agg = algebra.Aggregate(
            scan(db, "a"), ["a.v"], [algebra.AggregateSpec("COUNT", None, "n")]
        )
        plan = algebra.Select(agg, Comparison(">", col("n"), lit(0)))
        optimized = push_down_selections(plan)
        assert isinstance(optimized, algebra.Select)
        assert isinstance(optimized.child, algebra.Aggregate)


class TestSimplify:
    def test_constant_fold_true_removed(self, db):
        plan = algebra.Select(
            scan(db, "a"),
            BooleanOp(
                "AND",
                [
                    Comparison("=", lit(1), lit(1)),
                    Comparison(">", col("a.k"), lit(1)),
                ],
            ),
        )
        simplified = simplify_predicates(plan)
        assert isinstance(simplified.predicate, Comparison)

    def test_constant_fold_whole_predicate_true(self, db):
        plan = algebra.Select(scan(db, "a"), Comparison("=", lit(1), lit(1)))
        simplified = simplify_predicates(plan)
        assert isinstance(simplified, algebra.Scan)

    def test_duplicate_conjuncts_removed(self, db):
        predicate = BooleanOp(
            "AND",
            [
                Comparison(">", col("a.k"), lit(1)),
                Comparison(">", col("a.k"), lit(1)),
            ],
        )
        plan = algebra.Select(scan(db, "a"), predicate)
        simplified = simplify_predicates(plan)
        assert isinstance(simplified.predicate, Comparison)

    def test_false_constant_kept_for_execution(self, db):
        plan = algebra.Select(scan(db, "a"), Comparison("=", lit(1), lit(2)))
        simplified = simplify_predicates(plan)
        result = execute_plan(optimize(simplified), ExecutionContext(db))
        assert result.num_rows == 0


class TestOptimizePipeline:
    def test_full_pipeline_equivalence(self, db):
        join = algebra.Join(
            scan(db, "a"),
            scan(db, "b"),
            Comparison("=", col("a.k"), col("b.k")),
        )
        plan = algebra.Project(
            algebra.Select(
                join,
                BooleanOp(
                    "AND",
                    [
                        Comparison("=", lit(True), lit(True)),
                        Comparison("<=", col("a.k"), lit(2)),
                    ],
                ),
            ),
            [("key", col("a.k")), ("val", col("b.v"))],
        )
        before = execute_plan(plan, ExecutionContext(db))
        after = execute_plan(optimize(plan), ExecutionContext(db))
        assert before.to_dicts() == after.to_dicts()
