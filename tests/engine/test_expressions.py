"""Unit and property tests for the expression AST and its evaluation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    IsIn,
    col,
    conjoin,
    conjuncts,
    lit,
    referenced_columns,
    referenced_tables,
    split_equi_join,
)
from repro.engine.errors import TypeMismatchError
from repro.engine.table import Schema, Table
from repro.engine.types import BOOL, FLOAT64, INT64, STRING


@pytest.fixture()
def table():
    schema = Schema.of(
        ("T.a", INT64), ("T.b", INT64), ("T.s", STRING), ("T.f", FLOAT64)
    )
    return Table.from_rows(
        schema,
        [
            (1, 10, "x", 0.5),
            (2, 20, "y", 1.5),
            (3, 30, "x", 2.5),
            (4, 40, "z", 3.5),
        ],
    )


class TestColumnRef:
    def test_evaluate(self, table):
        assert col("T.a").evaluate(table).tolist() == [1, 2, 3, 4]

    def test_table_name(self):
        assert col("T.a").table_name == "T"
        assert col("plain").table_name is None

    def test_output_type(self, table):
        assert col("T.s").output_type(table) is STRING


class TestLiteral:
    def test_broadcast(self, table):
        values = lit(7).evaluate(table)
        assert values.tolist() == [7, 7, 7, 7]

    def test_string_broadcast(self, table):
        values = lit("q").evaluate(table)
        assert values.dtype == object and values[0] == "q"

    def test_explicit_type(self):
        assert lit(5, FLOAT64).dtype is FLOAT64


class TestComparison:
    def test_less_than(self, table):
        mask = Comparison("<", col("T.a"), lit(3)).evaluate(table)
        assert mask.tolist() == [True, True, False, False]

    def test_equals_string(self, table):
        mask = Comparison("=", col("T.s"), lit("x")).evaluate(table)
        assert mask.tolist() == [True, False, True, False]

    def test_not_equal(self, table):
        mask = Comparison("<>", col("T.a"), lit(2)).evaluate(table)
        assert mask.tolist() == [True, False, True, True]

    def test_flipped(self, table):
        original = Comparison("<", lit(2), col("T.a"))
        flipped = original.flipped()
        assert flipped.op == ">"
        assert np.array_equal(
            original.evaluate(table), flipped.evaluate(table)
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(TypeMismatchError):
            Comparison("~", col("T.a"), lit(1))

    def test_output_type_is_bool(self, table):
        assert Comparison("=", col("T.a"), lit(1)).output_type(table) is BOOL


class TestBooleanOp:
    def test_and(self, table):
        pred = BooleanOp(
            "AND",
            [
                Comparison(">", col("T.a"), lit(1)),
                Comparison("<", col("T.a"), lit(4)),
            ],
        )
        assert pred.evaluate(table).tolist() == [False, True, True, False]

    def test_or(self, table):
        pred = BooleanOp(
            "OR",
            [
                Comparison("=", col("T.a"), lit(1)),
                Comparison("=", col("T.a"), lit(4)),
            ],
        )
        assert pred.evaluate(table).tolist() == [True, False, False, True]

    def test_not(self, table):
        pred = BooleanOp("NOT", [Comparison("=", col("T.s"), lit("x"))])
        assert pred.evaluate(table).tolist() == [False, True, False, True]

    def test_not_arity_checked(self):
        with pytest.raises(TypeMismatchError):
            BooleanOp("NOT", [lit(True), lit(False)])

    def test_and_arity_checked(self):
        with pytest.raises(TypeMismatchError):
            BooleanOp("AND", [lit(True)])


class TestArithmetic:
    def test_add(self, table):
        values = Arithmetic("+", col("T.a"), col("T.b")).evaluate(table)
        assert values.tolist() == [11, 22, 33, 44]

    def test_division_promotes_to_float(self, table):
        expr = Arithmetic("/", col("T.b"), lit(8))
        assert expr.output_type(table) is FLOAT64
        assert expr.evaluate(table)[0] == pytest.approx(1.25)

    def test_modulo(self, table):
        values = Arithmetic("%", col("T.b"), lit(3)).evaluate(table)
        assert values.tolist() == [1, 2, 0, 1]

    def test_int_result_stays_int(self, table):
        expr = Arithmetic("*", col("T.a"), lit(2))
        assert expr.evaluate(table).dtype == np.int64


class TestIsIn:
    def test_numeric(self, table):
        mask = IsIn(col("T.a"), [2, 4]).evaluate(table)
        assert mask.tolist() == [False, True, False, True]

    def test_string(self, table):
        mask = IsIn(col("T.s"), ["x"]).evaluate(table)
        assert mask.tolist() == [True, False, True, False]

    def test_empty_options(self, table):
        assert not IsIn(col("T.a"), []).evaluate(table).any()


class TestConjuncts:
    def test_split_nested_and(self):
        pred = BooleanOp(
            "AND",
            [
                Comparison("=", col("T.a"), lit(1)),
                BooleanOp(
                    "AND",
                    [
                        Comparison("=", col("T.b"), lit(2)),
                        Comparison("=", col("T.s"), lit("x")),
                    ],
                ),
            ],
        )
        assert len(conjuncts(pred)) == 3

    def test_or_not_split(self):
        pred = BooleanOp(
            "OR",
            [Comparison("=", col("T.a"), lit(1)), Comparison("=", col("T.b"), lit(2))],
        )
        assert len(conjuncts(pred)) == 1

    def test_none(self):
        assert conjuncts(None) == []

    def test_conjoin_roundtrip(self, table):
        parts = [
            Comparison(">", col("T.a"), lit(1)),
            Comparison("<", col("T.b"), lit(40)),
        ]
        merged = conjoin(parts)
        assert merged.evaluate(table).tolist() == [False, True, True, False]

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None

    def test_conjoin_single_passthrough(self):
        p = Comparison("=", col("T.a"), lit(1))
        assert conjoin([p]) is p


class TestAnalysis:
    def test_referenced_columns(self):
        pred = BooleanOp(
            "AND",
            [
                Comparison("=", col("A.x"), col("B.y")),
                Comparison(">", col("A.z"), lit(1)),
            ],
        )
        assert referenced_columns(pred) == {"A.x", "B.y", "A.z"}

    def test_referenced_tables(self):
        pred = Comparison("=", col("A.x"), col("B.y"))
        assert referenced_tables(pred) == {"A", "B"}

    def test_split_equi_join(self):
        pred = BooleanOp(
            "AND",
            [
                Comparison("=", col("A.x"), col("B.y")),
                Comparison(">", col("A.z"), col("B.w")),
            ],
        )
        pairs, residual = split_equi_join(pred, {"A"}, {"B"})
        assert pairs == [("A.x", "B.y")]
        assert len(residual) == 1

    def test_split_equi_join_swapped_sides(self):
        pred = Comparison("=", col("B.y"), col("A.x"))
        pairs, residual = split_equi_join(pred, {"A"}, {"B"})
        assert pairs == [("A.x", "B.y")]
        assert residual == []


class TestStructuralEquality:
    def test_equal_keys(self):
        a = Comparison("=", col("T.a"), lit(1))
        b = Comparison("=", col("T.a"), lit(1))
        assert a == b and hash(a) == hash(b)

    def test_different_ops_differ(self):
        a = Comparison("=", col("T.a"), lit(1))
        b = Comparison("<", col("T.a"), lit(1))
        assert a != b


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=50),
       st.integers(-100, 100))
def test_comparison_matches_numpy_oracle(values, bound):
    schema = Schema.of(("T.v", INT64))
    table = Table.from_rows(schema, [(v,) for v in values])
    array = np.asarray(values)
    for op, oracle in [("<", array < bound), (">=", array >= bound),
                       ("=", array == bound)]:
        mask = Comparison(op, col("T.v"), lit(bound)).evaluate(table)
        assert mask.tolist() == oracle.tolist()
