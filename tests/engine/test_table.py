"""Unit tests for Schema, Table and TableBuilder."""

import numpy as np
import pytest

from repro.engine.errors import CatalogError, TypeMismatchError
from repro.engine.table import Schema, Table, TableBuilder
from repro.engine.types import FLOAT64, INT64, STRING


@pytest.fixture()
def schema():
    return Schema.of(("id", INT64), ("name", STRING), ("score", FLOAT64))


@pytest.fixture()
def table(schema):
    return Table.from_rows(
        schema, [(1, "a", 1.5), (2, "b", 2.5), (3, "c", 3.5)]
    )


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema.of(("x", INT64), ("x", INT64))

    def test_field_lookup(self, schema):
        assert schema.field("name").dtype is STRING

    def test_unknown_field(self, schema):
        with pytest.raises(CatalogError):
            schema.field("missing")

    def test_index_of(self, schema):
        assert schema.index_of("score") == 2

    def test_with_prefix(self, schema):
        prefixed = schema.with_prefix("T")
        assert prefixed.names == ("T.id", "T.name", "T.score")

    def test_select_subset_order(self, schema):
        sub = schema.select(["score", "id"])
        assert sub.names == ("score", "id")

    def test_concat(self, schema):
        other = Schema.of(("extra", INT64))
        assert schema.concat(other).names == ("id", "name", "score", "extra")

    def test_equality(self, schema):
        assert schema == Schema.of(
            ("id", INT64), ("name", STRING), ("score", FLOAT64)
        )


class TestTableConstruction:
    def test_from_rows(self, table):
        assert table.num_rows == 3
        assert table.row(1) == (2, "b", 2.5)

    def test_ragged_rejected(self, schema):
        from repro.engine.column import Column

        cols = [
            Column.from_values(INT64, [1, 2]),
            Column.from_values(STRING, ["a"]),
            Column.from_values(FLOAT64, [0.5, 1.0]),
        ]
        with pytest.raises(CatalogError):
            Table(schema, cols)

    def test_type_mismatch_rejected(self, schema):
        from repro.engine.column import Column

        cols = [
            Column.from_values(FLOAT64, [1.0]),
            Column.from_values(STRING, ["a"]),
            Column.from_values(FLOAT64, [0.5]),
        ]
        with pytest.raises(TypeMismatchError):
            Table(schema, cols)

    def test_row_width_checked(self, schema):
        with pytest.raises(CatalogError):
            Table.from_rows(schema, [(1, "a")])

    def test_from_columns(self):
        from repro.engine.column import Column

        table = Table.from_columns(
            {"x": Column.from_values(INT64, [1]), "y": Column.from_values(STRING, ["a"])}
        )
        assert table.schema.names == ("x", "y")

    def test_empty(self, schema):
        assert Table.empty(schema).num_rows == 0


class TestTableOps:
    def test_take(self, table):
        taken = table.take(np.asarray([2, 0]))
        assert taken.column("id").to_list() == [3, 1]

    def test_filter(self, table):
        kept = table.filter(np.asarray([False, True, True]))
        assert kept.column("name").to_list() == ["b", "c"]

    def test_slice(self, table):
        assert table.slice(1, 2).row(0) == (2, "b", 2.5)

    def test_project_no_copy(self, table):
        projected = table.project(["score", "id"])
        assert projected.schema.names == ("score", "id")
        assert projected.columns[1] is table.columns[0]

    def test_rename(self, table):
        renamed = table.rename({"id": "key"})
        assert renamed.schema.names == ("key", "name", "score")

    def test_with_prefix(self, table):
        assert table.with_prefix("T").schema.names == (
            "T.id",
            "T.name",
            "T.score",
        )

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.num_rows == 6

    def test_concat_schema_mismatch(self, table):
        other = Table.from_rows(Schema.of(("id", INT64)), [(1,)])
        with pytest.raises(CatalogError):
            table.concat(other)

    def test_concat_all(self, table):
        assert Table.concat_all([table, table, table]).num_rows == 9

    def test_zip_columns(self, table):
        right = Table.from_rows(
            Schema.of(("extra", INT64)), [(10,), (20,), (30,)]
        )
        zipped = table.zip_columns(right)
        assert zipped.num_columns == 4
        assert zipped.row(2) == (3, "c", 3.5, 30)

    def test_to_dicts(self, table):
        assert table.to_dicts()[0] == {"id": 1, "name": "a", "score": 1.5}

    def test_nbytes_positive(self, table):
        assert table.nbytes > 0

    def test_equality(self, table, schema):
        same = Table.from_rows(
            schema, [(1, "a", 1.5), (2, "b", 2.5), (3, "c", 3.5)]
        )
        assert table == same


class TestTableBuilder:
    def test_append_rows(self, schema):
        builder = TableBuilder(schema)
        builder.append_row((1, "a", 0.5))
        builder.append_row((2, "b", 1.5))
        assert builder.finish().num_rows == 2

    def test_append_columns(self, schema):
        builder = TableBuilder(schema)
        builder.append_columns(
            [
                np.asarray([1, 2]),
                np.asarray(["a", "b"], dtype=object),
                np.asarray([0.5, 1.5]),
            ]
        )
        table = builder.finish()
        assert table.column("name").to_list() == ["a", "b"]

    def test_append_columns_length_mismatch(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(CatalogError):
            builder.append_columns(
                [
                    np.asarray([1, 2]),
                    np.asarray(["a"], dtype=object),
                    np.asarray([0.5, 1.5]),
                ]
            )

    def test_width_checked(self, schema):
        builder = TableBuilder(schema)
        with pytest.raises(CatalogError):
            builder.append_row((1, "a"))
