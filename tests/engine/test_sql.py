"""Tests for the SQL front-end: lexer, parser, binder."""

import pytest

from repro.engine import algebra
from repro.engine.catalog import TableKind
from repro.engine.database import Database
from repro.engine.errors import BindError, LexerError, ParseError
from repro.engine.expressions import BooleanOp, IsIn, Literal
from repro.engine.physical import ExecutionContext, execute_plan
from repro.engine.sql import bind_sql, parse_select, tokenize
from repro.engine.sql.ast_nodes import AggregateCall
from repro.engine.sql.lexer import TokenType
from repro.engine.table import Schema, Table
from repro.engine.types import FLOAT64, INT64, STRING, TIMESTAMP


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select FROM Where")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        tokens = tokenize("myTable")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].text == "myTable"

    def test_string_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(LexerError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].text == "42" and tokens[1].text == "3.14"

    def test_comparison_operators(self):
        tokens = tokenize("<> <= >= != =")
        assert [t.text for t in tokens[:-1]] == ["<>", "<=", ">=", "<>", "="]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n1")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "1"]

    def test_bad_character(self):
        with pytest.raises(LexerError):
            tokenize("SELECT @")

    def test_end_token(self):
        assert tokenize("x")[-1].type is TokenType.END


class TestParser:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM t")
        assert stmt.from_name == "t"
        assert len(stmt.select_items) == 2

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.select_star

    def test_where_and_chain(self):
        stmt = parse_select("SELECT a FROM t WHERE a = 1 AND b > 2 AND c < 3")
        assert isinstance(stmt.where, BooleanOp)
        assert len(stmt.where.operands) == 3

    def test_or_precedence(self):
        stmt = parse_select("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.where.op == "OR"

    def test_parenthesized(self):
        stmt = parse_select("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"

    def test_between_desugars(self):
        stmt = parse_select("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, BooleanOp)
        assert stmt.where.op == "AND"
        assert stmt.where.operands[0].op == ">="
        assert stmt.where.operands[1].op == "<="

    def test_in_list(self):
        stmt = parse_select("SELECT a FROM t WHERE s IN ('x', 'y')")
        assert isinstance(stmt.where, IsIn)
        assert stmt.where.options == ("x", "y")

    def test_aggregates(self):
        stmt = parse_select("SELECT COUNT(*), AVG(v) AS m FROM t")
        assert isinstance(stmt.select_items[0].expression, AggregateCall)
        assert stmt.select_items[1].alias == "m"

    def test_stddev_alias(self):
        stmt = parse_select("SELECT STDDEV(v) FROM t")
        assert stmt.select_items[0].expression.function == "STD"

    def test_group_order_limit(self):
        stmt = parse_select(
            "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY a DESC LIMIT 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 5

    def test_qualified_names(self):
        stmt = parse_select("SELECT F.station FROM v WHERE F.station = 'ISK'")
        assert stmt.select_items[0].expression.name == "F.station"

    def test_arithmetic_precedence(self):
        stmt = parse_select("SELECT a + b * 2 FROM t")
        expr = stmt.select_items[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_unary_minus_folds(self):
        stmt = parse_select("SELECT a FROM t WHERE a > -5")
        assert isinstance(stmt.where.right, Literal)
        assert stmt.where.right.value == -5

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t garbage extra")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a")

    def test_count_star_only(self):
        with pytest.raises(ParseError):
            parse_select("SELECT SUM(*) FROM t")


@pytest.fixture()
def db():
    database = Database(buffer_pool_bytes=1 << 20)
    database.catalog.create_table(
        "m",
        Schema.of(
            ("id", INT64), ("name", STRING), ("ts", TIMESTAMP), ("v", FLOAT64)
        ),
        TableKind.METADATA,
        primary_key=("id",),
    )
    database.insert(
        "m",
        Table.from_rows(
            database.catalog.table("m").schema,
            [
                (1, "a", 1000, 0.5),
                (2, "b", 2000, 1.5),
                (3, "a", 3000, 2.5),
            ],
        ),
    )
    yield database
    database.close()


def run(db, sql):
    plan = bind_sql(sql, db)
    return execute_plan(plan, ExecutionContext(db))


class TestBinder:
    def test_unqualified_resolution(self, db):
        result = run(db, "SELECT name FROM m WHERE id = 2")
        assert result.to_dicts() == [{"name": "b"}]

    def test_qualified_resolution(self, db):
        result = run(db, "SELECT m.name FROM m WHERE m.id = 1")
        assert result.column("m.name").to_list() == ["a"]

    def test_unknown_column(self, db):
        with pytest.raises(BindError):
            bind_sql("SELECT nope FROM m", db)

    def test_unknown_table(self, db):
        with pytest.raises(BindError):
            bind_sql("SELECT x FROM nope", db)

    def test_select_star_hides_rowid(self, db):
        result = run(db, "SELECT * FROM m")
        assert all("#" not in n for n in result.schema.names)
        assert result.num_columns == 4

    def test_timestamp_literal_coercion(self, db):
        result = run(
            db, "SELECT id FROM m WHERE ts >= '1970-01-01T00:00:02.000'"
        )
        assert result.column("id").to_list() == [2, 3]

    def test_timestamp_literal_flipped(self, db):
        result = run(
            db, "SELECT id FROM m WHERE '1970-01-01T00:00:02.000' >= ts"
        )
        assert result.column("id").to_list() == [1, 2]

    def test_aggregate_with_group(self, db):
        result = run(
            db,
            "SELECT name, COUNT(*) AS n, SUM(v) AS s FROM m GROUP BY name "
            "ORDER BY name",
        )
        assert result.to_dicts() == [
            {"name": "a", "n": 2, "s": 3.0},
            {"name": "b", "n": 1, "s": 1.5},
        ]

    def test_aggregate_expression(self, db):
        result = run(db, "SELECT MAX(v) - MIN(v) AS spread FROM m")
        assert result.to_dicts() == [{"spread": 2.0}]

    def test_duplicate_aggregate_shared(self, db):
        result = run(db, "SELECT AVG(v) AS a1, AVG(v) AS a2 FROM m")
        row = result.to_dicts()[0]
        assert row["a1"] == row["a2"]

    def test_aggregate_in_where_rejected(self, db):
        with pytest.raises(BindError):
            bind_sql("SELECT id FROM m WHERE AVG(v) > 1", db)

    def test_star_with_aggregate_rejected(self, db):
        with pytest.raises(BindError):
            bind_sql("SELECT * FROM m GROUP BY name", db)

    def test_order_by_alias(self, db):
        result = run(
            db, "SELECT name, SUM(v) AS s FROM m GROUP BY name ORDER BY s DESC"
        )
        assert result.column("name").to_list() == ["a", "b"]

    def test_order_by_missing_output(self, db):
        with pytest.raises(BindError):
            bind_sql("SELECT name FROM m ORDER BY v", db)

    def test_distinct(self, db):
        result = run(db, "SELECT DISTINCT name FROM m")
        assert sorted(result.column("name").to_list()) == ["a", "b"]

    def test_limit(self, db):
        assert run(db, "SELECT id FROM m LIMIT 2").num_rows == 2

    def test_in_with_timestamps(self, db):
        result = run(
            db,
            "SELECT id FROM m WHERE ts IN ('1970-01-01T00:00:01.000', "
            "'1970-01-01T00:00:03.000')",
        )
        assert result.column("id").to_list() == [1, 3]

    def test_view_binding(self, db):
        db.catalog.create_view(
            "mv",
            lambda: algebra.Scan("m", db.qualified_schema("m")),
            "test view",
        )
        result = run(db, "SELECT m.id FROM mv WHERE m.name = 'a'")
        assert result.column("m.id").to_list() == [1, 3]

    def test_ambiguous_column(self, db):
        db.catalog.create_table(
            "m2",
            Schema.of(("id", INT64), ("name", STRING)),
            TableKind.METADATA,
        )
        db.catalog.create_view(
            "joined",
            lambda: algebra.Join(
                algebra.Scan("m", db.qualified_schema("m")),
                algebra.Scan("m2", db.qualified_schema("m2")),
                None,
            ),
            "",
        )
        with pytest.raises(BindError):
            bind_sql("SELECT name FROM joined", db)
