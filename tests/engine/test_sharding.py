"""Sharded scatter-gather execution: identity, failure, cancellation.

Shard workers are real spawn processes (each imports numpy), so this file
follows the process-stage-two playbook: a handful of end-to-end checks
that reuse databases where possible, with the cheap layout/validation
plumbing tested without any pool.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.loading import prepare
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.engine.errors import (
    ExecutionError,
    PlanError,
    QueryCancelled,
    StorageError,
)
from repro.engine.physical import CancelToken
from repro.engine.sharding import DEFAULT_BUCKET_MS, ShardLayout

MILLIS_PER_DAY = 24 * 3600 * 1000

T4 = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM dataview "
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
)
ALL_ROWS = (
    "SELECT D.sample_time, D.sample_value FROM dataview "
    f"WHERE D.sample_time >= {EPOCH_2010_MS} "
    f"AND D.sample_time < {EPOCH_2010_MS + MILLIS_PER_DAY}"
)
COUNT_ALL = "SELECT COUNT(*) AS n FROM dataview"


@pytest.fixture(scope="module")
def serial_expected(tiny_repo):
    """Serial reference results the sharded runs must match bit-for-bit."""
    db, _ = prepare("lazy", tiny_repo[0], options=TwoStageOptions(io_threads=1))
    try:
        return {
            sql: db.query(sql).table.to_dicts()
            for sql in (T4, ALL_ROWS, COUNT_ALL)
        }
    finally:
        db.close()


class TestLayout:
    def test_placement_is_deterministic_and_in_range(self):
        layout = ShardLayout(4)
        uris = [f"ingv://repo/ISK/BHE/day-{d}.mseed" for d in range(16)]
        first = [layout.shard_of(uri) for uri in uris]
        assert first == [ShardLayout(4).shard_of(uri) for uri in uris]
        assert all(0 <= shard < 4 for shard in first)

    def test_split_preserves_assembly_and_fetch_order(self, lazy_db):
        report = lazy_db.query(COUNT_ALL).rewrite
        (plan,) = report.chunk_plans
        layout = ShardLayout(3)
        layout.refresh(lazy_db.database)
        split = layout.split(plan)
        schedule = plan.fetch_order or tuple(range(len(plan.chunks)))
        seen_assembly: list[int] = []
        for _shard_id, (assembly, fetch) in split.items():
            assert sorted(assembly) == list(assembly)  # plan order kept
            assert sorted(fetch) == sorted(assembly)  # same members
            pos = {i: n for n, i in enumerate(schedule)}
            assert [pos[i] for i in fetch] == sorted(pos[i] for i in fetch)
            seen_assembly.extend(assembly)
        assert sorted(seen_assembly) == list(range(len(plan.chunks)))

    def test_checkpoint_roundtrip_and_malformed_payloads(self):
        layout = ShardLayout(2, bucket_ms=3600_000)
        restored = ShardLayout.from_json(layout.to_json())
        assert (restored.shards, restored.bucket_ms) == (2, 3600_000)
        assert ShardLayout.from_json(None) is None
        assert ShardLayout.from_json({"shards": "many"}) is None
        assert ShardLayout.from_json({"shards": 0}) is None
        default = ShardLayout.from_json({"shards": 3})
        assert default.bucket_ms == DEFAULT_BUCKET_MS

    def test_layout_validation(self):
        with pytest.raises(StorageError, match="at least one shard"):
            ShardLayout(0)
        with pytest.raises(StorageError, match="bucket"):
            ShardLayout(2, bucket_ms=0)


class TestOptionsPlumbing:
    def test_negative_shards_rejected(self):
        with pytest.raises(PlanError, match="shards must be >= 0"):
            TwoStageOptions(shards=-1)

    def test_shards_and_shared_scan_exclusive(self):
        with pytest.raises(PlanError, match="shared_scan and shards"):
            TwoStageOptions(shards=2, shared_scan=True)

    def test_sharding_requires_positive_count(self, lazy_db):
        with pytest.raises(ExecutionError, match="at least one shard"):
            lazy_db.database.sharding(0)


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_serial_across_shard_counts(
        self, tiny_repo, serial_expected, shards
    ):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(shards=shards)
        )
        try:
            for sql, expected in serial_expected.items():
                result = db.query(sql)
                assert result.table.to_dicts() == expected
            # The scatter-gather path really ran: sub-plans were dispatched
            # and every merged chunk came from a shard worker.
            stats = db.stats
            assert stats.shard_subplans >= 1
            assert stats.chunks_from_shards > 0
            snapshot = db.planner_stats()["sharding"]
            assert snapshot["shards"] == shards
            assert snapshot["chunks_routed"] > 0
            # Satellite: every worker reports its active decode kernel.
            kernels = db.planner_stats()["decode_kernel"]["shard_workers"]
            assert kernels  # at least one worker spawned and reported
            assert all(isinstance(k, str) and k for k in kernels.values())
        finally:
            db.close()


class TestFailureAndCancellation:
    def test_worker_crash_mid_plan_raises_clean_error(self, tiny_repo):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(shards=2)
        )
        try:
            # Slow the loader *before* pools spawn (workers pickle it at
            # spawn), then bring every worker up so the kill is not racing
            # pool initialization.
            db.database.chunk_loader.io_delay_ms = 200.0
            coordinator = db.database.sharding(2)
            coordinator.warm_pools()

            outcome: list = []

            def run() -> None:
                try:
                    db.query(COUNT_ALL)
                    outcome.append("completed")
                except ExecutionError as exc:
                    outcome.append(str(exc))

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.3)  # mid-plan: workers are inside chunk fetches
            with coordinator._pool_lock:
                processes = [
                    process
                    for pool in coordinator._pools.values()
                    for process in pool._processes.values()
                ]
            assert processes
            for process in processes:
                process.kill()
            thread.join(timeout=30)
            assert not thread.is_alive()  # no hang
            assert len(outcome) == 1
            assert "worker died mid-plan" in outcome[0]
            assert coordinator.stats_snapshot()["worker_crashes"] >= 1

            # The coordinator reset the broken pools: the same database
            # answers the same query with fresh workers.
            db.database.chunk_loader.io_delay_ms = 0.0
            result = db.query(COUNT_ALL)
            assert result.table.num_rows == 1
        finally:
            db.close()

    def test_idle_worker_death_surfaces_at_submit(self, tiny_repo):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(shards=1)
        )
        try:
            coordinator = db.database.sharding(1)
            coordinator.warm_pools()
            with coordinator._pool_lock:
                processes = [
                    process
                    for pool in coordinator._pools.values()
                    for process in pool._processes.values()
                ]
            for process in processes:
                process.kill()
                process.join(timeout=10)
            # First query against the dead pool fails cleanly...
            with pytest.raises(ExecutionError, match="worker died mid-plan"):
                db.query(COUNT_ALL)
            # ...and the next one runs on a respawned worker.
            assert db.query(COUNT_ALL).table.num_rows == 1
        finally:
            db.close()

    def test_cancellation_fans_out_to_all_shards(self, tiny_repo):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(shards=2)
        )
        try:
            db.database.chunk_loader.io_delay_ms = 150.0
            coordinator = db.database.sharding(2)
            coordinator.warm_pools()

            token = CancelToken()
            outcome: list = []

            def run() -> None:
                try:
                    db.query(COUNT_ALL, cancel=token)
                    outcome.append("completed")
                except QueryCancelled:
                    outcome.append("cancelled")

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.2)
            token.cancel()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert outcome == ["cancelled"]
            # The parent broadcast the cancel sentinel to the workers.
            assert coordinator.stats_snapshot()["cancel_broadcasts"] >= 1

            # Workers unwound at a chunk boundary and stayed alive: the
            # next (token-free) query is served by the same pools.
            db.database.chunk_loader.io_delay_ms = 0.0
            result = db.query(COUNT_ALL)
            assert result.table.num_rows == 1
            assert (
                coordinator.stats_snapshot()["worker_crashes"] == 0
            )
        finally:
            db.close()


class TestPersistenceAndInvalidation:
    def test_checkpoint_reopen_restores_layout_warm(
        self, tiny_repo, serial_expected, tmp_path
    ):
        from repro.core.sommelier import SommelierDB

        workdir = str(tmp_path / "sharded")
        db, _ = prepare(
            "lazy",
            tiny_repo[0],
            workdir=workdir,
            options=TwoStageOptions(shards=2),
        )
        try:
            assert db.query(T4).table.to_dicts() == serial_expected[T4]
            db.checkpoint()
        finally:
            db.close()

        reopened = SommelierDB.open(workdir)
        try:
            assert reopened.options.shards == 2  # layout restored
            result = reopened.query(T4)
            assert result.table.to_dicts() == serial_expected[T4]
            # Warm restart: the shard workers re-hydrated their own spilled
            # stores instead of re-fetching and re-decoding.
            assert result.stats.chunks_rehydrated > 0
            assert result.stats.chunks_loaded == 0
        finally:
            reopened.close()

    def test_layout_change_invalidates_result_cache_and_warmed(
        self, tiny_repo
    ):
        db, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(shards=2, result_cache=True),
        )
        try:
            first = db.query(T4)
            repeat = db.query(T4)
            assert repeat.result_cache  # served without re-execution
            if db.prefetcher is not None:
                db.prefetcher.wait_idle()
                db.prefetcher._warmed["stale://uri"] = None

            db._apply_shards(4)  # the restart/reconfigure path

            after = db.query(T4)
            # Same rows, but not served from the pre-reshard cache entry.
            assert after.table.to_dicts() == first.table.to_dicts()
            assert not after.result_cache
            if db.prefetcher is not None:
                assert "stale://uri" not in db.prefetcher._warmed
            assert db.planner_stats()["sharding"]["shards"] == 4
        finally:
            db.close()
