"""Tests for physical plan evaluation over an in-memory database."""

import numpy as np
import pytest

from repro.engine import algebra
from repro.engine.catalog import ForeignKey, TableKind
from repro.engine.database import Database
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    Comparison,
    col,
    lit,
)
from repro.engine.physical import (
    ExecutionContext,
    drop_hidden_columns,
    execute_plan,
)
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, STRING


@pytest.fixture()
def db():
    database = Database(buffer_pool_bytes=1 << 20)
    database.catalog.create_table(
        "users",
        Schema.of(("id", INT64), ("name", STRING), ("dept", INT64)),
        TableKind.METADATA,
        primary_key=("id",),
    )
    database.catalog.create_table(
        "depts",
        Schema.of(("dept_id", INT64), ("dept_name", STRING)),
        TableKind.METADATA,
        primary_key=("dept_id",),
    )
    database.insert(
        "users",
        Table.from_rows(
            database.catalog.table("users").schema,
            [(1, "ann", 10), (2, "bob", 20), (3, "cat", 10), (4, "dan", 30)],
        ),
    )
    database.insert(
        "depts",
        Table.from_rows(
            database.catalog.table("depts").schema,
            [(10, "eng"), (20, "ops")],
        ),
    )
    yield database
    database.close()


def scan(db, name):
    return algebra.Scan(name, db.qualified_schema(name))


class TestScanSelectProject:
    def test_scan_emits_qualified_and_rowid(self, db):
        result = execute_plan(scan(db, "users"), ExecutionContext(db))
        assert "users.name" in result.schema.names
        assert "users.#rowid" in result.schema.names
        assert result.column("users.#rowid").to_list() == [0, 1, 2, 3]

    def test_select(self, db):
        plan = algebra.Select(
            scan(db, "users"), Comparison("=", col("users.dept"), lit(10))
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.column("users.name").to_list() == ["ann", "cat"]

    def test_project_expression(self, db):
        plan = algebra.Project(
            scan(db, "users"),
            [("double_dept", Arithmetic("*", col("users.dept"), lit(2)))],
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.column("double_dept").to_list() == [20, 40, 20, 60]

    def test_drop_hidden_columns(self, db):
        result = execute_plan(scan(db, "users"), ExecutionContext(db))
        cleaned = drop_hidden_columns(result)
        assert all("#" not in n for n in cleaned.schema.names)


class TestJoin:
    def test_equi_join(self, db):
        plan = algebra.Join(
            scan(db, "users"),
            scan(db, "depts"),
            Comparison("=", col("users.dept"), col("depts.dept_id")),
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.num_rows == 3  # dan's dept 30 dangles
        names = sorted(result.column("users.name").to_list())
        assert names == ["ann", "bob", "cat"]

    def test_join_with_residual(self, db):
        condition = BooleanOp(
            "AND",
            [
                Comparison("=", col("users.dept"), col("depts.dept_id")),
                Comparison("=", col("depts.dept_name"), lit("eng")),
            ],
        )
        plan = algebra.Join(scan(db, "users"), scan(db, "depts"), condition)
        result = execute_plan(plan, ExecutionContext(db))
        assert sorted(result.column("users.name").to_list()) == ["ann", "cat"]

    def test_cross_product(self, db):
        plan = algebra.Join(scan(db, "users"), scan(db, "depts"), None)
        result = execute_plan(plan, ExecutionContext(db))
        assert result.num_rows == 8

    def test_join_stats_counted(self, db):
        ctx = ExecutionContext(db)
        plan = algebra.Join(
            scan(db, "users"),
            scan(db, "depts"),
            Comparison("=", col("users.dept"), col("depts.dept_id")),
        )
        execute_plan(plan, ctx)
        assert ctx.stats.joins_executed == 1
        assert ctx.stats.rows_joined == 3


class TestJoinIndexPath:
    @pytest.fixture()
    def indexed_db(self):
        database = Database(buffer_pool_bytes=1 << 20)
        database.catalog.create_table(
            "pk",
            Schema.of(("k", INT64), ("label", STRING)),
            TableKind.METADATA,
            primary_key=("k",),
        )
        database.catalog.create_table(
            "fk",
            Schema.of(("k", INT64), ("v", INT64)),
            TableKind.ACTUAL,
            foreign_keys=[ForeignKey(("k",), "pk", ("k",))],
        )
        database.insert(
            "pk",
            Table.from_rows(
                database.catalog.table("pk").schema,
                [(1, "one"), (2, "two"), (3, "three")],
            ),
        )
        database.insert(
            "fk",
            Table.from_rows(
                database.catalog.table("fk").schema,
                [(1, 100), (3, 300), (3, 301), (9, 900)],
            ),
        )
        database.build_foreign_key_indexes()
        yield database
        database.close()

    def test_join_uses_index(self, indexed_db):
        ctx = ExecutionContext(indexed_db)
        plan = algebra.Join(
            scan(indexed_db, "fk"),
            scan(indexed_db, "pk"),
            Comparison("=", col("fk.k"), col("pk.k")),
        )
        result = execute_plan(plan, ctx)
        assert ctx.stats.join_index_hits == 1
        assert result.num_rows == 3  # 9 dangles

    def test_index_result_matches_hash_join(self, indexed_db):
        plan = algebra.Join(
            scan(indexed_db, "fk"),
            scan(indexed_db, "pk"),
            Comparison("=", col("fk.k"), col("pk.k")),
        )
        via_index = execute_plan(plan, ExecutionContext(indexed_db))
        indexed_db.join_indexes.clear()
        via_hash = execute_plan(plan, ExecutionContext(indexed_db))
        assert sorted(map(str, via_index.to_dicts())) == sorted(
            map(str, via_hash.to_dicts())
        )

    def test_index_skipped_on_filtered_pk_duplicates(self, indexed_db):
        # Duplicate the pk side rows via a self cross-join: the index path
        # must bow out and the hash join produce the expanded result.
        pk_twice = algebra.Union(
            [scan(indexed_db, "pk"), scan(indexed_db, "pk")]
        )
        plan = algebra.Join(
            scan(indexed_db, "fk"),
            pk_twice,
            Comparison("=", col("fk.k"), col("pk.k")),
        )
        ctx = ExecutionContext(indexed_db)
        result = execute_plan(plan, ctx)
        assert ctx.stats.join_index_hits == 0
        assert result.num_rows == 6


class TestAggregate:
    def test_scalar_aggregates(self, db):
        plan = algebra.Aggregate(
            scan(db, "users"),
            [],
            [
                algebra.AggregateSpec("COUNT", None, "n"),
                algebra.AggregateSpec("SUM", col("users.dept"), "total"),
                algebra.AggregateSpec("AVG", col("users.dept"), "mean"),
                algebra.AggregateSpec("MIN", col("users.dept"), "lo"),
                algebra.AggregateSpec("MAX", col("users.dept"), "hi"),
            ],
        )
        result = execute_plan(plan, ExecutionContext(db))
        row = result.to_dicts()[0]
        assert row == {"n": 4, "total": 70, "mean": 17.5, "lo": 10, "hi": 30}

    def test_grouped_aggregates(self, db):
        plan = algebra.Aggregate(
            scan(db, "users"),
            ["users.dept"],
            [algebra.AggregateSpec("COUNT", None, "n")],
        )
        result = execute_plan(plan, ExecutionContext(db))
        by_dept = {
            r["users.dept"]: r["n"] for r in result.to_dicts()
        }
        assert by_dept == {10: 2, 20: 1, 30: 1}

    def test_std_matches_numpy(self, db):
        plan = algebra.Aggregate(
            scan(db, "users"),
            [],
            [algebra.AggregateSpec("STD", col("users.dept"), "sd")],
        )
        result = execute_plan(plan, ExecutionContext(db))
        expected = float(np.std([10, 20, 10, 30]))
        assert result.to_dicts()[0]["sd"] == pytest.approx(expected)

    def test_empty_input_scalar(self, db):
        empty = algebra.Select(
            scan(db, "users"), Comparison("=", col("users.dept"), lit(999))
        )
        plan = algebra.Aggregate(
            empty,
            [],
            [
                algebra.AggregateSpec("COUNT", None, "n"),
                algebra.AggregateSpec("AVG", col("users.dept"), "mean"),
            ],
        )
        result = execute_plan(plan, ExecutionContext(db))
        row = result.to_dicts()[0]
        assert row["n"] == 0
        assert np.isnan(row["mean"])

    def test_empty_input_grouped(self, db):
        empty = algebra.Select(
            scan(db, "users"), Comparison("=", col("users.dept"), lit(999))
        )
        plan = algebra.Aggregate(
            empty, ["users.dept"], [algebra.AggregateSpec("COUNT", None, "n")]
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.num_rows == 0


class TestOtherOperators:
    def test_union(self, db):
        plan = algebra.Union([scan(db, "users"), scan(db, "users")])
        result = execute_plan(plan, ExecutionContext(db))
        assert result.num_rows == 8

    def test_sort_asc_desc(self, db):
        plan = algebra.Sort(
            scan(db, "users"),
            [algebra.SortKey("users.dept", True), algebra.SortKey("users.id", False)],
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.column("users.id").to_list() == [3, 1, 2, 4]

    def test_sort_strings(self, db):
        plan = algebra.Sort(
            scan(db, "users"), [algebra.SortKey("users.name", False)]
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert result.column("users.name").to_list() == [
            "dan",
            "cat",
            "bob",
            "ann",
        ]

    def test_limit(self, db):
        plan = algebra.Limit(scan(db, "users"), 2)
        assert execute_plan(plan, ExecutionContext(db)).num_rows == 2

    def test_limit_beyond_rows(self, db):
        plan = algebra.Limit(scan(db, "users"), 100)
        assert execute_plan(plan, ExecutionContext(db)).num_rows == 4

    def test_distinct(self, db):
        plan = algebra.Distinct(
            algebra.Project(scan(db, "users"), [("d", col("users.dept"))])
        )
        result = execute_plan(plan, ExecutionContext(db))
        assert sorted(result.column("d").to_list()) == [10, 20, 30]

    def test_result_scan(self, db):
        ctx = ExecutionContext(db)
        ctx.stage_results["snap"] = execute_plan(scan(db, "depts"), ctx)
        plan = algebra.ResultScan("snap", db.qualified_schema("depts"))
        assert execute_plan(plan, ctx).num_rows == 2

    def test_result_scan_missing_tag(self, db):
        from repro.engine.errors import ExecutionError

        plan = algebra.ResultScan("nope", db.qualified_schema("depts"))
        with pytest.raises(ExecutionError):
            execute_plan(plan, ExecutionContext(db))
