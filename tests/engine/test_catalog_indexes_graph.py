"""Tests for the catalog, index structures, query graph, and MAL layer."""

import pytest

from repro.engine import algebra
from repro.engine.catalog import Catalog, ForeignKey, TableKind
from repro.engine.database import Database
from repro.engine.errors import (
    CatalogError,
    ExecutionError,
    PlanError,
)
from repro.engine.expressions import BooleanOp, Comparison, col, lit
from repro.engine.indexes import HashIndex, JoinIndex, ZoneMap
from repro.engine.join_graph import build_query_graph
from repro.engine.mal import (
    CallRuntimeOptimizer,
    EvalPlan,
    MalProgram,
    ReturnValue,
)
from repro.engine.physical import ExecutionContext
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, STRING


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table(
            "t", Schema.of(("x", INT64)), TableKind.METADATA
        )
        assert catalog.has_table("t")
        assert catalog.table("t").kind is TableKind.METADATA

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        with pytest.raises(CatalogError):
            catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)

    def test_view_table_name_collision(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        with pytest.raises(CatalogError):
            catalog.create_view("t", lambda: None)

    def test_kind_classification(self):
        catalog = Catalog()
        catalog.create_table("g", Schema.of(("x", INT64)), TableKind.METADATA)
        catalog.create_table("d", Schema.of(("x", INT64)), TableKind.DERIVED)
        catalog.create_table("a", Schema.of(("x", INT64)), TableKind.ACTUAL)
        assert catalog.metadata_table_names() == {"g", "d"}
        assert catalog.actual_table_names() == {"a"}

    def test_pk_column_must_exist(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.create_table(
                "t",
                Schema.of(("x", INT64)),
                TableKind.METADATA,
                primary_key=("nope",),
            )

    def test_fk_arity_checked(self):
        with pytest.raises(CatalogError):
            ForeignKey(("a", "b"), "t", ("c",))

    def test_append_schema_checked(self):
        catalog = Catalog()
        entry = catalog.create_table(
            "t", Schema.of(("x", INT64)), TableKind.ACTUAL
        )
        with pytest.raises(CatalogError):
            entry.append(Table.from_rows(Schema.of(("y", INT64)), [(1,)]))

    def test_describe_mentions_tables(self):
        catalog = Catalog()
        catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        assert "t" in catalog.describe()


class TestHashIndex:
    def test_build_and_lookup(self):
        table = Table.from_rows(
            Schema.of(("k", INT64), ("v", STRING)), [(1, "a"), (2, "b")]
        )
        index = HashIndex("t", ["k"])
        index.build(table)
        assert index.lookup((1,)) == [0]
        assert index.lookup((9,)) == []
        assert index.is_unique()

    def test_duplicates_detected(self):
        table = Table.from_rows(
            Schema.of(("k", INT64)), [(1,), (1,)]
        )
        index = HashIndex("t", ["k"])
        index.build(table)
        assert not index.is_unique()

    def test_extend_offsets_rows(self):
        schema = Schema.of(("k", INT64))
        index = HashIndex("t", ["k"])
        index.build(Table.from_rows(schema, [(1,)]))
        index.extend(Table.from_rows(schema, [(2,)]), base_row=1)
        assert index.lookup((2,)) == [1]

    def test_composite_key(self):
        table = Table.from_rows(
            Schema.of(("a", INT64), ("b", STRING)), [(1, "x"), (1, "y")]
        )
        index = HashIndex("t", ["a", "b"])
        index.build(table)
        assert index.contains((1, "y"))
        assert not index.contains((1, "z"))

    def test_nbytes_positive(self):
        index = HashIndex("t", ["k"])
        index.build(Table.from_rows(Schema.of(("k", INT64)), [(1,)]))
        assert index.nbytes > 0


class TestJoinIndex:
    def test_positions(self):
        pk = Table.from_rows(Schema.of(("k", INT64)), [(10,), (20,), (30,)])
        fk = Table.from_rows(
            Schema.of(("k", INT64)), [(30,), (10,), (99,)]
        )
        index = JoinIndex("fk", ["k"], "pk", ["k"])
        index.build(fk, pk)
        assert index.positions.tolist() == [2, 0, -1]
        assert index.matched_mask().tolist() == [True, True, False]

    def test_gather(self):
        pk = Table.from_rows(
            Schema.of(("k", INT64), ("name", STRING)), [(1, "a"), (2, "b")]
        )
        fk = Table.from_rows(Schema.of(("k", INT64)), [(2,), (1,), (2,)])
        index = JoinIndex("fk", ["k"], "pk", ["k"])
        index.build(fk, pk)
        gathered = index.gather(pk)
        assert gathered.column("name").to_list() == ["b", "a", "b"]

    def test_empty_sides(self):
        index = JoinIndex("fk", ["k"], "pk", ["k"])
        index.build(
            Table.empty(Schema.of(("k", INT64))),
            Table.empty(Schema.of(("k", INT64))),
        )
        assert index.num_rows == 0


class TestZoneMap:
    def test_prune_range(self):
        zones = ZoneMap("ts")
        zones.add_zone("z1", 0, 10)
        zones.add_zone("z2", 20, 30)
        zones.add_zone("z3", 5, 25)
        assert zones.prune_range(12, 18) == ["z3"]
        assert zones.prune_range(None, 4) == ["z1"]
        assert zones.prune_range(26, None) == ["z2"]

    def test_prune_point(self):
        zones = ZoneMap("ts")
        zones.add_zone("z1", 0, 10)
        assert zones.prune_point(10) == ["z1"]
        assert zones.prune_point(11) == []

    def test_invalid_zone(self):
        zones = ZoneMap("ts")
        with pytest.raises(CatalogError):
            zones.add_zone("bad", 5, 1)


class TestQueryGraph:
    def _schemas(self):
        return {
            name: Schema.of((f"{name}.k", INT64), (f"{name}.v", INT64))
            for name in ("A", "B", "C")
        }

    def test_vertices_edges_and_local_predicates(self):
        schemas = self._schemas()
        plan = algebra.Select(
            algebra.Join(
                algebra.Scan("A", schemas["A"]),
                algebra.Scan("B", schemas["B"]),
                Comparison("=", col("A.k"), col("B.k")),
            ),
            Comparison(">", col("A.v"), lit(5)),
        )
        graph = build_query_graph(plan)
        assert set(graph.vertices) == {"A", "B"}
        assert len(graph.edges) == 1
        assert len(graph.vertex("A").predicates) == 1

    def test_hyper_predicate_goes_to_hyper_list(self):
        schemas = self._schemas()
        three_way = algebra.Join(
            algebra.Join(
                algebra.Scan("A", schemas["A"]),
                algebra.Scan("B", schemas["B"]),
                None,
            ),
            algebra.Scan("C", schemas["C"]),
            None,
        )
        three_table_pred = Comparison(
            "=",
            col("A.k"),
            BooleanOp("NOT", [Comparison("=", col("B.k"), col("C.k"))]),
        )
        plan = algebra.Select(three_way, three_table_pred)
        graph = build_query_graph(plan)
        assert len(graph.edges) == 0
        assert len(graph.hyper_predicates) == 1

    def test_rejects_non_join_block(self):
        schemas = self._schemas()
        agg = algebra.Aggregate(
            algebra.Scan("A", schemas["A"]),
            [],
            [algebra.AggregateSpec("COUNT", None, "n")],
        )
        with pytest.raises(PlanError):
            build_query_graph(agg)

    def test_connected_components(self):
        schemas = self._schemas()
        plan = algebra.Join(
            algebra.Join(
                algebra.Scan("A", schemas["A"]),
                algebra.Scan("B", schemas["B"]),
                Comparison("=", col("A.k"), col("B.k")),
            ),
            algebra.Scan("C", schemas["C"]),
            None,
        )
        graph = build_query_graph(plan)
        components = graph.connected_components()
        assert {"A", "B"} in components
        assert {"C"} in components


class TestMalProgram:
    def _db(self):
        database = Database(buffer_pool_bytes=1 << 20)
        database.catalog.create_table(
            "t", Schema.of(("x", INT64)), TableKind.METADATA
        )
        database.insert(
            "t",
            Table.from_rows(database.catalog.table("t").schema, [(1,), (2,)]),
        )
        return database

    def test_eval_and_return(self):
        db = self._db()
        program = MalProgram(
            [
                EvalPlan("r", algebra.Scan("t", db.qualified_schema("t"))),
                ReturnValue("r"),
            ]
        )
        result = program.run(ExecutionContext(db))
        assert result.num_rows == 2

    def test_missing_return_raises(self):
        db = self._db()
        program = MalProgram(
            [EvalPlan("r", algebra.Scan("t", db.qualified_schema("t")))]
        )
        with pytest.raises(ExecutionError):
            program.run(ExecutionContext(db))

    def test_runtime_rewrite_replaces_tail(self):
        db = self._db()
        scan_plan = algebra.Scan("t", db.qualified_schema("t"))

        def rewrite(ctx, program, next_pc):
            limited = algebra.Limit(scan_plan, 1)
            program.replace_from(
                next_pc, [EvalPlan("out", limited), ReturnValue("out")]
            )

        program = MalProgram(
            [
                EvalPlan("stage1", scan_plan),
                CallRuntimeOptimizer(rewrite, "stage1"),
                EvalPlan("out", scan_plan),
                ReturnValue("out"),
            ]
        )
        result = program.run(ExecutionContext(db))
        assert result.num_rows == 1

    def test_cannot_rewrite_executed_code(self):
        db = self._db()
        scan_plan = algebra.Scan("t", db.qualified_schema("t"))

        def bad_rewrite(ctx, program, next_pc):
            program.replace_from(0, [])

        program = MalProgram(
            [
                EvalPlan("stage1", scan_plan),
                CallRuntimeOptimizer(bad_rewrite, "stage1"),
                ReturnValue("stage1"),
            ]
        )
        with pytest.raises(ExecutionError):
            program.run(ExecutionContext(db))

    def test_listing_contains_all_instructions(self):
        db = self._db()
        program = MalProgram(
            [
                EvalPlan("r", algebra.Scan("t", db.qualified_schema("t"))),
                ReturnValue("r"),
            ]
        )
        listing = program.listing()
        assert "[00]" in listing and "return r" in listing

    def test_runtime_optimizer_requires_bound_input(self):
        db = self._db()
        program = MalProgram(
            [
                CallRuntimeOptimizer(lambda *a: None, "unbound"),
                ReturnValue("unbound"),
            ]
        )
        with pytest.raises(ExecutionError):
            program.run(ExecutionContext(db))


class TestDatabase:
    def test_paged_roundtrip_through_scan(self):
        db = Database(buffer_pool_bytes=1 << 20)
        db.catalog.create_table(
            "t", Schema.of(("x", INT64)), TableKind.ACTUAL
        )
        db.insert(
            "t",
            Table.from_rows(
                db.catalog.table("t").schema, [(i,) for i in range(100)]
            ),
        )
        bytes_written = db.page_out("t")
        assert bytes_written > 0
        scanned = db.scan_base_table("t")
        assert scanned.num_rows == 100
        assert db.table_num_rows("t") == 100
        db.close()

    def test_insert_into_paged_table(self):
        db = Database(buffer_pool_bytes=1 << 20)
        db.catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        schema = db.catalog.table("t").schema
        db.insert("t", Table.from_rows(schema, [(1,)]))
        db.page_out("t")
        db.insert("t", Table.from_rows(schema, [(2,)]))
        assert db.table_num_rows("t") == 2
        db.close()

    def test_drop_caches(self):
        db = Database(buffer_pool_bytes=1 << 20)
        db.catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        db.insert(
            "t", Table.from_rows(db.catalog.table("t").schema, [(1,)])
        )
        db.page_out("t")
        db.scan_base_table("t")
        assert db.buffer_pool.num_pages > 0
        db.drop_caches()
        assert db.buffer_pool.num_pages == 0
        db.close()

    def test_chunk_loader_required(self):
        db = Database(buffer_pool_bytes=1 << 20)
        db.catalog.create_table("t", Schema.of(("x", INT64)), TableKind.ACTUAL)
        with pytest.raises(ExecutionError):
            db.load_chunk("file:///nope", "t")
        db.close()

    def test_metadata_nbytes_counts_red_only(self):
        db = Database(buffer_pool_bytes=1 << 20)
        db.catalog.create_table("g", Schema.of(("x", INT64)), TableKind.METADATA)
        db.catalog.create_table("a", Schema.of(("x", INT64)), TableKind.ACTUAL)
        schema = db.catalog.table("g").schema
        db.insert("g", Table.from_rows(schema, [(1,)] * 10))
        db.insert("a", Table.from_rows(schema, [(1,)] * 1000))
        assert db.metadata_nbytes() < db.database_nbytes()
        db.close()
