"""Thread-safety tests for the Recycler: single-flight + exact accounting."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine.errors import StorageError
from repro.engine.recycler import Recycler
from repro.engine.table import Schema, Table
from repro.engine.types import INT64


def make_chunk(rows: int) -> Table:
    schema = Schema.of(("v", INT64))
    return Table.from_rows(schema, [(i,) for i in range(rows)])


class CountingLoader:
    """A chunk loader that counts invocations per URI, thread-safely."""

    def __init__(self, delay_s: float = 0.0, rows: int = 16) -> None:
        self.calls: dict[str, int] = {}
        self.delay_s = delay_s
        self.rows = rows
        self._lock = threading.Lock()

    def __call__(self, uri: str) -> tuple[Table, float]:
        with self._lock:
            self.calls[uri] = self.calls.get(uri, 0) + 1
        if self.delay_s:
            time.sleep(self.delay_s)
        return make_chunk(self.rows), 0.01

    def total_calls(self) -> int:
        return sum(self.calls.values())


class TestSingleFlight:
    def test_same_uri_loaded_exactly_once(self):
        cache = Recycler(budget_bytes=1 << 20)
        loader = CountingLoader(delay_s=0.02)
        threads = 8

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(
                pool.map(
                    lambda _: cache.get_or_load("chunk-1", loader),
                    range(threads),
                )
            )

        assert loader.calls == {"chunk-1": 1}
        outcomes = sorted(outcome for _, outcome, _ in results)
        assert outcomes.count("loaded") == 1
        # Everyone else either coalesced on the in-flight load or hit the
        # cache just after it completed.
        assert all(o in ("loaded", "coalesced", "hit") for o in outcomes)
        tables = [table for table, _, _ in results]
        assert all(t.num_rows == tables[0].num_rows for t in tables)
        # Exactly one of hit/miss/coalesced is counted per call.
        stats = cache.stats
        assert stats.misses == 1
        assert stats.hits + stats.coalesced == threads - 1

    def test_distinct_uris_load_independently(self):
        cache = Recycler(budget_bytes=1 << 20)
        loader = CountingLoader(delay_s=0.005)
        uris = [f"chunk-{i}" for i in range(6)]

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(lambda uri: cache.get_or_load(uri, loader), uris))

        assert loader.calls == {uri: 1 for uri in uris}
        assert cache.cached_uris() == set(uris)

    def test_contended_workload_loads_each_uri_once(self):
        cache = Recycler(budget_bytes=1 << 20)
        loader = CountingLoader(delay_s=0.002)
        uris = [f"chunk-{i}" for i in range(4)]
        work = uris * 8  # 8 workers race over every chunk

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda uri: cache.get_or_load(uri, loader), work))

        assert loader.total_calls() == len(uris)
        assert cache.stats.insertions == len(uris)

    def test_second_wave_hits_cache(self):
        cache = Recycler(budget_bytes=1 << 20)
        loader = CountingLoader()
        cache.get_or_load("chunk-1", loader)
        table, outcome, cost = cache.get_or_load("chunk-1", loader)
        assert outcome == "hit"
        assert cost == 0.0
        assert loader.total_calls() == 1

    def test_loader_failure_propagates_to_all_waiters(self):
        cache = Recycler(budget_bytes=1 << 20)
        started = threading.Barrier(4)

        def failing(uri: str) -> tuple[Table, float]:
            time.sleep(0.02)
            raise StorageError(f"cannot fetch {uri}")

        def attempt(_):
            started.wait()
            cache.get_or_load("bad-chunk", failing)

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(attempt, i) for i in range(4)]
            for future in futures:
                with pytest.raises(StorageError):
                    future.result()
        assert "bad-chunk" not in cache

    def test_failed_load_can_be_retried(self):
        cache = Recycler(budget_bytes=1 << 20)
        attempts = []

        def flaky(uri: str) -> tuple[Table, float]:
            attempts.append(uri)
            if len(attempts) == 1:
                raise StorageError("transient")
            return make_chunk(4), 0.01

        with pytest.raises(StorageError):
            cache.get_or_load("chunk-1", flaky)
        table, outcome, _ = cache.get_or_load("chunk-1", flaky)
        assert outcome == "loaded"
        assert len(attempts) == 2


class TestExactAccountingUnderContention:
    @pytest.mark.parametrize("policy", ["lru", "cost_aware"])
    def test_bytes_cached_matches_entries_after_eviction_storm(self, policy):
        chunk = make_chunk(64)
        # Budget fits only a handful of chunks: concurrent puts must evict.
        cache = Recycler(budget_bytes=chunk.nbytes * 3, policy=policy)
        workers = 8
        puts_per_worker = 50

        def hammer(worker: int) -> None:
            for i in range(puts_per_worker):
                cache.put(f"w{worker}-c{i % 10}", make_chunk(64), 0.01)
                cache.get(f"w{worker}-c{i % 10}")

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))

        entries = cache.entries()
        assert cache.bytes_cached == sum(e.nbytes for e in entries)
        assert cache.bytes_cached <= cache.budget_bytes
        assert len(entries) == len({e.uri for e in entries})

    @pytest.mark.parametrize("policy", ["lru", "cost_aware"])
    def test_insertions_minus_evictions_equals_population(self, policy):
        chunk = make_chunk(32)
        cache = Recycler(budget_bytes=chunk.nbytes * 4, policy=policy)

        def hammer(worker: int) -> None:
            for i in range(40):
                cache.put(f"w{worker}-c{i}", make_chunk(32), 0.01)

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(hammer, range(6)))

        stats = cache.stats
        assert stats.insertions - stats.evictions == len(cache)
        assert stats.bytes_evicted == chunk.nbytes * stats.evictions

    def test_hit_miss_counts_exact_under_contention(self):
        cache = Recycler(budget_bytes=1 << 20)
        cache.put("hot", make_chunk(8), 0.01)
        readers, reads = 8, 200

        def read(_):
            for _ in range(reads):
                cache.get("hot")
                cache.get("cold")

        with ThreadPoolExecutor(max_workers=readers) as pool:
            list(pool.map(read, range(readers)))

        assert cache.stats.hits == readers * reads
        assert cache.stats.misses == readers * reads
