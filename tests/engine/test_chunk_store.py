"""ChunkStore: round-trip fidelity, atomic commits, crash safety."""

import json
import os

import numpy as np
import pytest

from repro.engine.chunk_store import MANIFEST_NAME, ChunkStore
from repro.engine.column import Column
from repro.engine.table import Schema, Table
from repro.engine.types import INT64, STRING, TIMESTAMP
from repro.mseed import steim


def make_table(values: np.ndarray, times: np.ndarray) -> Table:
    schema = Schema.of(("D.sample_time", TIMESTAMP), ("D.sample_value", INT64))
    return Table(
        schema,
        [
            Column(TIMESTAMP, np.asarray(times, dtype=np.int64)),
            Column(INT64, np.asarray(values, dtype=np.int64)),
        ],
    )


class TestRoundTrip:
    def test_steim_encode_decode_store_mmap_property(self, tmp_path):
        """Property test over random signals: the full pipeline is lossless.

        steim encode → decode → store.put → store.get (mmap) must preserve
        every sample for smooth, noisy, constant and extreme-valued
        signals.
        """
        store = ChunkStore(str(tmp_path / "chunks"))
        rng = np.random.default_rng(20150413)
        for trial in range(12):
            n = int(rng.integers(1, 2000))
            kind = trial % 4
            if kind == 0:  # smooth random walk (the seismic-like case)
                samples = np.cumsum(rng.integers(-4, 5, n)).astype(np.int64)
            elif kind == 1:  # white noise with large amplitude
                samples = rng.integers(-(2**31), 2**31, n).astype(np.int64)
            elif kind == 2:  # constant
                samples = np.full(n, int(rng.integers(-100, 100)), np.int64)
            else:  # alternating extremes (worst-case deltas)
                samples = np.where(
                    np.arange(n) % 2 == 0, 2**30, -(2**30)
                ).astype(np.int64)

            decoded = steim.decode(steim.encode(samples))
            assert np.array_equal(decoded, samples)

            times = np.arange(n, dtype=np.int64) * 25
            uri = f"trial-{trial}"
            store.put(uri, make_table(decoded, times), loading_cost=0.01)
            loaded = store.get(uri)
            assert loaded is not None
            table, cost = loaded
            assert cost == pytest.approx(0.01)
            assert np.array_equal(
                table.column("D.sample_value").values, samples
            )
            assert np.array_equal(table.column("D.sample_time").values, times)
            # Fixed-width columns come back zero-copy mmap-backed.
            assert all(c.is_mapped for c in table.columns)
            assert table.resident_nbytes == 0
            assert table.nbytes > 0

    def test_string_columns_round_trip_without_mmap(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        schema = Schema.of(("F.station", STRING), ("F.file_id", INT64))
        table = Table(
            schema,
            [
                Column.from_values(STRING, ["ISK", "FIAM", "ARCI"]),
                Column(INT64, np.arange(3, dtype=np.int64)),
            ],
        )
        store.put("strings", table, 0.5)
        loaded, _ = store.get("strings")
        assert loaded.column("F.station").to_list() == ["ISK", "FIAM", "ARCI"]
        assert not loaded.column("F.station").is_mapped
        assert loaded.column("F.file_id").is_mapped

    def test_overwrite_replaces_entry(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        first = make_table(np.arange(4), np.arange(4))
        second = make_table(np.arange(8), np.arange(8))
        store.put("u", first, 0.1)
        store.put("u", second, 0.2)
        table, cost = store.get("u")
        assert table.num_rows == 8
        assert cost == pytest.approx(0.2)
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("persist-me", make_table(np.arange(16), np.arange(16)), 0.3)
        del store

        reopened = ChunkStore(root)
        assert "persist-me" in reopened
        assert reopened.uris() == {"persist-me"}
        table, cost = reopened.get("persist-me")
        assert table.num_rows == 16
        assert cost == pytest.approx(0.3)

    def test_cross_object_visibility(self, tmp_path):
        """A commit by one store object is visible to another (process model)."""
        root = str(tmp_path)
        reader = ChunkStore(root)  # scans an empty dir
        writer = ChunkStore(root)
        writer.put("late", make_table(np.arange(5), np.arange(5)), 0.1)
        # The reader's index predates the commit: the disk probe finds it.
        assert "late" in reader
        loaded = reader.get("late")
        assert loaded is not None and loaded[0].num_rows == 5


class TestCrashSafety:
    def entry_dir(self, store: ChunkStore, uri: str) -> str:
        return store._entry_dir(uri)

    def test_truncated_manifest_is_ignored(self, tmp_path):
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("ok", make_table(np.arange(4), np.arange(4)), 0.1)
        store.put("torn", make_table(np.arange(4), np.arange(4)), 0.1)
        manifest = os.path.join(self.entry_dir(store, "torn"), MANIFEST_NAME)
        blob = open(manifest, "rb").read()
        with open(manifest, "wb") as handle:
            handle.write(blob[: len(blob) // 2])  # kill mid-write

        reopened = ChunkStore(root)
        assert reopened.uris() == {"ok"}
        assert reopened.get("torn") is None
        assert reopened.stats.invalid_entries >= 1
        # The store stays fully usable: the torn entry can be rewritten.
        reopened.put("torn", make_table(np.arange(6), np.arange(6)), 0.2)
        assert reopened.get("torn")[0].num_rows == 6

    def test_missing_manifest_is_ignored(self, tmp_path):
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("gone", make_table(np.arange(4), np.arange(4)), 0.1)
        os.unlink(os.path.join(self.entry_dir(store, "gone"), MANIFEST_NAME))
        reopened = ChunkStore(root)
        assert reopened.get("gone") is None

    def test_interrupted_staging_dir_is_ignored(self, tmp_path):
        """A kill mid-spill leaves only a .tmp-* dir — never a torn entry."""
        root = str(tmp_path)
        store = ChunkStore(root)
        staging = os.path.join(root, ".tmp-9999-1")
        os.makedirs(staging)
        np.save(os.path.join(staging, "c0.npy"), np.arange(4))
        # No manifest, no rename: the crash point before commit.
        reopened = ChunkStore(root)
        assert len(reopened) == 0
        assert reopened.get("anything") is None
        assert store.get("anything") is None

    def test_missing_payload_file_is_invalid(self, tmp_path):
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("hollow", make_table(np.arange(4), np.arange(4)), 0.1)
        os.unlink(os.path.join(self.entry_dir(store, "hollow"), "c1.npy"))
        reopened = ChunkStore(root)
        assert reopened.get("hollow") is None
        assert reopened.stats.invalid_entries >= 1

    def test_manifest_uri_mismatch_is_ignored(self, tmp_path):
        """Digest collisions or copied dirs never serve the wrong chunk."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("real", make_table(np.arange(4), np.arange(4)), 0.1)
        manifest_path = os.path.join(
            self.entry_dir(store, "real"), MANIFEST_NAME
        )
        manifest = json.load(open(manifest_path))
        manifest["uri"] = "someone-else"
        json.dump(manifest, open(manifest_path, "w"))
        assert ChunkStore(root).get("real") is None


def dead_pid() -> int:
    """A PID guaranteed to belong to no running process."""
    import multiprocessing

    process = multiprocessing.get_context("spawn").Process(target=int)
    process.start()
    process.join()
    return process.pid


class TestDurability:
    def entry_dir(self, store: ChunkStore, uri: str) -> str:
        return store._entry_dir(uri)

    def test_torn_payload_is_a_miss_and_quarantined(self, tmp_path):
        """A committed entry with a truncated column file never serves."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("torn", make_table(np.arange(256), np.arange(256)), 0.1)
        payload = os.path.join(self.entry_dir(store, "torn"), "c0.npy")
        with open(payload, "r+b") as handle:
            handle.truncate(os.path.getsize(payload) // 2)

        assert store.get("torn") is None  # miss, not a crash
        assert store.stats.invalid_entries >= 1
        # Quarantined: the entry dir is gone, a rewrite is not shadowed.
        assert not os.path.isdir(self.entry_dir(store, "torn"))
        store.put("torn", make_table(np.arange(8), np.arange(8)), 0.2)
        assert store.get("torn")[0].num_rows == 8

    def test_zero_length_payload_is_a_miss(self, tmp_path):
        """The power-loss signature: committed manifest, empty data file."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("zero", make_table(np.arange(64), np.arange(64)), 0.1)
        payload = os.path.join(self.entry_dir(store, "zero"), "c1.npy")
        with open(payload, "wb"):
            pass  # truncate to zero bytes
        assert store.get("zero") is None
        assert store.stats.invalid_entries >= 1

    def test_transient_io_error_does_not_quarantine(self, tmp_path, monkeypatch):
        """EMFILE-style failures are a miss, never a destroyed entry."""
        store = ChunkStore(str(tmp_path))
        store.put("fine", make_table(np.arange(16), np.arange(16)), 0.1)

        def exhausted(*args, **kwargs):
            raise OSError(24, "Too many open files")

        monkeypatch.setattr(np, "load", exhausted)
        assert store.get("fine") is None
        monkeypatch.undo()
        # The entry survived on disk and serves normally afterwards.
        assert os.path.isdir(store._entry_dir("fine"))
        assert store.get("fine")[0].num_rows == 16

    def test_quarantined_entry_is_reaped_at_next_open(self, tmp_path):
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("torn", make_table(np.arange(16), np.arange(16)), 0.1)
        payload = os.path.join(self.entry_dir(store, "torn"), "c0.npy")
        with open(payload, "wb"):
            pass
        assert store.get("torn") is None

        reopened = ChunkStore(root)
        assert reopened.uris() == set()
        assert reopened.stats.swept_dirs >= 1
        assert not any(
            name.endswith(".quarantine") for name in os.listdir(root)
        )


class TestOpenSweep:
    def entry_dir(self, store: ChunkStore, uri: str) -> str:
        return store._entry_dir(uri)

    def test_planted_old_dir_is_restored_when_entry_lost(self, tmp_path):
        """Crash between the rename-aside and the commit rename: the .old
        directory is the only committed state left — reopening restores it
        instead of leaving the URI with no entry at all."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("u", make_table(np.arange(32), np.arange(32)), 0.4)
        final = self.entry_dir(store, "u")
        os.rename(final, final + ".old")  # the mid-replace crash state

        reopened = ChunkStore(root)
        assert reopened.stats.restored_entries == 1
        assert reopened.uris() == {"u"}
        table, cost = reopened.get("u")
        assert table.num_rows == 32
        assert cost == pytest.approx(0.4)

    def test_writer_unique_old_dir_is_restored(self, tmp_path):
        """Replaces park the old entry under a writer-unique .old-* name
        (concurrent replacers never delete each other's safety copy); the
        sweep restores those exactly like plain .old dirs."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("u", make_table(np.arange(6), np.arange(6)), 0.2)
        final = self.entry_dir(store, "u")
        os.rename(final, final + ".old-12345-7")

        reopened = ChunkStore(root)
        assert reopened.stats.restored_entries == 1
        assert reopened.get("u")[0].num_rows == 6

    def test_planted_old_dir_is_swept_when_entry_survived(self, tmp_path):
        import shutil

        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("u", make_table(np.arange(8), np.arange(8)), 0.1)
        final = self.entry_dir(store, "u")
        shutil.copytree(final, final + ".old")  # replace completed

        reopened = ChunkStore(root)
        assert reopened.stats.restored_entries == 0
        assert reopened.stats.swept_dirs == 1
        assert not os.path.isdir(final + ".old")
        assert reopened.get("u")[0].num_rows == 8

    def test_dead_process_staging_is_swept(self, tmp_path):
        """Kill after the payload fsyncs but before the commit rename: the
        fully-written staging dir must be garbage-collected, never served."""
        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("u", make_table(np.arange(4), np.arange(4)), 0.1)
        committed = self.entry_dir(store, "u")
        staging = os.path.join(root, f".tmp-{dead_pid()}-1")
        import shutil

        shutil.copytree(committed, staging)  # crash point: pre-rename

        reopened = ChunkStore(root)
        assert reopened.stats.swept_dirs == 1
        assert not os.path.isdir(staging)
        assert reopened.uris() == {"u"}

    def test_live_process_staging_is_left_alone(self, tmp_path):
        root = str(tmp_path)
        ChunkStore(root)
        staging = os.path.join(root, f".tmp-{os.getpid()}-77")
        os.makedirs(staging)
        reopened = ChunkStore(root)
        assert os.path.isdir(staging)  # its writer may still commit it
        assert len(reopened) == 0

    def test_full_mid_replace_crash_recovers_old_version(self, tmp_path):
        """Both leftovers at once (the planted crash of the issue): the
        new version's staging dir and the displaced old entry.  Recovery
        keeps the old committed version and discards the orphan."""
        import shutil

        root = str(tmp_path)
        store = ChunkStore(root)
        store.put("u", make_table(np.arange(10), np.arange(10)), 0.1)
        final = self.entry_dir(store, "u")
        staging = os.path.join(root, f".tmp-{dead_pid()}-3")
        shutil.copytree(final, staging)  # v2 staged, never committed
        os.rename(final, final + ".old")  # v1 moved aside, then crash

        reopened = ChunkStore(root)
        assert reopened.uris() == {"u"}
        assert reopened.get("u")[0].num_rows == 10
        assert not os.path.isdir(staging)
        assert not os.path.isdir(final + ".old")


class TestMaintenance:
    def test_delete_and_clear(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        for i in range(3):
            store.put(f"u{i}", make_table(np.arange(4), np.arange(4)), 0.1)
        store.delete("u1")
        assert store.uris() == {"u0", "u2"}
        assert store.get("u1") is None
        store.clear()
        assert len(store) == 0
        assert store.nbytes == 0

    def test_stats_and_tier_snapshot(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        store.put("u", make_table(np.arange(64), np.arange(64)), 0.1)
        store.get("u")
        store.get("absent")
        snapshot = store.tier_stats()
        assert snapshot["entries"] == 1
        assert snapshot["spills"] == 1
        assert snapshot["rehydrates"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["bytes_stored"] > 0
