"""Tests for paged column storage and the buffer pool."""

import numpy as np
import pytest

from repro.engine.errors import StorageError
from repro.engine.storage import BufferPool, PageId, PagedColumnStore
from repro.engine.table import Schema, Table
from repro.engine.types import FLOAT64, INT64, STRING


@pytest.fixture()
def pool():
    return BufferPool(budget_bytes=1 << 16)


@pytest.fixture()
def store(tmp_path, pool):
    return PagedColumnStore(str(tmp_path / "pages"), pool, page_rows=16)


@pytest.fixture()
def sample_table():
    schema = Schema.of(("id", INT64), ("label", STRING), ("v", FLOAT64))
    rows = [(i, f"row{i}", i * 0.5) for i in range(100)]
    return Table.from_rows(schema, rows)


class TestRoundtrip:
    def test_store_and_read_back(self, store, sample_table):
        store.store_table("t", sample_table)
        loaded = store.read_table("t")
        assert loaded == sample_table

    def test_read_column_subset(self, store, sample_table):
        store.store_table("t", sample_table)
        loaded = store.read_table("t", columns=["v"])
        assert loaded.schema.names == ("v",)
        assert loaded.num_rows == 100

    def test_num_rows(self, store, sample_table):
        store.store_table("t", sample_table)
        assert store.num_rows("t") == 100

    def test_unknown_table_raises(self, store):
        with pytest.raises(StorageError):
            store.read_table("missing")

    def test_restore_after_overwrite(self, store, sample_table):
        store.store_table("t", sample_table)
        smaller = sample_table.slice(0, 10)
        store.store_table("t", smaller)
        assert store.read_table("t").num_rows == 10

    def test_drop_table(self, store, sample_table):
        store.store_table("t", sample_table)
        store.drop_table("t")
        assert not store.has_table("t")

    def test_table_nbytes_positive(self, store, sample_table):
        store.store_table("t", sample_table)
        assert store.table_nbytes("t") > 0

    def test_empty_table(self, store):
        schema = Schema.of(("x", INT64))
        store.store_table("e", Table.empty(schema))
        assert store.read_table("e").num_rows == 0


class TestBufferPool:
    def test_hit_after_load(self, store, sample_table, pool):
        store.store_table("t", sample_table)
        store.read_table("t")
        misses_first = pool.stats.misses
        store.read_table("t")
        assert pool.stats.misses == misses_first  # all hits second time
        assert pool.stats.hits > 0

    def test_budget_enforced(self, tmp_path):
        pool = BufferPool(budget_bytes=1024)
        store = PagedColumnStore(str(tmp_path / "p"), pool, page_rows=16)
        schema = Schema.of(("x", INT64))
        table = Table.from_rows(schema, [(i,) for i in range(1000)])
        store.store_table("big", table)
        store.read_table("big")
        assert pool.bytes_cached <= 1024
        assert pool.stats.evictions > 0

    def test_thrashing_when_over_budget(self, tmp_path):
        pool = BufferPool(budget_bytes=256)
        store = PagedColumnStore(str(tmp_path / "p"), pool, page_rows=8)
        schema = Schema.of(("x", INT64))
        table = Table.from_rows(schema, [(i,) for i in range(64)])
        store.store_table("big", table)
        store.read_table("big")
        first_misses = pool.stats.misses
        store.read_table("big")
        # Working set exceeds the budget: the second scan misses again.
        assert pool.stats.misses > first_misses

    def test_clear(self, store, sample_table, pool):
        store.store_table("t", sample_table)
        store.read_table("t")
        pool.clear()
        assert pool.bytes_cached == 0
        assert pool.num_pages == 0

    def test_invalidate_table(self, store, sample_table, pool):
        store.store_table("t", sample_table)
        store.read_table("t")
        pool.invalidate_table("t")
        assert pool.num_pages == 0

    def test_hit_ratio(self, pool):
        page = np.arange(4)
        pool.get(PageId("a", "c", 0), lambda: page)
        pool.get(PageId("a", "c", 0), lambda: page)
        assert pool.stats.hit_ratio == pytest.approx(0.5)

    def test_zero_budget_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_bytes_read_counted(self, store, sample_table, pool):
        store.store_table("t", sample_table)
        store.read_table("t")
        assert pool.stats.bytes_read > 0


class TestStringPages:
    def test_unicode_roundtrip(self, store):
        schema = Schema.of(("s", STRING))
        table = Table.from_rows(schema, [("héllo",), ("wörld",), ("",)])
        store.store_table("u", table)
        assert store.read_table("u").column("s").to_list() == [
            "héllo",
            "wörld",
            "",
        ]

    def test_long_strings(self, store):
        schema = Schema.of(("s", STRING))
        table = Table.from_rows(schema, [("x" * 10_000,)])
        store.store_table("l", table)
        assert store.read_table("l").column("s")[0] == "x" * 10_000
