"""Two-tier Recycler: spill-on-evict, re-hydrate, exact byte accounting."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine.chunk_store import ChunkStore
from repro.engine.column import Column
from repro.engine.recycler import Recycler
from repro.engine.table import Schema, Table
from repro.engine.types import INT64


def make_chunk(rows: int, fill: int = 0) -> Table:
    schema = Schema.of(("v", INT64))
    return Table(
        schema, [Column(INT64, np.full(rows, fill, dtype=np.int64))]
    )


class FailingLoader:
    """A loader that must never be called (tier-2 hit expected)."""

    def __call__(self, uri: str):
        raise AssertionError(f"loader called for {uri!r}")


class CountingLoader:
    def __init__(self, rows: int = 128) -> None:
        self.calls: dict[str, int] = {}
        self.rows = rows
        self._lock = threading.Lock()

    def __call__(self, uri: str):
        with self._lock:
            self.calls[uri] = self.calls.get(uri, 0) + 1
        return make_chunk(self.rows), 0.01


class TestSpillOnEvict:
    def test_evicted_chunk_lands_in_store(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        chunk = make_chunk(128)  # 1 KiB payload
        cache = Recycler(budget_bytes=2 * chunk.nbytes, store=store)
        cache.put("a", make_chunk(128, 1), 0.1)
        cache.put("b", make_chunk(128, 2), 0.2)
        cache.put("c", make_chunk(128, 3), 0.3)  # evicts "a" (LRU)
        assert "a" not in cache
        assert "a" in store
        assert cache.stats.evictions == 1
        assert cache.stats.spills == 1
        assert cache.stats.bytes_spilled > 0

    def test_rehydrate_instead_of_reload(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        chunk_bytes = make_chunk(128).nbytes
        cache = Recycler(budget_bytes=2 * chunk_bytes, store=store)
        cache.put("a", make_chunk(128, 1), 0.1)
        cache.put("b", make_chunk(128, 2), 0.2)
        cache.put("c", make_chunk(128, 3), 0.3)  # "a" spills

        table, outcome, cost = cache.get_or_load("a", FailingLoader())
        assert outcome == "rehydrated"
        assert cost == pytest.approx(0.1)
        assert table.column("v").values[0] == 1
        assert table.resident_nbytes == 0  # mmap-backed
        assert cache.stats.rehydrates == 1
        # Re-admitted to the memory tier, resident-free.
        assert "a" in cache

    def test_spill_preserves_loading_cost_for_cost_aware_policy(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        chunk_bytes = make_chunk(128).nbytes
        cache = Recycler(
            budget_bytes=1 * chunk_bytes, policy="cost_aware", store=store
        )
        cache.put("cheap", make_chunk(128, 1), 0.001)
        cache.put("dear", make_chunk(128, 2), 5.0)  # evicts+spills "cheap"
        _, outcome, cost = cache.get_or_load("cheap", FailingLoader())
        assert outcome == "rehydrated"
        assert cost == pytest.approx(0.001)

    def test_spill_disabled(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        chunk_bytes = make_chunk(128).nbytes
        cache = Recycler(
            budget_bytes=chunk_bytes, store=store, spill_on_evict=False
        )
        cache.put("a", make_chunk(128), 0.1)
        cache.put("b", make_chunk(128), 0.1)
        assert "a" not in store
        loader = CountingLoader()
        _, outcome, _ = cache.get_or_load("a", loader)
        assert outcome == "loaded"
        assert loader.calls == {"a": 1}

    def test_flush_to_store(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        cache.put("x", make_chunk(16), 0.1)
        cache.put("y", make_chunk(16), 0.1)
        assert cache.flush_to_store() == 2
        assert store.uris() == {"x", "y"}
        # Idempotent: already-stored entries are skipped.
        assert cache.flush_to_store() == 0

    def test_invalidate_during_spill_never_resurrects(self, tmp_path):
        """A chunk invalidated mid-spill must not reappear in the store."""

        class GatedStore(ChunkStore):
            def __init__(self, root):
                super().__init__(root)
                self.entered = threading.Event()
                self.gate = threading.Event()

            def put(self, uri, table, loading_cost, table_name=None):
                if uri == "victim":
                    self.entered.set()
                    assert self.gate.wait(timeout=5)
                return super().put(uri, table, loading_cost, table_name)

        store = GatedStore(str(tmp_path))
        chunk_bytes = make_chunk(64).nbytes
        cache = Recycler(budget_bytes=chunk_bytes, store=store)
        cache.put("victim", make_chunk(64, 1), 0.1)

        # Evicting "victim" spills it; the spill blocks inside store.put.
        evictor = threading.Thread(
            target=cache.put, args=("other", make_chunk(64, 2), 0.1)
        )
        evictor.start()
        assert store.entered.wait(timeout=5)
        cache.invalidate("victim")  # races the in-flight spill
        store.gate.set()
        evictor.join(timeout=5)

        assert "victim" not in store
        assert cache.get_or_load("victim", CountingLoader())[1] == "loaded"

    def test_invalidate_drops_both_tiers(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        cache.put("gone", make_chunk(16), 0.1)
        cache.flush_to_store()
        cache.invalidate("gone")
        assert "gone" not in cache
        assert "gone" not in store

    def test_clear_spilled_flag(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        cache.put("kept", make_chunk(16), 0.1)
        cache.flush_to_store()
        cache.clear(spilled=False)  # the "process restart" shape
        assert len(cache) == 0
        assert "kept" in store
        cache.clear()  # the fully-cold protocol
        assert "kept" not in store


class TestByteAccounting:
    def test_mapped_entries_do_not_consume_budget(self, tmp_path):
        """Re-hydrated chunks must not double-count against the budget."""
        store = ChunkStore(str(tmp_path))
        chunk_bytes = make_chunk(512).nbytes
        cache = Recycler(budget_bytes=2 * chunk_bytes, store=store)
        # Fill the store with far more than the memory budget.
        for i in range(8):
            store.put(f"u{i}", make_chunk(512, i), 0.1)
        for i in range(8):
            _, outcome, _ = cache.get_or_load(f"u{i}", FailingLoader())
            assert outcome == "rehydrated"
        # All 8 logical chunks are resident-free: none was evicted.
        assert len(cache) == 8
        assert cache.bytes_cached == 0
        assert cache.bytes_mapped == 8 * chunk_bytes
        assert cache.stats.evictions == 0

    def test_heap_entries_still_respect_budget(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        chunk_bytes = make_chunk(512).nbytes
        cache = Recycler(budget_bytes=2 * chunk_bytes, store=store)
        for i in range(4):
            cache.put(f"h{i}", make_chunk(512, i), 0.1)
        assert cache.bytes_cached <= cache.budget_bytes
        assert cache.stats.evictions == 2

    def test_tier_stats_shape(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        cache.put("s", make_chunk(16), 0.1)
        stats = cache.tier_stats()
        assert stats["memory"]["entries"] == 1
        assert stats["memory"]["bytes_resident"] == make_chunk(16).nbytes
        assert stats["memory"]["bytes_mapped"] == 0
        assert stats["disk"]["enabled"] == 1
        storeless = Recycler(budget_bytes=1 << 20)
        assert storeless.tier_stats()["disk"] == {"enabled": 0}


class TestSingleFlightAcrossTiers:
    def test_exactly_once_decode_then_exactly_zero_after_spill(self, tmp_path):
        """The decode happens once; after a spill, never again."""
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        loader = CountingLoader()
        threads = 8

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(
                pool.map(
                    lambda _: cache.get_or_load("hot", loader), range(threads)
                )
            )
        assert loader.calls == {"hot": 1}
        outcomes = [o for _, o, _ in results]
        assert outcomes.count("loaded") == 1
        assert all(o in ("loaded", "coalesced", "hit") for o in outcomes)

        # Simulate memory pressure: entry leaves RAM but is on disk.
        cache.flush_to_store()
        cache.clear(spilled=False)

        with ThreadPoolExecutor(max_workers=threads) as pool:
            results = list(
                pool.map(
                    lambda _: cache.get_or_load("hot", loader), range(threads)
                )
            )
        # Still exactly one decode ever; the disk tier absorbed the storm.
        assert loader.calls == {"hot": 1}
        outcomes = [o for _, o, _ in results]
        assert outcomes.count("rehydrated") == 1
        assert all(
            o in ("rehydrated", "coalesced", "hit") for o in outcomes
        )

    def test_stats_exact_under_contention_with_tiers(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        cache = Recycler(budget_bytes=1 << 20, store=store)
        loader = CountingLoader()
        uris = [f"u{i}" for i in range(6)]
        for uri in uris[:3]:  # pre-spill half the URIs
            store.put(uri, make_chunk(32), 0.1)
        calls = 64

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(
                pool.map(
                    lambda i: cache.get_or_load(uris[i % len(uris)], loader),
                    range(calls),
                )
            )
        stats = cache.stats
        accounted = (
            stats.hits + stats.misses + stats.rehydrates + stats.coalesced
        )
        assert accounted == calls
        assert stats.misses == 3  # the unspilled URIs, decoded once each
        assert stats.rehydrates == 3
        assert loader.calls == {uri: 1 for uri in uris[3:]}
