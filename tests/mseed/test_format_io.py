"""Tests for the xseed format, writer, reader, repository and CSV round trip."""

import os

import numpy as np
import pytest

from repro.engine.errors import FormatError
from repro.mseed import csvio, reader, writer
from repro.mseed.format import (
    SegmentHeader,
    VolumeHeader,
    pack_volume_header,
    unpack_volume_header,
)
from repro.mseed.repository import FileRepository
from repro.mseed.writer import SegmentData


@pytest.fixture()
def volume_path(tmp_path):
    rng = np.random.default_rng(3)
    samples_a = np.cumsum(rng.integers(-40, 40, 300)).astype(np.int64)
    samples_b = np.cumsum(rng.integers(-40, 40, 200)).astype(np.int64)
    path = str(tmp_path / "v.xseed")
    writer.write_volume(
        path,
        "IV",
        "FIAM",
        "",
        "HHZ",
        [
            SegmentData(0, 1_000_000, 100.0, samples_a),
            SegmentData(1, 5_000_000, 100.0, samples_b),
        ],
    )
    return path, samples_a, samples_b


class TestHeaderPacking:
    def test_roundtrip(self):
        header = VolumeHeader("IV", "FIAM", "00", "HHZ", "D", 10, 0, 3)
        assert unpack_volume_header(pack_volume_header(header)) == header

    def test_bad_magic(self):
        blob = b"NOPE" + pack_volume_header(
            VolumeHeader("IV", "S", "", "C", "D", 10, 0, 0)
        )[4:]
        with pytest.raises(FormatError):
            unpack_volume_header(blob)

    def test_truncated(self):
        with pytest.raises(FormatError):
            unpack_volume_header(b"XSD1")

    def test_segment_end_time(self):
        header = SegmentHeader(0, 1000, 100.0, 200, 0)
        assert header.end_time_ms == 1000 + 2000

    def test_segment_end_time_empty(self):
        assert SegmentHeader(0, 1000, 100.0, 0, 0).end_time_ms == 1000


class TestWriterReader:
    def test_metadata_only(self, volume_path):
        path, a, b = volume_path
        meta = reader.read_metadata(path)
        assert meta.volume.station == "FIAM"
        assert meta.volume.channel == "HHZ"
        assert meta.volume.n_segments == 2
        assert meta.total_samples == len(a) + len(b)
        assert [s.segment_no for s in meta.segments] == [0, 1]

    def test_full_decode(self, volume_path):
        path, a, b = volume_path
        segments = reader.read_samples(path)
        assert np.array_equal(segments[0].values, a)
        assert np.array_equal(segments[1].values, b)

    def test_sample_times_spacing(self, volume_path):
        path, a, _ = volume_path
        segments = reader.read_samples(path)
        times = segments[0].times_ms
        assert times[0] == 1_000_000
        assert times[1] - times[0] == 10  # 100 Hz -> 10ms

    def test_read_single_segment(self, volume_path):
        path, _, b = volume_path
        segment = reader.read_segment(path, 1)
        assert np.array_equal(segment.values, b)

    def test_read_missing_segment(self, volume_path):
        path, _, _ = volume_path
        with pytest.raises(FormatError):
            reader.read_segment(path, 99)

    def test_in_situ_range_skips_payloads(self, volume_path):
        path, a, b = volume_path
        selected = reader.read_samples_in_range(path, 4_000_000, 9_000_000)
        assert len(selected) == 1
        assert selected[0].header.segment_no == 1

    def test_in_situ_open_bounds(self, volume_path):
        path, _, _ = volume_path
        assert len(reader.read_samples_in_range(path, None, None)) == 2

    def test_in_situ_no_overlap(self, volume_path):
        path, _, _ = volume_path
        assert reader.read_samples_in_range(path, 99_000_000, None) == []

    def test_duplicate_segment_numbers_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            writer.write_volume(
                str(tmp_path / "bad.xseed"),
                "IV",
                "X",
                "",
                "C",
                [
                    SegmentData(0, 0, 1.0, np.asarray([1])),
                    SegmentData(0, 10, 1.0, np.asarray([2])),
                ],
            )

    def test_header_scan_cheaper_than_decode(self, tmp_path):
        # The structural property the whole paper relies on: metadata reads
        # touch far fewer bytes than full decodes.
        rng = np.random.default_rng(0)
        samples = np.cumsum(rng.integers(-50, 50, 200_000)).astype(np.int64)
        path = str(tmp_path / "big.xseed")
        total = writer.write_volume(
            path, "IV", "X", "", "C", [SegmentData(0, 0, 100.0, samples)]
        )
        meta = reader.read_metadata(path)
        header_bytes = (
            os.path.getsize(path) - meta.segments[0].payload_bytes
        )
        assert header_bytes < total / 100


class TestRepository:
    def test_listing_sorted_and_sized(self, tmp_path):
        for name in ("b", "a", "c"):
            writer.write_volume(
                str(tmp_path / f"{name}.xseed"),
                "IV",
                name.upper(),
                "",
                "C",
                [SegmentData(0, 0, 1.0, np.asarray([1, 2, 3]))],
            )
        (tmp_path / "ignore.txt").write_text("not a chunk")
        repo = FileRepository(str(tmp_path))
        chunks = repo.list_chunks()
        assert [os.path.basename(c.uri) for c in chunks] == [
            "a.xseed",
            "b.xseed",
            "c.xseed",
        ]
        assert repo.num_chunks == 3
        assert repo.total_bytes() == sum(c.size_bytes for c in chunks)

    def test_empty_repository(self, tmp_path):
        repo = FileRepository(str(tmp_path / "nothing"))
        assert not repo.exists()
        assert repo.list_chunks() == []


class TestCsvIo:
    def test_roundtrip(self, volume_path, tmp_path):
        path, a, b = volume_path
        csv_path = str(tmp_path / "out.csv")
        written = csvio.volume_to_csv(path, csv_path, file_id=7)
        assert written == os.path.getsize(csv_path)
        file_ids, segment_nos, times, values = csvio.parse_csv(csv_path)
        assert (file_ids == 7).all()
        assert len(values) == len(a) + len(b)
        assert np.array_equal(values[: len(a)], a)
        assert sorted(set(segment_nos.tolist())) == [0, 1]

    def test_csv_larger_than_xseed(self, volume_path, tmp_path):
        # Table III: textual serialization blows sizes up dramatically.
        path, _, _ = volume_path
        csv_path = str(tmp_path / "out.csv")
        csv_bytes = csvio.volume_to_csv(path, csv_path, file_id=1)
        assert csv_bytes > 3 * os.path.getsize(path)

    def test_bad_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("wrong,header\n")
        with pytest.raises(FormatError):
            csvio.parse_csv(str(bad))

    def test_bad_row_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text(csvio.CSV_HEADER + "\n1,2,3\n")
        with pytest.raises(FormatError):
            csvio.parse_csv(str(bad))
