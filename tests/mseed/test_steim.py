"""Unit and property tests for the Steim-like codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import FormatError
from repro.mseed import steim, steim_kernels


class TestRoundtrip:
    def test_empty(self):
        assert len(steim.decode(steim.encode(np.asarray([], dtype=np.int64)))) == 0

    def test_single_value(self):
        out = steim.decode(steim.encode(np.asarray([42])))
        assert out.tolist() == [42]

    def test_single_negative(self):
        out = steim.decode(steim.encode(np.asarray([-7])))
        assert out.tolist() == [-7]

    def test_constant_signal(self):
        x = np.full(1000, 123, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_ramp(self):
        x = np.arange(-500, 500, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_random_walk(self):
        rng = np.random.default_rng(7)
        x = np.cumsum(rng.integers(-100, 100, 5000)).astype(np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_exactly_one_frame(self):
        x = np.arange(steim.FRAME_SAMPLES + 1, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_frame_boundary_plus_one(self):
        x = np.arange(steim.FRAME_SAMPLES + 2, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_large_magnitudes(self):
        x = np.asarray([2**40, -(2**40), 2**40], dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)


class TestCompression:
    def test_smooth_signal_compresses_well(self):
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.integers(-30, 30, 20000)).astype(np.int64)
        payload = steim.encode(x)
        assert len(payload) < 0.25 * x.nbytes

    def test_constant_compresses_extremely(self):
        x = np.zeros(10000, dtype=np.int64)
        payload = steim.encode(x)
        assert len(payload) < 200

    def test_noise_still_roundtrips(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-(2**31), 2**31, 3000).astype(np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(FormatError):
            steim.decode(b"\x01\x02")

    def test_truncated_payload(self):
        x = np.arange(100, dtype=np.int64)
        payload = steim.encode(x)
        with pytest.raises(FormatError):
            steim.decode(payload[:-5])

    def test_2d_input_rejected(self):
        with pytest.raises(FormatError):
            steim.encode(np.zeros((2, 2), dtype=np.int64))

    def test_trailing_garbage_rejected(self):
        # Bytes after the last frame used to be silently ignored; a
        # truncated concatenation or corrupt length field must not
        # decode as if nothing happened.
        x = np.arange(300, dtype=np.int64)
        payload = steim.encode(x)
        with pytest.raises(FormatError, match="trailing"):
            steim.decode(payload + b"\x00\x00\x00")

    def test_trailing_garbage_rejected_empty_signal(self):
        payload = steim.encode(np.asarray([], dtype=np.int64))
        with pytest.raises(FormatError, match="trailing"):
            steim.decode(payload + b"\xff")


def _signals():
    rng = np.random.default_rng(11)
    return {
        "empty": np.asarray([], dtype=np.int64),
        "single": np.asarray([-9], dtype=np.int64),
        "constant": np.full(2000, 5, dtype=np.int64),
        "walk": np.cumsum(rng.integers(-100, 100, 7000)).astype(np.int64),
        "noise": rng.integers(-(2**31), 2**31, 3000).astype(np.int64),
        "wide": np.asarray([2**50, -(2**50), 0, 1], dtype=np.int64),
        "frame_edge": np.arange(steim.FRAME_SAMPLES + 2, dtype=np.int64),
    }


class TestKernels:
    def test_available_always_has_loop_and_numpy(self):
        names = steim_kernels.available_kernels()
        assert "loop" in names and "numpy" in names

    @pytest.mark.parametrize("kernel", ["loop", "numpy"])
    def test_kernel_parity(self, kernel):
        previous = steim_kernels.set_kernel(kernel)
        try:
            for name, x in _signals().items():
                out = steim.decode(steim.encode(x))
                assert np.array_equal(out, x), f"{kernel} mismatch on {name}"
        finally:
            steim_kernels.set_kernel(previous)

    @pytest.mark.skipif(
        not steim_kernels.NUMBA_AVAILABLE, reason="numba not installed"
    )
    def test_numba_kernel_parity(self):
        previous = steim_kernels.set_kernel("numba")
        try:
            for name, x in _signals().items():
                out = steim.decode(steim.encode(x))
                assert np.array_equal(out, x), f"numba mismatch on {name}"
        finally:
            steim_kernels.set_kernel(previous)

    def test_set_kernel_returns_previous_and_rejects_unknown(self):
        current = steim_kernels.active_kernel()
        assert steim_kernels.set_kernel(current) == current
        with pytest.raises(FormatError):
            steim_kernels.set_kernel("cuda")
        assert steim_kernels.active_kernel() == current

    def test_env_override_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEIM_KERNEL", "loop")
        assert steim_kernels._default_kernel() == "loop"

    def test_decode_many_matches_per_call(self):
        signals = list(_signals().values())
        payloads = [steim.encode(x) for x in signals]
        batched = steim.decode_many(payloads)
        assert len(batched) == len(signals)
        for out, x in zip(batched, signals):
            assert np.array_equal(out, x)

    def test_decode_many_empty_batch(self):
        assert steim.decode_many([]) == []


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.integers(min_value=-(2**50), max_value=2**50),
        max_size=1500,
    )
)
def test_roundtrip_property(values):
    x = np.asarray(values, dtype=np.int64)
    assert np.array_equal(steim.decode(steim.encode(x)), x)
