"""Unit and property tests for the Steim-like codec."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import FormatError
from repro.mseed import steim


class TestRoundtrip:
    def test_empty(self):
        assert len(steim.decode(steim.encode(np.asarray([], dtype=np.int64)))) == 0

    def test_single_value(self):
        out = steim.decode(steim.encode(np.asarray([42])))
        assert out.tolist() == [42]

    def test_single_negative(self):
        out = steim.decode(steim.encode(np.asarray([-7])))
        assert out.tolist() == [-7]

    def test_constant_signal(self):
        x = np.full(1000, 123, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_ramp(self):
        x = np.arange(-500, 500, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_random_walk(self):
        rng = np.random.default_rng(7)
        x = np.cumsum(rng.integers(-100, 100, 5000)).astype(np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_exactly_one_frame(self):
        x = np.arange(steim.FRAME_SAMPLES + 1, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_frame_boundary_plus_one(self):
        x = np.arange(steim.FRAME_SAMPLES + 2, dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)

    def test_large_magnitudes(self):
        x = np.asarray([2**40, -(2**40), 2**40], dtype=np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)


class TestCompression:
    def test_smooth_signal_compresses_well(self):
        rng = np.random.default_rng(0)
        x = np.cumsum(rng.integers(-30, 30, 20000)).astype(np.int64)
        payload = steim.encode(x)
        assert len(payload) < 0.25 * x.nbytes

    def test_constant_compresses_extremely(self):
        x = np.zeros(10000, dtype=np.int64)
        payload = steim.encode(x)
        assert len(payload) < 200

    def test_noise_still_roundtrips(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-(2**31), 2**31, 3000).astype(np.int64)
        assert np.array_equal(steim.decode(steim.encode(x)), x)


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(FormatError):
            steim.decode(b"\x01\x02")

    def test_truncated_payload(self):
        x = np.arange(100, dtype=np.int64)
        payload = steim.encode(x)
        with pytest.raises(FormatError):
            steim.decode(payload[:-5])

    def test_2d_input_rejected(self):
        with pytest.raises(FormatError):
            steim.encode(np.zeros((2, 2), dtype=np.int64))


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.integers(min_value=-(2**50), max_value=2**50),
        max_size=1500,
    )
)
def test_roundtrip_property(values):
    x = np.asarray(values, dtype=np.int64)
    assert np.array_equal(steim.decode(steim.encode(x)), x)
