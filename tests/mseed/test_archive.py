"""Tests for internally-chunked archives and URI-based chunk access."""

import os

import numpy as np
import pytest

from repro.engine.errors import FormatError
from repro.mseed import reader, writer
from repro.mseed.archive import (
    ArchiveRepository,
    open_chunk,
    pack_archive,
    split_uri,
)
from repro.mseed.writer import SegmentData


@pytest.fixture()
def chunk_files(tmp_path):
    rng = np.random.default_rng(5)
    paths = []
    for i in range(3):
        samples = np.cumsum(rng.integers(-30, 30, 400)).astype(np.int64)
        path = str(tmp_path / f"chunk{i}.xseed")
        writer.write_volume(
            path,
            "IV",
            f"ST{i}",
            "",
            "HHZ",
            [SegmentData(0, 1_000_000 * (i + 1), 50.0, samples)],
        )
        paths.append(path)
    return paths


@pytest.fixture()
def archive(tmp_path, chunk_files):
    archive_path = str(tmp_path / "bundle.xar")
    pack_archive(archive_path, chunk_files)
    return archive_path


class TestUriSplitting:
    def test_plain_path(self):
        assert split_uri("/a/b.xseed") == ("/a/b.xseed", None)

    def test_member(self):
        assert split_uri("/a/b.xar#c.xseed") == ("/a/b.xar", "c.xseed")


class TestPackAndList:
    def test_listing(self, archive):
        repo = ArchiveRepository(archive)
        chunks = repo.list_chunks()
        assert repo.num_chunks == 3
        assert all("#chunk" in c.uri for c in chunks)
        assert repo.total_bytes() == sum(c.size_bytes for c in chunks)

    def test_entry_sizes_match_files(self, archive, chunk_files):
        repo = ArchiveRepository(archive)
        sizes = sorted(c.size_bytes for c in repo.list_chunks())
        assert sizes == sorted(os.path.getsize(p) for p in chunk_files)

    def test_duplicate_names_rejected(self, tmp_path, chunk_files):
        with pytest.raises(FormatError):
            pack_archive(
                str(tmp_path / "dup.xar"), [chunk_files[0], chunk_files[0]]
            )

    def test_bad_magic(self, tmp_path):
        bogus = tmp_path / "not.xar"
        bogus.write_bytes(b"NOPE1234")
        with pytest.raises(FormatError):
            ArchiveRepository(str(bogus)).list_chunks()


class TestReadingThroughArchive:
    def test_metadata_matches_file(self, archive, chunk_files):
        repo = ArchiveRepository(archive)
        member_uri = sorted(repo.iter_uris())[0]
        via_archive = reader.read_metadata(member_uri)
        via_file = reader.read_metadata(chunk_files[0])
        assert via_archive == via_file

    def test_samples_match_file(self, archive, chunk_files):
        repo = ArchiveRepository(archive)
        for uri, path in zip(sorted(repo.iter_uris()), chunk_files):
            a = reader.read_samples(uri)
            b = reader.read_samples(path)
            assert len(a) == len(b)
            for seg_a, seg_b in zip(a, b):
                assert np.array_equal(seg_a.values, seg_b.values)

    def test_in_situ_through_archive(self, archive):
        repo = ArchiveRepository(archive)
        uri = sorted(repo.iter_uris())[1]
        meta = reader.read_metadata(uri)
        segment = meta.segments[0]
        selected = reader.read_samples_in_range(
            uri, segment.start_time_ms, segment.start_time_ms + 1000
        )
        assert len(selected) == 1

    def test_missing_member(self, archive):
        with pytest.raises(FormatError):
            open_chunk(f"{archive}#nope.xseed").read()


class TestEndToEndArchiveRegistration:
    def test_register_and_query(self, archive, chunk_files):
        from repro import SommelierDB

        with SommelierDB.create() as db:
            report = db.register_repository(ArchiveRepository(archive))
            assert report.num_files == 3
            result = db.query(
                "SELECT COUNT(D.sample_value) AS n FROM dataview "
                "WHERE F.station = 'ST1'"
            )
            assert result.table.to_dicts()[0]["n"] == 400
            assert result.stats.chunks_loaded == 1
