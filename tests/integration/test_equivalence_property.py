"""Property-based equivalence: lazy two-stage vs eager single-stage.

For randomly generated (station, time range, aggregate) queries, the lazy
database must return exactly what the eager database returns — the paper's
implicit correctness contract ("the illusion of a fully populated
database").
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.loading import prepare
from repro.data.ingv import EPOCH_2010_MS

HOUR_MS = 3600 * 1000
STATIONS = [("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN")]
AGGREGATES = ["COUNT(D.sample_value)", "SUM(D.sample_value)",
              "MIN(D.sample_value)", "MAX(D.sample_value)",
              "AVG(D.sample_value)"]


@pytest.fixture(scope="module")
def db_pair(tiny_repo):
    lazy, _ = prepare("lazy", tiny_repo[0])
    eager, _ = prepare("eager_index", tiny_repo[0])
    yield lazy, eager
    lazy.close()
    eager.close()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    station_index=st.integers(0, len(STATIONS) - 1),
    start_hour=st.integers(0, 47),
    duration_hours=st.integers(1, 24),
    aggregate=st.sampled_from(AGGREGATES),
)
def test_lazy_equals_eager_on_random_t4(
    db_pair, station_index, start_hour, duration_hours, aggregate
):
    lazy, eager = db_pair
    station, channel = STATIONS[station_index]
    start = EPOCH_2010_MS + start_hour * HOUR_MS
    end = start + duration_hours * HOUR_MS
    from repro.engine.types import format_timestamp

    sql = f"""
        SELECT {aggregate} AS agg FROM dataview
        WHERE F.station = '{station}' AND F.channel = '{channel}'
          AND D.sample_time >= '{format_timestamp(start)}'
          AND D.sample_time < '{format_timestamp(end)}'
    """
    lazy_value = lazy.query(sql).table.to_dicts()[0]["agg"]
    eager_value = eager.query(sql).table.to_dicts()[0]["agg"]
    if isinstance(lazy_value, float) and math.isnan(lazy_value):
        assert isinstance(eager_value, float) and math.isnan(eager_value)
    else:
        assert lazy_value == pytest.approx(eager_value)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    start_hour=st.integers(0, 40),
    duration_hours=st.integers(1, 8),
)
def test_lazy_equals_eager_on_random_t2(db_pair, start_hour, duration_hours):
    lazy, eager = db_pair
    from repro.engine.types import format_timestamp

    start = EPOCH_2010_MS + start_hour * HOUR_MS
    end = start + duration_hours * HOUR_MS
    sql = f"""
        SELECT H.window_start_ts AS window_start_ts,
               H.window_max_val AS window_max_val,
               H.window_mean_val AS window_mean_val
        FROM H
        WHERE H.window_station = 'FIAM'
          AND H.window_start_ts >= '{format_timestamp(start)}'
          AND H.window_start_ts < '{format_timestamp(end)}'
        ORDER BY window_start_ts
    """
    lazy_rows = lazy.query(sql).table.to_dicts()
    eager_rows = eager.query(sql).table.to_dicts()
    assert len(lazy_rows) == len(eager_rows)
    for a, b in zip(lazy_rows, eager_rows):
        assert a["window_start_ts"] == b["window_start_ts"]
        assert a["window_max_val"] == pytest.approx(b["window_max_val"])
        assert a["window_mean_val"] == pytest.approx(b["window_mean_val"])
