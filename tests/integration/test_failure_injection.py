"""Failure injection: corrupt chunks, vanished files, poisoned caches.

A lazily loading system meets its repository at query time, long after
registration — these tests pin down how failures surface.
"""

import os

import numpy as np
import pytest

from repro import SommelierDB
from repro.data.ingv import EPOCH_2010_MS
from repro.engine.errors import EngineError, FormatError
from repro.mseed import writer
from repro.mseed.repository import FileRepository
from repro.mseed.writer import SegmentData

MILLIS_PER_DAY = 24 * 3600 * 1000


@pytest.fixture()
def small_repo(tmp_path):
    rng = np.random.default_rng(11)
    root = tmp_path / "repo"
    for station in ("AAA", "BBB"):
        samples = np.cumsum(rng.integers(-20, 20, 500)).astype(np.int64)
        writer.write_volume(
            str(root / f"{station}.xseed"),
            "IV",
            station,
            "",
            "HHZ",
            [SegmentData(0, EPOCH_2010_MS, 50.0, samples)],
        )
    return FileRepository(str(root))


def query_for(station):
    return (
        f"SELECT COUNT(D.sample_value) AS n FROM dataview "
        f"WHERE F.station = '{station}'"
    )


class TestCorruptChunks:
    def test_truncated_payload_raises_format_error(self, small_repo):
        db = SommelierDB.create()
        db.register_repository(small_repo)
        victim = [u for u in small_repo.iter_uris() if "AAA" in u][0]
        size = os.path.getsize(victim)
        with open(victim, "rb+") as handle:
            handle.truncate(size - 20)
        with pytest.raises(FormatError):
            db.query(query_for("AAA"))
        db.close()

    def test_other_chunks_unaffected(self, small_repo):
        db = SommelierDB.create()
        db.register_repository(small_repo)
        victim = [u for u in small_repo.iter_uris() if "AAA" in u][0]
        with open(victim, "rb+") as handle:
            handle.seek(0)
            handle.write(b"GARBAGE!")
        # BBB's chunk is intact; queries touching only it still work.
        result = db.query(query_for("BBB"))
        assert result.table.to_dicts()[0]["n"] == 500
        db.close()

    def test_registration_rejects_corrupt_header(self, tmp_path, small_repo):
        bogus = tmp_path / "repo" / "fake.xseed"
        bogus.write_bytes(b"\x00" * 64)
        db = SommelierDB.create()
        with pytest.raises(FormatError):
            db.register_repository(FileRepository(str(tmp_path / "repo")))
        db.close()


class TestVanishedFiles:
    def test_file_deleted_after_registration(self, small_repo):
        db = SommelierDB.create()
        db.register_repository(small_repo)
        victim = [u for u in small_repo.iter_uris() if "AAA" in u][0]
        os.unlink(victim)
        with pytest.raises((EngineError, OSError)):
            db.query(query_for("AAA"))
        db.close()

    def test_cached_chunk_survives_file_deletion(self, small_repo):
        db = SommelierDB.create()
        db.register_repository(small_repo)
        sql = query_for("AAA")
        first = db.query(sql)
        assert first.stats.chunks_loaded == 1
        victim = [u for u in small_repo.iter_uris() if "AAA" in u][0]
        os.unlink(victim)
        # Recycler still holds the chunk: the query answers from cache.
        second = db.query(sql)
        assert second.table.to_dicts() == first.table.to_dicts()
        db.close()


class TestCachePoisoning:
    def test_recycler_eviction_mid_workload_is_safe(self, small_repo):
        db = SommelierDB.create(recycler_bytes=4096)  # holds ~nothing
        db.register_repository(small_repo)
        sql = query_for("AAA")
        a = db.query(sql).table.to_dicts()
        b = db.query(sql).table.to_dicts()
        assert a == b

    def test_cache_scan_degrades_to_chunk_access(self, small_repo):
        """A chunk evicted between planning and execution reloads inline."""
        from repro.engine import algebra
        from repro.engine.physical import ExecutionContext, execute_plan

        db = SommelierDB.create()
        db.register_repository(small_repo)
        uri = [u for u in small_repo.iter_uris() if "AAA" in u][0]
        # Claim the chunk is cached although it is not:
        plan = algebra.CacheScan(uri, "D", db.database.qualified_schema("D"))
        result = execute_plan(plan, ExecutionContext(db.database))
        assert result.num_rows == 500
        db.close()
