"""Concurrent serving: N threads over one SommelierDB match serial results."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.loading import prepare
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads.queries import QueryParams, t1_query, t2_query, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000

STATIONS = (("ISK", "BHE"), ("FIAM", "HHZ"), ("ARCI", "BHZ"), ("LATE", "BHN"))


def workload(two_days: tuple[int, int]) -> list[str]:
    """A mixed T1/T2/T4 workload across every station of the tiny repo."""
    start, end = two_days
    queries: list[str] = []
    for station, channel in STATIONS:
        params = QueryParams(
            station=station, channel=channel, start_ms=start, end_ms=end
        )
        queries.append(t1_query(params))
        queries.append(t4_query(params))
        queries.append(t2_query(params))
    return queries


@pytest.fixture()
def two_days():
    return EPOCH_2010_MS, EPOCH_2010_MS + 2 * MILLIS_PER_DAY


@pytest.fixture()
def parallel_db(tiny_repo):
    db, _ = prepare(
        "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=4)
    )
    yield db
    db.close()


def run_query(db, sql: str):
    return db.query(sql).table.to_dicts()


class TestConcurrentEquivalence:
    def test_threads_match_serial_results(self, parallel_db, two_days):
        queries = workload(two_days)
        expected = [run_query(parallel_db, sql) for sql in queries]
        parallel_db.drop_caches()

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [
                pool.submit(run_query, parallel_db, sql)
                for sql in queries * 2  # every query raced from two threads
            ]
            observed = [f.result() for f in futures]

        for i, _sql in enumerate(queries):
            assert observed[i] == expected[i]
            assert observed[len(queries) + i] == expected[i]

    def test_cold_racing_threads_on_same_query(self, parallel_db, two_days):
        sql = t4_query(
            QueryParams(
                station="ISK", channel="BHE",
                start_ms=two_days[0], end_ms=two_days[1],
            )
        )
        expected = run_query(parallel_db, sql)
        parallel_db.drop_caches()

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(
                pool.map(lambda _: run_query(parallel_db, sql), range(8))
            )
        assert all(result == expected for result in results)

    def test_parallel_stage_two_matches_serial(self, tiny_repo, two_days):
        sql = t4_query(
            QueryParams(
                station="ISK", channel="BHE",
                start_ms=two_days[0], end_ms=two_days[1],
            )
        )
        serial_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=1)
        )
        parallel_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=4)
        )
        try:
            serial = serial_db.query(sql)
            parallel = parallel_db.query(sql)
            assert serial.table.to_dicts() == parallel.table.to_dicts()
            assert parallel.stats.chunks_loaded == serial.stats.chunks_loaded
        finally:
            serial_db.close()
            parallel_db.close()

    def test_concurrent_derivation_no_duplicate_windows(
        self, parallel_db, two_days
    ):
        sql = t2_query(
            QueryParams(
                station="ISK", channel="BHE",
                start_ms=two_days[0], end_ms=two_days[1],
            )
        )
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(lambda _: run_query(parallel_db, sql), range(6))
            )
        assert all(result == results[0] for result in results)
        h = parallel_db.database.catalog.table("H").data
        keys = list(
            zip(
                h.column("window_station").values,
                h.column("window_channel").values,
                h.column("window_start_ts").values,
            )
        )
        assert len(keys) == len(set(keys)), "derivation double-materialized"


class TestSessions:
    def test_sessions_account_separately_and_sum_up(
        self, parallel_db, two_days
    ):
        queries = workload(two_days)
        pool = parallel_db.session_pool(size=4)
        shared_before = parallel_db.stats.queries_executed

        def client(sql: str) -> int:
            with pool.session() as session:
                session.query(sql)
                return session.stats.queries_executed

        with ThreadPoolExecutor(max_workers=4) as executor:
            per_session = list(executor.map(client, queries))

        # Pool sessions reset on release: each checkout sees only its own.
        assert all(count == 1 for count in per_session)
        assert (
            parallel_db.stats.queries_executed - shared_before == len(queries)
        )

    def test_session_exec_stats_accumulate(self, parallel_db, two_days):
        sql = t4_query(
            QueryParams(
                station="ISK", channel="BHE",
                start_ms=two_days[0], end_ms=two_days[1],
            )
        )
        with parallel_db.session() as session:
            session.query(sql)
            session.query(sql)
            assert session.stats.queries_executed == 2
            total_chunks = (
                session.exec_stats.chunks_loaded
                + session.exec_stats.chunks_from_cache
            )
            assert total_chunks > 0

    def test_closed_session_rejects_queries(self, parallel_db, two_days):
        from repro.engine.errors import ExecutionError

        session = parallel_db.session()
        session.close()
        with pytest.raises(ExecutionError):
            session.query("SELECT COUNT(*) AS n FROM F")

    def test_pool_blocks_then_times_out_when_exhausted(self, parallel_db):
        from repro.engine.errors import ExecutionError

        pool = parallel_db.session_pool(size=1)
        held = pool.acquire()
        with pytest.raises(ExecutionError):
            pool.acquire(timeout=0.05)
        pool.release(held)
        again = pool.acquire(timeout=0.05)
        assert again is held  # LIFO reuse of the freed session

    def test_release_to_closed_pool_closes_session(self, parallel_db):
        pool = parallel_db.session_pool(size=1)
        held = pool.acquire()
        pool.close()
        pool.release(held)
        assert held.closed

    def test_client_closed_session_is_discarded_not_requeued(
        self, parallel_db
    ):
        pool = parallel_db.session_pool(size=1)
        held = pool.acquire()
        held.close()
        pool.release(held)
        replacement = pool.acquire(timeout=0.05)
        assert replacement is not held
        assert not replacement.closed
