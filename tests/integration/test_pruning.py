"""Statistics-driven pruning end to end: results identical, fetches saved.

The correctness contract of the chunk planner is absolute: pruned
execution must be bit-identical to unpruned execution on every workload,
because a pruned chunk is one whose rows the predicate would have filtered
out anyway.  These tests exercise that across executors, the persistence
boundary, and the explain surface.
"""

import pytest

from repro.core.loading import prepare
from repro.core.sommelier import SommelierDB
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import QueryParams, t4_query

MILLIS_PER_DAY = 24 * 3600 * 1000


def value_query(threshold: int) -> str:
    return (
        "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean "
        "FROM dataview "
        f"WHERE D.sample_value >= {threshold}"
    )


def prime_sql() -> str:
    """A full-scan aggregate: loads every chunk, enriching all statistics."""
    return "SELECT COUNT(*) AS n FROM dataview"


def same_rows(a, b) -> bool:
    """Row-by-row equality that treats NaN == NaN (empty-input AVG)."""
    rows_a, rows_b = a.table.to_dicts(), b.table.to_dicts()
    if len(rows_a) != len(rows_b):
        return False
    for row_a, row_b in zip(rows_a, rows_b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if va != vb and not (va != va and vb != vb):
                return False
    return True


def chunk_value_maxima(db) -> list[float]:
    return sorted(
        entry.ranges["D.sample_value"][1]
        for entry in db.database.chunk_stats.snapshot().values()
        if entry.enriched
    )


class TestPrunedEqualsUnpruned:
    @pytest.mark.parametrize("io_threads", [1, 4])
    def test_value_threshold_results_identical(self, tiny_repo, io_threads):
        pruned_db, _ = prepare(
            "lazy", tiny_repo[0],
            options=TwoStageOptions(io_threads=io_threads, prune_chunks=True),
        )
        plain_db, _ = prepare(
            "lazy", tiny_repo[0],
            options=TwoStageOptions(io_threads=io_threads, prune_chunks=False),
        )
        try:
            pruned_db.query(prime_sql())
            plain_db.query(prime_sql())
            maxima = chunk_value_maxima(pruned_db)
            assert len(maxima) == 8
            # Thresholds at every interesting selectivity: all chunks, a
            # middle slice, one chunk, none.
            thresholds = [
                int(maxima[0]) - 1,
                int(maxima[len(maxima) // 2]),
                int(maxima[-1]),
                int(maxima[-1]) + 1,
            ]
            pruned_db.drop_caches()
            plain_db.drop_caches()
            for threshold in thresholds:
                a = pruned_db.query(value_query(threshold))
                b = plain_db.query(value_query(threshold))
                assert same_rows(a, b)
                assert b.stats.chunks_pruned == 0
                expected_pruned = sum(1 for m in maxima if m < threshold)
                assert a.stats.chunks_pruned == expected_pruned
        finally:
            pruned_db.close()
            plain_db.close()

    def test_pruned_chunks_are_never_fetched(self, tiny_repo):
        db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=1)
        )
        try:
            db.query(prime_sql())
            maxima = chunk_value_maxima(db)
            db.drop_caches()
            impossible = int(maxima[-1]) + 1
            result = db.query(value_query(impossible))
            assert result.stats.chunks_pruned == 8
            assert result.stats.chunks_loaded == 0
            assert result.rewrite.loaded_uris == []
            assert len(result.rewrite.pruned_uris) == 8
            assert result.table.to_dicts()[0]["n"] == 0
        finally:
            db.close()

    def test_time_window_queries_unaffected_by_pruning(self, tiny_repo):
        """Stage one already narrows by time; pruning must agree with it."""
        start = EPOCH_2010_MS
        sql = t4_query(
            QueryParams(
                station="ISK", channel="BHE",
                start_ms=start, end_ms=start + MILLIS_PER_DAY,
            )
        )
        pruned_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(prune_chunks=True)
        )
        plain_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(prune_chunks=False)
        )
        try:
            a = pruned_db.query(sql)
            b = plain_db.query(sql)
            assert a.table.to_dicts() == b.table.to_dicts()
            assert a.stats.chunks_loaded == b.stats.chunks_loaded == 1
        finally:
            pruned_db.close()
            plain_db.close()


class TestStatsSurviveRestart:
    def test_value_pruning_works_after_reopen(self, tiny_repo, tmp_path):
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        db.query(prime_sql())
        maxima = chunk_value_maxima(db)
        impossible = int(maxima[-1]) + 1
        db.close()  # checkpoints chunk statistics with the catalog pointers

        reopened = SommelierDB.open(workdir)
        try:
            entries = reopened.database.chunk_stats.snapshot()
            assert sum(1 for e in entries.values() if e.enriched) == 8
            result = reopened.query(value_query(impossible))
            # No fetch, no decode, no re-hydrate: statistics answered it.
            assert result.stats.chunks_pruned == 8
            assert result.stats.chunks_loaded == 0
            assert result.stats.chunks_rehydrated == 0
        finally:
            reopened.close()

    def test_store_sidecars_recover_stats_without_checkpoint(
        self, tiny_repo, tmp_path
    ):
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        db.query(prime_sql())
        db.database.recycler.flush_to_store()
        # Simulate a crash: no checkpoint is written, but committed store
        # entries carry their statistics sidecars.
        db.database.close()
        reopened = SommelierDB.open(workdir)
        try:
            entries = reopened.database.chunk_stats.snapshot()
            assert sum(1 for e in entries.values() if e.enriched) == 8
        finally:
            reopened.close()


class TestExplainSurface:
    def test_explain_chunks_reports_plan(self, lazy_db, day_range):
        start, end = day_range
        sql = t4_query(
            QueryParams(
                station="ISK", channel="BHE", start_ms=start, end_ms=end
            )
        )
        rendered = lazy_db.explain_chunks(sql)
        assert "1 candidate chunk(s)" in rendered
        assert "remote" in rendered
        # Explaining must not have fetched anything.
        assert len(lazy_db.database.recycler) == 0

    def test_explain_chunks_shows_pruning(self, tiny_repo):
        db, _ = prepare("lazy", tiny_repo[0])
        try:
            db.query(prime_sql())
            maxima = chunk_value_maxima(db)
            rendered = db.explain_chunks(value_query(int(maxima[-1]) + 1))
            assert "8 pruned by statistics" in rendered
        finally:
            db.close()

    def test_metadata_only_query_has_no_chunk_plan(self, lazy_db):
        rendered = lazy_db.explain_chunks(
            "SELECT COUNT(*) AS n FROM gmdview WHERE F.station = 'ISK'"
        )
        assert "metadata-only" in rendered
