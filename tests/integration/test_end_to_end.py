"""Integration tests: the full pipeline across loading approaches.

The central invariant: every loading approach answers every query type
identically — lazy loading is an optimization, not a semantics change.
"""

import pytest

from repro.core.loading import prepare
from repro.core.two_stage import TwoStageOptions
from repro.data.ingv import EPOCH_2010_MS
from repro.workloads import (
    QUERY1,
    QUERY2,
    QueryParams,
    t1_query,
    t2_query,
    t3_query,
    t4_query,
    t5_query,
)

MILLIS_PER_DAY = 24 * 3600 * 1000
APPROACH_NAMES = ("lazy", "eager_plain", "eager_csv", "eager_index", "eager_dmd")


@pytest.fixture(scope="module")
def prepared_all(tiny_repo):
    databases = {}
    for name in APPROACH_NAMES:
        databases[name], _ = prepare(name, tiny_repo[0])
    yield databases
    for db in databases.values():
        db.close()


@pytest.fixture()
def all_params():
    return QueryParams(
        station="FIAM",
        channel="HHZ",
        start_ms=EPOCH_2010_MS,
        end_ms=EPOCH_2010_MS + 2 * MILLIS_PER_DAY,
        max_val_threshold=100.0,
        std_dev_threshold=1.0,
    )


class TestApproachEquivalence:
    @pytest.mark.parametrize(
        "builder", [t1_query, t2_query, t3_query, t4_query, t5_query]
    )
    def test_same_answer_everywhere(self, prepared_all, all_params, builder):
        sql = builder(all_params)
        answers = {
            name: db.query(sql).table.to_dicts()
            for name, db in prepared_all.items()
        }
        reference = answers["eager_plain"]
        for name, answer in answers.items():
            assert _rows_close(answer, reference), (
                f"{name} disagrees with eager_plain on {builder.__name__}"
            )

    def test_paper_query1(self, prepared_all):
        answers = {
            name: db.query(QUERY1).table.to_dicts()
            for name, db in prepared_all.items()
        }
        reference = answers["eager_plain"]
        for answer in answers.values():
            assert _rows_close(answer, reference)

    def test_paper_query2(self, prepared_all):
        answers = {
            name: sorted(
                map(str, db.query(QUERY2).table.to_dicts())
            )
            for name, db in prepared_all.items()
        }
        reference = answers["eager_plain"]
        for answer in answers.values():
            assert answer == reference


def _rows_close(a, b):
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if set(row_a) != set(row_b):
            return False
        for key in row_a:
            va, vb = row_a[key], row_b[key]
            if isinstance(va, float) and isinstance(vb, float):
                import math

                if math.isnan(va) and math.isnan(vb):
                    continue
                if abs(va - vb) > 1e-9 * max(1.0, abs(va), abs(vb)):
                    return False
            elif va != vb:
                return False
    return True


class TestColdHotProtocol:
    def test_hot_run_avoids_chunk_loads(self, tiny_repo, all_params):
        db, _ = prepare("lazy", tiny_repo[0])
        sql = t4_query(all_params)
        cold = db.query(sql)
        hot = db.query(sql)
        assert cold.stats.chunks_loaded > 0
        assert hot.stats.chunks_loaded == 0
        db.close()

    def test_cold_restart_reloads(self, tiny_repo, all_params):
        db, _ = prepare("lazy", tiny_repo[0])
        sql = t4_query(all_params)
        db.query(sql)
        db.drop_caches()
        again = db.query(sql)
        assert again.stats.chunks_loaded > 0
        db.close()

    def test_eager_hot_faster_via_buffer_pool(self, tiny_repo, all_params):
        db, _ = prepare("eager_plain", tiny_repo[0])
        sql = t4_query(all_params)
        db.drop_caches()
        db.query(sql)
        pool = db.database.buffer_pool
        cold_misses = pool.stats.misses
        db.query(sql)
        hot_misses = pool.stats.misses - cold_misses
        assert hot_misses < cold_misses
        db.close()


class TestRecyclerBudgetPressure:
    def test_tiny_recycler_evicts_and_still_correct(self, tiny_repo, all_params):
        db, _ = prepare("lazy", tiny_repo[0], recycler_bytes=16 * 1024)
        reference_db, _ = prepare("lazy", tiny_repo[0])
        sql = t4_query(all_params)
        constrained = db.query(sql).table.to_dicts()
        reference = reference_db.query(sql).table.to_dicts()
        assert _rows_close(constrained, reference)
        db.close()
        reference_db.close()


class TestRuleAblationBehaviour:
    def test_disabling_r2_can_load_more_chunks(self, tiny_repo, all_params):
        """The paper's minimality claim: without R2, metadata that only
        connects through a cross product cannot pre-filter chunks."""
        from repro.core.coloring import RuleSet

        sql = t5_query(all_params)
        db_full, _ = prepare("lazy", tiny_repo[0])
        db_ablated, _ = prepare(
            "lazy",
            tiny_repo[0],
            options=TwoStageOptions(rules=RuleSet.disabled("r2")),
        )
        full = db_full.query(sql)
        ablated = db_ablated.query(sql)
        assert _rows_close(ablated.table.to_dicts(), full.table.to_dicts())
        assert len(ablated.rewrite.required_uris) >= len(
            full.rewrite.required_uris
        )
        db_full.close()
        db_ablated.close()


class TestRecyclerPolicies:
    def test_cost_aware_policy_end_to_end(self, tiny_repo, all_params):
        db, _ = prepare("lazy", tiny_repo[0])
        db_cost, _ = prepare("lazy", tiny_repo[0])
        db_cost.database.recycler.policy = "cost_aware"
        sql = t4_query(all_params)
        assert _rows_close(
            db_cost.query(sql).table.to_dicts(),
            db.query(sql).table.to_dicts(),
        )
        db.close()
        db_cost.close()
