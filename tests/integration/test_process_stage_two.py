"""Process-based stage two: results identical, store-mediated decode.

Spawning real worker processes is slow (each imports numpy), so this file
keeps to a few essential end-to-end checks and reuses one database where
possible; the cheap plumbing (options validation, plan shape) is tested
without any pool.
"""

import pytest

from repro.core.loading import prepare
from repro.core.two_stage import TwoStageOptions
from repro.engine import algebra
from repro.engine.errors import PlanError

T4 = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM dataview "
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
)


class TestOptionsPlumbing:
    def test_executor_validated(self):
        with pytest.raises(PlanError, match="unknown stage-two executor"):
            TwoStageOptions(executor="fibers")

    def test_default_is_thread(self):
        assert TwoStageOptions().executor == "thread"

    def test_parallel_chunk_scan_carries_executor(self):
        from repro.engine.table import Schema

        scan = algebra.ParallelChunkScan(
            ["u1", "u2"], "D", Schema([]), io_threads=2, executor="process"
        )
        assert scan.executor == "process"
        assert "executor=process" in scan.describe()


class TestProcessExecution:
    @pytest.fixture(scope="class")
    def process_db(self, tiny_repo, tmp_path_factory):
        db, _ = prepare(
            "lazy",
            tiny_repo[0],
            workdir=str(tmp_path_factory.mktemp("procdb")),
            options=TwoStageOptions(io_threads=2, executor="process"),
        )
        yield db
        db.close()

    def test_results_match_serial_and_workers_commit_to_store(
        self, process_db, tiny_repo
    ):
        serial_db, _ = prepare(
            "lazy", tiny_repo[0], options=TwoStageOptions(io_threads=1)
        )
        expected = serial_db.query(T4)
        serial_db.close()

        result = process_db.query(T4)
        assert result.table == expected.table
        assert result.stats.chunks_loaded == expected.stats.chunks_loaded
        # The decodes went through the shared store: workers committed
        # entries the parent mmap-re-hydrated.
        store = process_db.database.chunk_store
        assert len(store) >= result.stats.chunks_loaded
        # ...and the memory tier holds them resident-free (mmap-backed).
        assert process_db.database.recycler.bytes_mapped > 0
        assert process_db.database.cache_accounting()["chunk_store"] > 0

    def test_second_query_is_served_from_cache_not_workers(self, process_db):
        warm = process_db.query(T4)
        assert warm.stats.chunks_loaded == 0
        assert (
            warm.stats.chunks_from_cache + warm.stats.chunks_rehydrated > 0
        )

    def test_drop_caches_with_live_pool_redecodes(self, process_db):
        """Workers must not trust stale store indexes after drop_caches."""
        warm = process_db.query(T4)
        before = process_db.query(T4).table
        process_db.drop_caches()  # clears both tiers under the live pool
        cold = process_db.query(T4)
        assert cold.table == before
        assert cold.stats.chunks_loaded > 0  # genuinely re-decoded
        assert warm.stats.chunks_loaded == 0

    def test_process_pool_requires_loader(self, tmp_path):
        from repro.engine.database import Database
        from repro.engine.errors import ExecutionError

        with Database(workdir=str(tmp_path / "bare")) as database:
            with pytest.raises(ExecutionError, match="chunk loader"):
                database.process_executor(2)
