"""Warm restart: SommelierDB.open over a persistent workdir.

The restart contract: after a checkpointing close, reopening the workdir
(1) restores the catalog pointers — no re-registration needed — and
(2) serves stage two from the persistent chunk store — no re-decode.
"""

import os

import pytest

from repro.core.loading import prepare
from repro.core.sommelier import SommelierDB
from repro.core.two_stage import TwoStageOptions
from repro.engine.errors import ExecutionError

T4 = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM dataview "
    "WHERE F.station = 'ISK' AND F.channel = 'BHE'"
)
T1 = "SELECT COUNT(*) AS n FROM gmdview WHERE F.station = 'ISK'"


class TestWarmRestart:
    def test_reopen_serves_without_redecoding(self, tiny_repo, tmp_path):
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        first = db.query(T4)
        assert first.stats.chunks_loaded > 0
        db.close()  # persistent workdir: checkpoints + flushes warm tier

        reopened = SommelierDB.open(workdir)
        second = reopened.query(T4)
        assert second.table == first.table
        assert second.stats.chunks_loaded == 0
        assert second.stats.chunks_rehydrated == first.stats.chunks_loaded
        reopened.close()

    def test_reopen_restores_metadata_without_repository(self, tiny_repo, tmp_path):
        """Stage one (metadata-only) works from the checkpoint alone."""
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        expected = db.query(T1).table
        db.close()

        reopened = SommelierDB.open(workdir)
        assert reopened.query(T1).table == expected
        # The loader's URI → file-id map survived too.
        loader = reopened.database.chunk_loader
        assert loader is not None and len(loader._file_ids) > 0
        reopened.close()

    def test_double_restart(self, tiny_repo, tmp_path):
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        expected = db.query(T4).table
        db.close()
        for _ in range(2):
            db = SommelierDB.open(workdir)
            result = db.query(T4)
            assert result.table == expected
            assert result.stats.chunks_loaded == 0
            db.close()

    def test_open_on_empty_workdir_is_fresh(self, tmp_path):
        db = SommelierDB.open(str(tmp_path / "nothing"))
        assert db.database.chunk_loader is None
        assert db.database.table_num_rows("F") == 0
        db.close()

    def test_corrupt_checkpoint_opens_fresh(self, tiny_repo, tmp_path):
        workdir = str(tmp_path / "db")
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir)
        db.query(T4)
        db.close()
        with open(os.path.join(workdir, "catalog.json"), "w") as handle:
            handle.write('{"version": 1, "tab')  # torn write
        reopened = SommelierDB.open(workdir)  # no crash, cold catalog
        assert reopened.database.table_num_rows("F") == 0
        reopened.close()

    def test_closed_database_rejects_queries(self, tiny_repo, tmp_path):
        db, _ = prepare("lazy", tiny_repo[0], workdir=str(tmp_path / "db"))
        db.close()
        db.close()  # idempotent
        with pytest.raises(ExecutionError, match="closed"):
            db.query(T1)

    def test_ephemeral_database_does_not_checkpoint(self, tiny_repo):
        db, _ = prepare("lazy", tiny_repo[0])  # tempdir workdir
        workdir = db.database.workdir
        db.query(T4)
        db.close()
        assert not os.path.exists(workdir)  # tempdir cleaned, nothing leaks

    def test_drop_caches_still_means_fully_cold(self, tiny_repo, tmp_path):
        """The paper's cold protocol clears *both* tiers."""
        db, _ = prepare("lazy", tiny_repo[0], workdir=str(tmp_path / "db"))
        first = db.query(T4)
        db.database.recycler.flush_to_store()
        db.drop_caches()
        again = db.query(T4)
        assert again.stats.chunks_loaded == first.stats.chunks_loaded
        assert again.stats.chunks_rehydrated == 0
        db.close()

    def test_eager_restart_restores_paged_actual_data(self, tiny_repo, tmp_path):
        """An eager database's paged-out D survives the restart."""
        workdir = str(tmp_path / "db")
        db, _ = prepare("eager_plain", tiny_repo[0], workdir=workdir)
        expected = db.query(T4).table
        rows = db.database.table_num_rows("D")
        assert rows > 0
        db.close()

        reopened = SommelierDB.open(workdir, lazy=False)
        assert reopened.database.table_num_rows("D") == rows
        assert reopened.query(T4).table == expected
        reopened.close()

    def test_restart_with_options_and_threads(self, tiny_repo, tmp_path):
        workdir = str(tmp_path / "db")
        options = TwoStageOptions(io_threads=2)
        db, _ = prepare("lazy", tiny_repo[0], workdir=workdir, options=options)
        expected = db.query(T4).table
        db.close()
        reopened = SommelierDB.open(workdir, options=options)
        result = reopened.query(T4)
        assert result.table == expected
        assert result.stats.chunks_loaded == 0
        reopened.close()
