"""The paper's verbatim example queries (Figures 2 and 3) end to end."""

import pytest

from repro.workloads import QUERY1, QUERY2


class TestQuery1:
    """Figure 2: short-term average at ISK/BHE over a 2-second window."""

    def test_type_is_t4(self, lazy_db):
        from repro.core.query_types import QueryType

        assert lazy_db.query_type(QUERY1) is QueryType.T4

    def test_two_stage_program_shape(self, lazy_db):
        explained = lazy_db.explain(QUERY1)
        assert "two-stage: True" in explained
        assert "runtime-optimizer" in explained
        # Metadata joined before the actual data table.
        assert "join order: F -> S -> D" in explained

    def test_chunk_count_minimal(self, lazy_db):
        """The paper's narrative: only the files of interest are loaded.

        A 2-second window on one station lies inside a single chunk file.
        """
        result = lazy_db.query(QUERY1)
        assert len(result.rewrite.required_uris) == 1

    def test_answer_matches_eager(self, lazy_db, eager_db):
        import math

        lazy_row = lazy_db.query(QUERY1).table.to_dicts()[0]
        eager_row = eager_db.query(QUERY1).table.to_dicts()[0]
        if isinstance(lazy_row["avg_value"], float) and math.isnan(
            lazy_row["avg_value"]
        ):
            assert math.isnan(eager_row["avg_value"])
        else:
            assert lazy_row["avg_value"] == pytest.approx(
                eager_row["avg_value"]
            )


class TestQuery2:
    """Figure 3: waveform data of volatile high-amplitude hours at FIAM."""

    def test_type_is_t5(self, lazy_db):
        from repro.core.query_types import QueryType

        assert lazy_db.query_type(QUERY2) is QueryType.T5

    def test_derivation_triggered(self, lazy_db):
        result, derivation = lazy_db.query_with_derivation(QUERY2)
        assert derivation.applicable
        # The 3-hour window space of the query (one station-channel pair).
        assert derivation.psq_size == 3

    def test_rows_lie_in_queried_hours(self, lazy_db):
        from repro.engine.types import parse_timestamp

        result = lazy_db.query(QUERY2)
        low = parse_timestamp("2010-01-20T23:00:00.000")
        high = parse_timestamp("2010-01-21T02:00:00.000")
        for row in result.table.to_dicts():
            assert low <= row["D.sample_time"] < high

    def test_answer_matches_eager_dmd(self, lazy_db, eager_dmd_db):
        lazy_rows = sorted(map(str, lazy_db.query(QUERY2).table.to_dicts()))
        eager_rows = sorted(
            map(str, eager_dmd_db.query(QUERY2).table.to_dicts())
        )
        assert lazy_rows == eager_rows
