"""Tests for the synthetic waveform generator and INGV dataset builder."""

import numpy as np
import pytest

from repro.data import (
    DAYS_PER_SF,
    DEFAULT_STATIONS,
    FIAM_ONLY,
    SCALE_TEST,
    build_or_reuse,
    build_repository,
    day_seed,
    generate_day,
    split_into_segments,
    station_by_code,
)
from repro.data.ingv import EPOCH_2010_MS
from repro.mseed import reader


class TestStations:
    def test_four_default_stations(self):
        assert len(DEFAULT_STATIONS) == 4

    def test_paper_example_stations_present(self):
        assert station_by_code("ISK").channel == "BHE"
        assert station_by_code("FIAM").channel == "HHZ"

    def test_unknown_station(self):
        with pytest.raises(KeyError):
            station_by_code("XXXX")

    def test_fiam_only(self):
        assert len(FIAM_ONLY) == 1
        assert FIAM_ONLY[0].code == "FIAM"


class TestWaveform:
    def test_deterministic(self):
        a = generate_day("FIAM", "HHZ", 3, 1000)
        b = generate_day("FIAM", "HHZ", 3, 1000)
        assert np.array_equal(a, b)

    def test_different_days_differ(self):
        a = generate_day("FIAM", "HHZ", 0, 1000)
        b = generate_day("FIAM", "HHZ", 1, 1000)
        assert not np.array_equal(a, b)

    def test_different_stations_differ(self):
        a = generate_day("FIAM", "HHZ", 0, 1000)
        b = generate_day("ISK", "HHZ", 0, 1000)
        assert not np.array_equal(a, b)

    def test_integer_output(self):
        samples = generate_day("FIAM", "HHZ", 0, 500)
        assert samples.dtype == np.int64

    def test_length(self):
        assert len(generate_day("X", "C", 0, 777)) == 777

    def test_seed_stability(self):
        assert day_seed("FIAM", "HHZ", 1) == day_seed("FIAM", "HHZ", 1)
        assert day_seed("FIAM", "HHZ", 1) != day_seed("FIAM", "HHZ", 2)

    def test_events_make_large_amplitudes(self):
        # With many days, at least one should contain an event well above
        # the noise floor (base amplitude is thousands of counts).
        peak = max(
            np.abs(generate_day("FIAM", "HHZ", day, 2000,
                                event_rate=3.0)).max()
            for day in range(5)
        )
        assert peak > 3000


class TestSegmentSplitting:
    def test_covers_all_samples(self):
        samples = np.arange(1000)
        rng = np.random.default_rng(0)
        pieces = split_into_segments(samples, 0, 100.0, rng, 4, 8)
        total = sum(len(p) for _, _, p in pieces)
        assert total == 1000

    def test_segment_numbers_sequential(self):
        rng = np.random.default_rng(0)
        pieces = split_into_segments(np.arange(100), 0, 10.0, rng, 2, 4)
        assert [n for n, _, _ in pieces] == list(range(len(pieces)))

    def test_start_times_monotonic(self):
        rng = np.random.default_rng(0)
        pieces = split_into_segments(np.arange(500), 1000, 10.0, rng, 4, 8)
        starts = [s for _, s, _ in pieces]
        assert starts == sorted(starts)

    def test_empty_input(self):
        rng = np.random.default_rng(0)
        pieces = split_into_segments(np.asarray([], dtype=np.int64), 0, 1.0, rng)
        assert len(pieces) == 1 and len(pieces[0][2]) == 0


class TestDatasetBuilder:
    def test_paper_day_counts(self):
        assert DAYS_PER_SF == {1: 40, 3: 121, 9: 366, 27: 1096}

    def test_file_count_is_stations_times_days(self, tmp_path):
        stats = build_repository(str(tmp_path / "r"), 1, SCALE_TEST)
        expected_days = SCALE_TEST.days_for_sf(1)
        assert stats.num_files == 4 * expected_days

    def test_scale_ratios_preserved(self):
        days = [SCALE_TEST.days_for_sf(sf) for sf in (1, 3, 9, 27)]
        assert days == sorted(days)
        assert days[3] >= 20 * days[0]  # roughly 27x, integer division aside

    def test_deterministic_rebuild(self, tmp_path):
        a = build_repository(str(tmp_path / "a"), 1, SCALE_TEST)
        b = build_repository(str(tmp_path / "b"), 1, SCALE_TEST)
        assert a == b

    def test_build_or_reuse_caches(self, tmp_path):
        repo1, stats1 = build_or_reuse(str(tmp_path), 1, SCALE_TEST)
        repo2, stats2 = build_or_reuse(str(tmp_path), 1, SCALE_TEST)
        assert repo1.root == repo2.root
        assert stats1 == stats2

    def test_fiam_only_quarter_size(self, tmp_path):
        _, full = build_or_reuse(str(tmp_path), 1, SCALE_TEST)
        _, fiam = build_or_reuse(str(tmp_path), 1, SCALE_TEST, fiam_only=True)
        assert fiam.num_files * 4 == full.num_files

    def test_chunk_contents_match_generator(self, tmp_path):
        repo, _ = build_or_reuse(str(tmp_path), 1, SCALE_TEST)
        first = repo.list_chunks()[0]
        meta = reader.read_metadata(first.uri)
        segments = reader.read_samples(first.uri)
        regenerated = generate_day(
            meta.volume.station,
            meta.volume.channel,
            0,
            SCALE_TEST.samples_per_day,
            noise_scale=station_by_code(meta.volume.station).noise_scale,
            event_rate=station_by_code(meta.volume.station).event_rate,
            base_amplitude=station_by_code(meta.volume.station).base_amplitude,
        )
        concatenated = np.concatenate([s.values for s in segments])
        assert np.array_equal(concatenated, regenerated)

    def test_timestamps_start_at_epoch(self, tmp_path):
        repo, _ = build_or_reuse(str(tmp_path), 1, SCALE_TEST)
        first = repo.list_chunks()[0]
        meta = reader.read_metadata(first.uri)
        assert meta.segments[0].start_time_ms == EPOCH_2010_MS

    def test_stats_marker_roundtrip(self, tmp_path):
        _, stats1 = build_or_reuse(str(tmp_path), 3, SCALE_TEST)
        _, stats2 = build_or_reuse(str(tmp_path), 3, SCALE_TEST)
        assert stats1 == stats2
        assert stats2.num_samples > 0
