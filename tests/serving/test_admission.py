"""Unit tests for the serving admission gates (fake clocks, no sockets)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serving.admission import (
    AdmissionController,
    AdmissionRejected,
    ClientRateLimiter,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_deny(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token
        assert bucket.try_take()

    def test_retry_after_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.5, burst=1, clock=clock)
        bucket.try_take()
        assert bucket.retry_after() == pytest.approx(2.0)

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]


class TestClientRateLimiter:
    def test_limited_client_does_not_block_others(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=1, clock=clock)
        limiter.check("greedy")
        with pytest.raises(AdmissionRejected) as excinfo:
            limiter.check("greedy")
        assert excinfo.value.retry_after > 0
        limiter.check("polite")  # unaffected

    def test_disabled_when_rate_nonpositive(self):
        limiter = ClientRateLimiter(rate=0.0, burst=1)
        for _ in range(100):
            limiter.check("anyone")

    def test_lru_bounded_client_table(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(
            rate=1.0, burst=1, max_clients=2, clock=clock
        )
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")  # evicts "a"
        assert len(limiter._buckets) == 2
        # "a" comes back with a fresh bucket rather than its spent one.
        limiter.check("a")


class TestAdmissionController:
    def test_rejects_beyond_capacity_plus_queue(self):
        async def scenario():
            controller = AdmissionController(capacity=1, max_queue=0)
            release = asyncio.Event()

            async def occupant():
                async with controller.admit():
                    await release.wait()

            task = asyncio.create_task(occupant())
            await asyncio.sleep(0)  # let the occupant take the slot
            assert controller.active == 1
            with pytest.raises(AdmissionRejected) as excinfo:
                async with controller.admit():
                    pass
            assert excinfo.value.retry_after > 0
            assert controller.rejected_total == 1
            release.set()
            await task
            # Slot free again: admission succeeds.
            async with controller.admit():
                assert controller.active == 1

        asyncio.run(scenario())

    def test_bounded_queue_admits_waiters(self):
        async def scenario():
            controller = AdmissionController(capacity=1, max_queue=1)
            release = asyncio.Event()
            order: list[str] = []

            async def occupant(name: str):
                async with controller.admit():
                    order.append(name)
                    await release.wait()

            first = asyncio.create_task(occupant("first"))
            await asyncio.sleep(0)

            async def waiter():
                async with controller.admit():
                    order.append("waiter")

            second = asyncio.create_task(waiter())
            await asyncio.sleep(0)
            assert controller.queued == 1
            # One waiting + one active: the next arrival is shed.
            with pytest.raises(AdmissionRejected):
                async with controller.admit():
                    pass
            release.set()
            await first
            await second
            assert order == ["first", "waiter"]
            assert controller.admitted_total == 2

        asyncio.run(scenario())

    def test_stats_shape(self):
        controller = AdmissionController(capacity=2, max_queue=4)
        stats = controller.stats()
        assert stats["capacity"] == 2
        assert stats["max_queue"] == 4
        assert stats["active"] == 0
        assert stats["service_ewma_ms"] > 0
