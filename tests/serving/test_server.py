"""End-to-end tests of the serving front end over real sockets.

Each test boots a :class:`SommelierServer` on its own event-loop thread
(`start_in_thread`) against a lazily-prepared test repository, then
talks to it with the blocking :class:`ServingClient`.  Slow queries are
manufactured with the loader's ``io_delay_ms`` fetch-latency model plus
a cold recycler, exactly like the benchmarks.
"""

from __future__ import annotations

import math
import threading
import time
from urllib.parse import quote

import pytest

from repro.core.loading import prepare
from repro.data.ingv import EPOCH_2010_MS
from repro.serving import ServerConfig, ServingClient, start_in_thread

MILLIS_PER_DAY = 24 * 3600 * 1000
DAY0 = EPOCH_2010_MS
DAY2 = EPOCH_2010_MS + 2 * MILLIS_PER_DAY
HOUR_MS = 3600 * 1000

# Two chunks (ISK x 2 days) — with io_delay_ms set and a cold recycler
# this query occupies a session for at least one fetch latency.
SLOW_SQL = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS mean FROM dataview "
    f"WHERE F.station = 'ISK' AND D.sample_time >= {DAY0} "
    f"AND D.sample_time < {DAY2}"
)
ROW_SQL = (
    "SELECT D.sample_time AS t, D.sample_value AS v FROM dataview "
    f"WHERE F.station = 'ISK' AND D.sample_time >= {DAY0} "
    f"AND D.sample_time < {DAY0 + HOUR_MS}"
)
CHEAP_SQL = (
    "SELECT COUNT(*) AS n FROM dataview "
    f"WHERE F.station = 'ISK' AND D.sample_time >= {DAY0} "
    f"AND D.sample_time < {DAY0 + HOUR_MS}"
)


@pytest.fixture()
def db(tiny_repo):
    db, _ = prepare("lazy", tiny_repo[0])
    yield db
    db.close()


def make_cold_and_slow(db, delay_ms: float) -> None:
    """Model a remote repository: every chunk fetch pays ``delay_ms``."""
    db.database.chunk_loader.io_delay_ms = delay_ms
    db.database.recycler.spill_on_evict = False
    db.database.recycler.clear(spilled=True)


def rows_equal(wire_rows, local_rows) -> bool:
    if len(wire_rows) != len(local_rows):
        return False
    for wire, local in zip(wire_rows, local_rows):
        if len(wire) != len(local):
            return False
        for a, b in zip(wire, local):
            both_nan = (
                isinstance(a, float) and isinstance(b, float)
                and math.isnan(a) and math.isnan(b)
            )
            if not both_nan and a != b:
                return False
    return True


class TestWireProtocol:
    def test_streamed_results_bit_identical_to_in_process(self, db):
        expected = {
            sql: db.query(sql) for sql in (SLOW_SQL, ROW_SQL)
        }
        with start_in_thread(db, ServerConfig(pool_size=2)) as handle:
            with ServingClient(*handle.address) as client:
                for sql, local in expected.items():
                    response = client.query(sql)
                    assert response.status == 200
                    assert response.columns == list(local.table.schema.names)
                    local_rows = [list(row) for row in local.table.rows()]
                    assert rows_equal(response.rows, local_rows)
                    assert response.payload["row_count"] == len(local_rows)
                    assert response.payload["stats"]["seconds"] >= 0

    def test_health_errors_and_get_query(self, db):
        with start_in_thread(db, ServerConfig(pool_size=1)) as handle:
            with ServingClient(*handle.address) as client:
                assert client.health() == {"status": "ok"}
                no_sql = client._round_trip("POST", "/query", "{}")
                assert no_sql.status == 400
                bad_sql = client.query("SELEKT nonsense")
                assert bad_sql.status == 400
                missing = client._round_trip("GET", "/nope")
                assert missing.status == 404
                wrong_method = client._round_trip("DELETE", "/query")
                assert wrong_method.status == 405
                via_get = client._round_trip(
                    "GET", "/query?sql=" + quote(CHEAP_SQL)
                )
                assert via_get.status == 200
                assert via_get.payload["row_count"] == 1
        assert handle.server.stats.bad_requests == 2

    def test_stats_counters_match_cache_json_serialization(self, db):
        """`/stats` and `repro cache --json` share one snapshot helper."""
        with start_in_thread(db, ServerConfig(pool_size=1)) as handle:
            with ServingClient(*handle.address) as client:
                assert client.query(CHEAP_SQL).status == 200
                wire = client.stats()
                local = db.counters_snapshot()
        assert wire["counters"] == local
        assert wire["server"]["queries_ok"] == 1
        assert wire["admission"]["admitted_total"] == 1
        assert wire["pool"]["in_use"] == 0


class TestAdmissionControl:
    def test_pool_exhaustion_sheds_instead_of_queueing(self, db):
        make_cold_and_slow(db, delay_ms=300.0)
        config = ServerConfig(pool_size=1, max_queue=0)
        with start_in_thread(db, config) as handle:
            slow_result: list = []

            def occupy():
                with ServingClient(*handle.address) as client:
                    slow_result.append(client.query(SLOW_SQL))

            thread = threading.Thread(target=occupy)
            thread.start()
            time.sleep(0.1)  # the slot is taken well before the fetch ends
            with ServingClient(*handle.address) as client:
                started = time.monotonic()
                shed = client.query(SLOW_SQL)
                shed_latency = time.monotonic() - started
            thread.join(timeout=30)
            assert not thread.is_alive()

            assert shed.status == 503
            assert shed.retry_after is not None and shed.retry_after >= 1
            # Shedding is immediate — the request never waited for a slot.
            assert shed_latency < 0.2
            assert slow_result[0].status == 200
            assert handle.server.stats.rejected_saturated == 1
            assert handle.server.admission.rejected_total == 1

    def test_rate_limited_client_does_not_starve_others(self, db):
        config = ServerConfig(
            pool_size=2, rate_limit_qps=0.1, rate_limit_burst=1.0
        )
        with start_in_thread(db, config) as handle:
            greedy = ServingClient(*handle.address, client_id="greedy")
            polite = ServingClient(*handle.address, client_id="polite")
            try:
                assert greedy.query(CHEAP_SQL).status == 200
                limited = greedy.query(CHEAP_SQL)
                assert limited.status == 429
                assert limited.retry_after is not None
                assert limited.retry_after >= 1
                # A different client id is admitted while greedy backs off.
                assert polite.query(CHEAP_SQL).status == 200
            finally:
                greedy.close()
                polite.close()
            assert handle.server.stats.rejected_rate_limited == 1
            assert handle.server.stats.queries_ok == 2

    def test_timeout_cancels_query_and_releases_session(self, db):
        make_cold_and_slow(db, delay_ms=400.0)
        config = ServerConfig(pool_size=1, request_timeout_s=0.25)
        with start_in_thread(db, config) as handle:
            with ServingClient(*handle.address) as client:
                timed_out = client.query(SLOW_SQL)
                assert timed_out.status == 504
                assert "timeout" in timed_out.payload["error"]
                # The cancel token unwound the engine and the session went
                # back to the pool before the 504 was written.
                assert handle.server.pool.stats()["in_use"] == 0
                # The admission slot frees just *after* the 504 is written
                # (the handler is still unwinding when the client reads it).
                deadline = time.monotonic() + 2.0
                while (
                    handle.server.admission.active
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                assert handle.server.admission.active == 0
                assert handle.server.stats.timeouts == 1
            # The slot is genuinely reusable: the next query succeeds on
            # the same (only) session once fetches are fast again.
            db.database.chunk_loader.io_delay_ms = 0.0
            with ServingClient(*handle.address) as client:
                retry = client.query(SLOW_SQL)
                assert retry.status == 200
                assert retry.payload["row_count"] == 1


class TestGracefulShutdown:
    def test_drain_finishes_in_flight_query_then_refuses(self, db):
        expected = db.query(SLOW_SQL)
        expected_rows = [list(row) for row in expected.table.rows()]
        make_cold_and_slow(db, delay_ms=300.0)
        with start_in_thread(db, ServerConfig(pool_size=2)) as handle:
            in_flight: list = []

            def run_slow():
                with ServingClient(*handle.address) as client:
                    in_flight.append(client.query(SLOW_SQL))

            thread = threading.Thread(target=run_slow)
            thread.start()
            time.sleep(0.1)  # in flight: admitted, fetching chunks
            handle.stop(drain=True)  # blocks until the query streamed out
            thread.join(timeout=30)
            assert not thread.is_alive()

            assert in_flight[0].status == 200
            assert rows_equal(in_flight[0].rows, expected_rows)
            # The listening socket is gone: new clients are refused.
            with pytest.raises(OSError):
                with ServingClient(*handle.address, timeout=2.0) as client:
                    client.query(CHEAP_SQL)
