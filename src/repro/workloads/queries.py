"""The T1–T5 query templates of the evaluation (Section VI-A).

Each builder returns SQL text parameterized by station/channel/time range:

* **T1** — joins GMd tables, selection on station, computes an aggregate;
* **T2** — DMd only, predicates on ``window_station``/``window_start_ts``;
* **T3** — the T2 query joined with the GMd tables;
* **T4** — aggregate over actual data joined with GMd, selections on both
  GMd and AD (this is the paper's Query 1 / short-term-average shape);
* **T5** — aggregate over actual data joined with GMd and DMd, selections
  on GMd and DMd but *not* on AD (the paper's Query 2 shape).

:data:`QUERY1` and :data:`QUERY2` are the verbatim examples of Figures 2/3
(modulo the synthetic dataset's time ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.types import format_timestamp

__all__ = [
    "QueryParams",
    "t1_query",
    "t2_query",
    "t3_query",
    "t4_query",
    "t5_query",
    "QUERY_BUILDERS",
    "QUERY1",
    "QUERY2",
]


@dataclass(frozen=True)
class QueryParams:
    """Common parameters of the domain queries."""

    station: str = "ISK"
    channel: str = "BHE"
    start_ms: int = 0
    end_ms: int = 0
    max_val_threshold: float = 10000.0
    std_dev_threshold: float = 10.0

    @property
    def start_iso(self) -> str:
        return format_timestamp(self.start_ms)

    @property
    def end_iso(self) -> str:
        return format_timestamp(self.end_ms)


def t1_query(params: QueryParams) -> str:
    """GMd only: per-station segment statistics."""
    return f"""
        SELECT F.station AS station,
               COUNT(S.segment_no) AS segments,
               SUM(S.sample_count) AS samples,
               AVG(S.frequency) AS avg_frequency
        FROM gmdview
        WHERE F.station = '{params.station}'
        GROUP BY F.station
    """


def t2_query(params: QueryParams) -> str:
    """DMd only: window summaries for a station and time range."""
    return f"""
        SELECT H.window_start_ts AS window_start_ts,
               H.window_max_val AS max_val,
               H.window_mean_val AS mean_val,
               H.window_std_dev AS std_dev
        FROM H
        WHERE H.window_station = '{params.station}'
          AND H.window_start_ts >= '{params.start_iso}'
          AND H.window_start_ts < '{params.end_iso}'
        ORDER BY window_start_ts
    """


def t3_query(params: QueryParams) -> str:
    """DMd joined with GMd tables."""
    return f"""
        SELECT H.window_start_ts AS window_start_ts,
               MAX(H.window_max_val) AS max_val,
               COUNT(S.segment_no) AS overlapping_segments
        FROM windowmetaview
        WHERE F.station = '{params.station}'
          AND H.window_start_ts >= '{params.start_iso}'
          AND H.window_start_ts < '{params.end_iso}'
        GROUP BY H.window_start_ts
        ORDER BY window_start_ts
    """


def t4_query(params: QueryParams) -> str:
    """GMd + AD with a selection on the actual data (Query 1 shape)."""
    return f"""
        SELECT AVG(D.sample_value) AS avg_value,
               COUNT(D.sample_value) AS n_samples
        FROM dataview
        WHERE F.station = '{params.station}'
          AND F.channel = '{params.channel}'
          AND D.sample_time >= '{params.start_iso}'
          AND D.sample_time < '{params.end_iso}'
    """


def t5_query(params: QueryParams) -> str:
    """GMd + DMd + AD, selections on GMd and DMd only (Query 2 shape)."""
    return f"""
        SELECT MAX(D.sample_value) AS max_value,
               COUNT(D.sample_value) AS n_samples
        FROM windowdataview
        WHERE F.station = '{params.station}'
          AND F.channel = '{params.channel}'
          AND H.window_start_ts >= '{params.start_iso}'
          AND H.window_start_ts < '{params.end_iso}'
          AND H.window_max_val > {params.max_val_threshold}
          AND H.window_std_dev > {params.std_dev_threshold}
    """


QUERY_BUILDERS = {
    "T1": t1_query,
    "T2": t2_query,
    "T3": t3_query,
    "T4": t4_query,
    "T5": t5_query,
}

# The paper's verbatim examples (Figures 2 and 3), retargeted at the
# synthetic dataset's epoch: every dataset starts 2010-01-01 and spans at
# least two days, so Query 1 probes a 2-second window on day 0 (the paper
# used 2010-01-12) and Query 2 probes the three hours around the first
# midnight (the paper used 2010-04-20/21).
QUERY1 = """
    SELECT AVG(D.sample_value) AS avg_value
    FROM dataview
    WHERE F.station = 'ISK' AND F.channel = 'BHE'
      AND D.sample_time > '2010-01-01T12:15:00.000'
      AND D.sample_time < '2010-01-01T12:15:02.000'
"""

QUERY2 = """
    SELECT D.sample_time, D.sample_value
    FROM windowdataview
    WHERE F.station = 'FIAM'
      AND F.channel = 'HHZ'
      AND H.window_start_ts >= '2010-01-01T23:00:00.000'
      AND H.window_start_ts < '2010-01-02T02:00:00.000'
      AND H.window_max_val > 10000
      AND H.window_std_dev > 10
"""
