"""Selectivity-controlled workload generation (Sections VI-D and VI-E).

*Query selectivity* is the fraction of the dataset's time span one query
touches.  *Workload selectivity* is the fraction of the time span the whole
workload covers; queries are placed uniformly at random inside the workload
space, which is anchored at the start of the data (the paper: "workload
queries are randomly distributed over the workload space and we make sure
that the workload space is fully covered").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .queries import QUERY_BUILDERS, QueryParams

__all__ = ["TimeSpan", "selectivity_range", "WorkloadSpec", "generate_workload"]


@dataclass(frozen=True)
class TimeSpan:
    """The dataset's overall time extent."""

    start_ms: int
    end_ms: int

    @property
    def length_ms(self) -> int:
        return self.end_ms - self.start_ms


def selectivity_range(span: TimeSpan, selectivity: float) -> tuple[int, int]:
    """The time range of one query with the given selectivity, front-anchored.

    Selectivity 0 yields an empty range (used for the 0% = preparation-only
    points of Figures 8/9); selectivity 1 covers the whole span.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
    length = int(span.length_ms * selectivity)
    return span.start_ms, span.start_ms + length


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload of the Section VI-E experiments."""

    query_type: str  # 'T2'..'T5'
    num_queries: int
    query_selectivity: float  # fraction of the data span per query
    workload_selectivity: float  # fraction of the data span covered overall
    station: str = "FIAM"
    channel: str = "HHZ"
    seed: int = 20150413  # ICDE'15 conference date; any constant works


def generate_workload(spec: WorkloadSpec, span: TimeSpan) -> list[str]:
    """Generate the SQL texts of one workload.

    Query starts are drawn uniformly from the workload space (the first
    ``workload_selectivity`` fraction of the span), with the first query
    pinned to the space's start and the last pinned to its end so the space
    is fully covered.
    """
    if spec.query_type not in QUERY_BUILDERS:
        raise ValueError(f"unknown query type {spec.query_type!r}")
    builder = QUERY_BUILDERS[spec.query_type]
    rng = np.random.default_rng(spec.seed)
    query_len = int(span.length_ms * spec.query_selectivity)
    space_len = int(span.length_ms * spec.workload_selectivity)
    space_start = span.start_ms
    space_end = space_start + space_len
    max_start = max(space_end - query_len, space_start)

    starts = rng.integers(
        space_start, max_start + 1, size=spec.num_queries
    ).astype(np.int64)
    if spec.num_queries >= 1:
        starts[0] = space_start
    if spec.num_queries >= 2:
        starts[-1] = max_start

    queries: list[str] = []
    for start in starts:
        params = QueryParams(
            station=spec.station,
            channel=spec.channel,
            start_ms=int(start),
            end_ms=int(start) + query_len,
        )
        queries.append(builder(params))
    return queries
