"""Query templates (T1–T5) and selectivity-controlled workload generation."""

from .generator import TimeSpan, WorkloadSpec, generate_workload, selectivity_range
from .queries import (
    QUERY1,
    QUERY2,
    QUERY_BUILDERS,
    QueryParams,
    t1_query,
    t2_query,
    t3_query,
    t4_query,
    t5_query,
)

__all__ = [
    "QUERY1",
    "QUERY2",
    "QUERY_BUILDERS",
    "QueryParams",
    "TimeSpan",
    "WorkloadSpec",
    "generate_workload",
    "selectivity_range",
    "t1_query",
    "t2_query",
    "t3_query",
    "t4_query",
    "t5_query",
]
