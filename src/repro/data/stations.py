"""Station/channel inventory for the synthetic seismic repository.

The paper's INGV dataset covers 4 stations over 3 years; its example
queries use station ISK (Kandilli Observatory, Istanbul) with channel BHE
and station FIAM with channel HHZ.  We reproduce exactly that inventory:
four stations, one channel each, so that ``#files = #stations × #days``
matches Table II's structure (sf-1: 160 files = 4 stations × 40 days).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Station", "DEFAULT_STATIONS", "FIAM_ONLY", "station_by_code"]


@dataclass(frozen=True)
class Station:
    """One sensor: identification plus signal character parameters."""

    network: str
    code: str
    location: str
    channel: str
    # Signal shaping (per-station so data is distinguishable in tests):
    noise_scale: float  # standard deviation of the driving noise
    event_rate: float  # expected seismic events per day
    base_amplitude: float  # typical event peak amplitude (counts)


DEFAULT_STATIONS: tuple[Station, ...] = (
    Station("KO", "ISK", "", "BHE", noise_scale=40.0, event_rate=1.5,
            base_amplitude=12000.0),
    Station("IV", "FIAM", "", "HHZ", noise_scale=55.0, event_rate=2.0,
            base_amplitude=18000.0),
    Station("IV", "ARCI", "", "BHZ", noise_scale=35.0, event_rate=1.0,
            base_amplitude=9000.0),
    Station("IV", "LATE", "", "BHN", noise_scale=60.0, event_rate=2.5,
            base_amplitude=15000.0),
)

FIAM_ONLY: tuple[Station, ...] = tuple(
    s for s in DEFAULT_STATIONS if s.code == "FIAM"
)


def station_by_code(code: str) -> Station:
    """Look up a default station by its code."""
    for station in DEFAULT_STATIONS:
        if station.code == code:
            return station
    raise KeyError(f"unknown station code {code!r}")
