"""Synthetic seismogram generation.

Real INGV waveforms are unavailable (proprietary repository access); per the
substitution rule we synthesize signals with the statistical properties the
experiments depend on:

* smooth colored background noise (an AR(1) process) — small sample-to-sample
  deltas, so the Steim-like codec achieves mSEED-like compression ratios;
* sparse seismic *events*: exponentially decaying sinusoid bursts with
  amplitudes far above the noise floor — these make the derived-metadata
  predicates of Query 2 (hourly max amplitude / std-dev thresholds)
  selective rather than degenerate.

Generation is deterministic: the RNG seed derives from (station, channel,
day), so rebuilding a repository yields byte-identical chunks.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["day_seed", "generate_day", "split_into_segments"]

MILLIS_PER_DAY = 24 * 3600 * 1000


def day_seed(station: str, channel: str, day_index: int) -> int:
    """Stable 32-bit seed for one station-channel-day."""
    key = f"{station}:{channel}:{day_index}".encode("ascii")
    return zlib.crc32(key)


def generate_day(
    station: str,
    channel: str,
    day_index: int,
    samples_per_day: int,
    noise_scale: float = 50.0,
    event_rate: float = 1.5,
    base_amplitude: float = 12000.0,
) -> np.ndarray:
    """One day of integer waveform samples for a station-channel.

    AR(1) background (coefficient 0.97) plus ``Poisson(event_rate)`` decaying
    sinusoid bursts, quantized to int64 counts.
    """
    rng = np.random.default_rng(day_seed(station, channel, day_index))
    driving = rng.normal(0.0, noise_scale, samples_per_day)
    signal = _ar1(driving, 0.97)
    n_events = rng.poisson(event_rate)
    for _ in range(n_events):
        start = int(rng.integers(0, max(samples_per_day - 10, 1)))
        duration = int(
            rng.integers(samples_per_day // 200 + 2, samples_per_day // 20 + 4)
        )
        end = min(start + duration, samples_per_day)
        t = np.arange(end - start, dtype=np.float64)
        amplitude = base_amplitude * rng.uniform(0.5, 2.5)
        frequency = rng.uniform(0.02, 0.2)
        decay = 5.0 / max(duration, 1)
        burst = amplitude * np.exp(-decay * t) * np.sin(
            2 * np.pi * frequency * t + rng.uniform(0, 2 * np.pi)
        )
        signal[start:end] += burst
    return np.round(signal).astype(np.int64)


def _ar1(driving: np.ndarray, coefficient: float) -> np.ndarray:
    """AR(1) recursion x[t] = c·x[t-1] + e[t] as an IIR filter."""
    if len(driving) == 0:
        return driving.copy()
    from scipy.signal import lfilter

    out, _ = lfilter([1.0], [1.0, -coefficient], driving, zi=np.zeros(1))
    return out


def split_into_segments(
    samples: np.ndarray,
    day_start_ms: int,
    frequency_hz: float,
    rng: np.random.Generator,
    min_segments: int = 8,
    max_segments: int = 16,
) -> list[tuple[int, int, np.ndarray]]:
    """Split a day of samples into segments with small gaps.

    Returns ``[(segment_no, start_time_ms, samples), ...]``.  Real mSEED
    files hold multiple records per file (Table II: ~12.6 segments per
    file); gaps between segments model acquisition interruptions.
    """
    total = len(samples)
    count = int(rng.integers(min_segments, max_segments + 1))
    count = max(1, min(count, total)) if total else 1
    if total == 0:
        return [(0, day_start_ms, samples)]
    boundaries = np.sort(rng.choice(np.arange(1, total), size=count - 1,
                                    replace=False)) if count > 1 else np.empty(0, dtype=np.int64)
    pieces = np.split(samples, boundaries)
    period_ms = 1000.0 / frequency_hz
    segments: list[tuple[int, int, np.ndarray]] = []
    cursor = 0
    for segment_no, piece in enumerate(pieces):
        start_ms = day_start_ms + int(round(cursor * period_ms))
        # A short gap (up to 10 sample periods) after each segment.
        segments.append((segment_no, start_ms, piece))
        cursor += len(piece) + int(rng.integers(0, 10))
    return segments
