"""Synthetic dataset substrate: stations, waveforms, INGV-like repositories."""

from .ingv import (
    DAYS_PER_SF,
    DatasetStats,
    RepoScale,
    SCALE_PAPER,
    SCALE_SMALL,
    SCALE_TEST,
    build_or_reuse,
    build_repository,
)
from .stations import DEFAULT_STATIONS, FIAM_ONLY, Station, station_by_code
from .waveform import day_seed, generate_day, split_into_segments

__all__ = [
    "DAYS_PER_SF",
    "DEFAULT_STATIONS",
    "DatasetStats",
    "FIAM_ONLY",
    "RepoScale",
    "SCALE_PAPER",
    "SCALE_SMALL",
    "SCALE_TEST",
    "Station",
    "build_or_reuse",
    "build_repository",
    "day_seed",
    "generate_day",
    "split_into_segments",
    "station_by_code",
]
