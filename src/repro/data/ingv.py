"""Builder for the synthetic INGV-like repositories (Table II datasets).

The paper's datasets (Table II)::

    sf     data of    files   segments      data records
    sf-1   40 days      160       2009     1,273,454,901
    sf-3   4 months     484       7802     3,929,151,193
    sf-9   1 year      1464      12566    11,912,163,036
    sf-27  3 years     4384      74526    33,683,711,338

Structure: files = stations × days (4 stations).  We reproduce the exact
day counts per scale factor (40 / 121 / 366 / 1096) and scale the samples
per file down to laptop-feasible sizes through a :class:`RepoScale` preset
(full paper volume would be ~34 G samples).  The *ratios* between scale
factors — what the experiments depend on — are preserved exactly.

The FIAM dataset (Section VI-D) spans the sf-27 day range but contains only
station FIAM, giving uniformly distributed data for selectivity sweeps.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..mseed.writer import SegmentData, write_volume
from ..mseed.repository import FileRepository
from . import waveform
from .stations import DEFAULT_STATIONS, FIAM_ONLY, Station

__all__ = [
    "RepoScale",
    "SCALE_TEST",
    "SCALE_SMALL",
    "SCALE_PAPER",
    "DAYS_PER_SF",
    "DatasetStats",
    "build_repository",
    "dataset_root",
    "build_or_reuse",
    "EPOCH_2010_MS",
]

# Paper-exact day counts per scale factor (files = 4 stations × days).
DAYS_PER_SF: dict[int, int] = {1: 40, 3: 121, 9: 366, 27: 1096}

# All synthetic data starts 2010-01-01T00:00:00Z, matching the paper's
# example queries which probe January and April 2010.
EPOCH_2010_MS = 1262304000000

MILLIS_PER_DAY = 24 * 3600 * 1000


@dataclass(frozen=True)
class RepoScale:
    """Down-scaling preset: how much data per station-day.

    ``day_divisor`` shrinks the number of days per scale factor (keeping the
    1:3:9:27 ratios); ``samples_per_day`` fixes the per-file volume;
    ``frequency_hz`` is the nominal sampling rate implied by those samples.
    """

    name: str
    day_divisor: int
    samples_per_day: int
    min_segments: int
    max_segments: int

    def days_for_sf(self, scale_factor: int) -> int:
        base = DAYS_PER_SF[scale_factor]
        return max(1, base // self.day_divisor)

    @property
    def frequency_hz(self) -> float:
        return self.samples_per_day / 86400.0


SCALE_TEST = RepoScale("test", day_divisor=20, samples_per_day=720,
                       min_segments=2, max_segments=4)
SCALE_SMALL = RepoScale("small", day_divisor=10, samples_per_day=4320,
                        min_segments=4, max_segments=8)
SCALE_PAPER = RepoScale("paper", day_divisor=1, samples_per_day=8640,
                        min_segments=8, max_segments=16)


@dataclass(frozen=True)
class DatasetStats:
    """What Table II reports per dataset."""

    scale_factor: int
    num_files: int
    num_segments: int
    num_samples: int
    repo_bytes: int


def build_repository(
    root: str,
    scale_factor: int,
    scale: RepoScale = SCALE_SMALL,
    stations: tuple[Station, ...] = DEFAULT_STATIONS,
) -> DatasetStats:
    """Materialize one dataset as a directory of xseed chunks.

    One file per station per day; day 0 starts at 2010-01-01T00:00:00Z.
    Generation is deterministic — same arguments, same bytes.
    """
    days = scale.days_for_sf(scale_factor)
    num_files = 0
    num_segments = 0
    num_samples = 0
    repo_bytes = 0
    for station in stations:
        for day in range(days):
            day_start = EPOCH_2010_MS + day * MILLIS_PER_DAY
            samples = waveform.generate_day(
                station.code,
                station.channel,
                day,
                scale.samples_per_day,
                noise_scale=station.noise_scale,
                event_rate=station.event_rate,
                base_amplitude=station.base_amplitude,
            )
            rng = np.random.default_rng(
                waveform.day_seed(station.code, station.channel, day) ^ 0xA5A5
            )
            pieces = waveform.split_into_segments(
                samples,
                day_start,
                scale.frequency_hz,
                rng,
                scale.min_segments,
                scale.max_segments,
            )
            segments = [
                SegmentData(
                    segment_no=no,
                    start_time_ms=start_ms,
                    frequency=scale.frequency_hz,
                    samples=data,
                )
                for no, start_ms, data in pieces
            ]
            path = os.path.join(
                root,
                station.code,
                f"{station.code}.{station.channel}.day{day:04d}.xseed",
            )
            repo_bytes += write_volume(
                path,
                station.network,
                station.code,
                station.location,
                station.channel,
                segments,
            )
            num_files += 1
            num_segments += len(segments)
            num_samples += len(samples)
    return DatasetStats(
        scale_factor=scale_factor,
        num_files=num_files,
        num_segments=num_segments,
        num_samples=num_samples,
        repo_bytes=repo_bytes,
    )


def dataset_root(base_dir: str, scale_factor: int, scale: RepoScale,
                 fiam_only: bool = False) -> str:
    """Canonical directory for one dataset under a base directory."""
    suffix = "fiam" if fiam_only else "all"
    return os.path.join(base_dir, f"ingv-{scale.name}-sf{scale_factor}-{suffix}")


def build_or_reuse(
    base_dir: str,
    scale_factor: int,
    scale: RepoScale = SCALE_SMALL,
    fiam_only: bool = False,
) -> tuple[FileRepository, DatasetStats]:
    """Build a dataset unless an identical one already exists on disk.

    Reuse is keyed on the canonical directory name and a stats marker file;
    benchmark suites share repositories across runs this way.
    """
    root = dataset_root(base_dir, scale_factor, scale, fiam_only)
    marker = os.path.join(root, ".stats")
    stations = FIAM_ONLY if fiam_only else DEFAULT_STATIONS
    if os.path.isfile(marker):
        with open(marker, "r", encoding="ascii") as handle:
            fields = handle.read().split()
        stats = DatasetStats(
            scale_factor=int(fields[0]),
            num_files=int(fields[1]),
            num_segments=int(fields[2]),
            num_samples=int(fields[3]),
            repo_bytes=int(fields[4]),
        )
        return FileRepository(root), stats
    stats = build_repository(root, scale_factor, scale, stations)
    with open(marker, "w", encoding="ascii") as handle:
        handle.write(
            f"{stats.scale_factor} {stats.num_files} {stats.num_segments} "
            f"{stats.num_samples} {stats.repo_bytes}\n"
        )
    return FileRepository(root), stats
