"""Small AST helpers shared by the checkers."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "call_name",
    "calls_in",
    "dotted_name",
    "functions_in",
    "is_self_attribute",
    "walk_skipping_nested_functions",
]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if parts:
        # Chain rooted in a call/subscript: keep the attribute tail so
        # ``future.result`` in ``futures[f].result()`` still resolves.
        return ".".join(reversed(parts))
    return ""


def call_name(call: ast.Call) -> str:
    """The trailing callable name of a call: ``os.replace`` -> 'replace'."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            yield child


def functions_in(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_self_attribute(node: ast.AST) -> str | None:
    """The attribute name when ``node`` is ``self.<attr>``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_skipping_nested_functions(
    root: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested def/lambda.

    Used by the async-blocking checker: a sync helper defined inside a
    coroutine is usually the payload handed to ``run_in_executor`` and may
    block legitimately.
    """
    stack: list[ast.AST] = list(root.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
