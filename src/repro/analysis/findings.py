"""The finding model shared by every checker and the CLI/CI surfaces."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SEVERITIES", "Finding"]

# Ordered weakest-first so ``max()`` over a report picks the worst.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One invariant violation, anchored to a source location.

    ``path`` is relative to the analyzed root so reports are stable across
    checkouts; ``line`` is 1-based.  ``checker`` is the registry id used in
    ``# repro: ignore[<checker>]`` suppression comments.
    """

    checker: str
    severity: str
    path: str
    line: int
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity {self.severity!r} not one of {SEVERITIES}"
            )

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.checker, self.message)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--json`` findings schema)."""
        return {
            "checker": self.checker,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line: severity[id] message``."""
        return (
            f"{self.path}:{self.line}: "
            f"{self.severity}[{self.checker}] {self.message}"
        )
