"""Checker base class, registry, and the parsed module handed to checkers.

A checker implements one invariant.  Per-module invariants override
:meth:`Checker.check`; cross-module invariants (e.g. a singleton defined in
one module and identity-compared in another) override
:meth:`Checker.check_project`, which sees every parsed module at once.

Suppression: a finding is dropped when the flagged line — or the line
directly above it — carries ``# repro: ignore[id1,id2]`` naming the
checker, or a blanket ``# repro: ignore``.  Suppressions are counted, not
silently discarded, so ``repro analyze`` can report how many were applied.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .findings import Finding

__all__ = [
    "Checker",
    "SourceModule",
    "all_checkers",
    "checker_ids",
    "register",
    "suppressed_ids",
]

SUPPRESS_PATTERN = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<ids>[A-Za-z0-9_,\- ]+)\])?"
)


@dataclass
class SourceModule:
    """One parsed source file, shared by every checker that visits it."""

    path: str  # as given to the runner (absolute or cwd-relative)
    relpath: str  # relative to the analyzed root; used in findings
    source: str
    tree: ast.Module
    # line number -> suppressed checker ids (None = every checker)
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, relpath: str, source: str) -> "SourceModule":
        """Parse a file; raises SyntaxError for the runner to report."""
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            suppressions=_collect_suppressions(source),
        )

    def segment(self, node: ast.AST) -> str:
        """Source text of a node ('' when the segment cannot be located)."""
        return ast.get_source_segment(self.source, node) or ""

    def is_suppressed(self, finding: Finding) -> bool:
        for line in (finding.line, finding.line - 1):
            ids = self.suppressions.get(line, ())
            if ids is None or finding.checker in ids:
                return True
        return False


def _collect_suppressions(source: str) -> dict[int, set[str] | None]:
    suppressions: dict[int, set[str] | None] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_PATTERN.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressions[number] = None  # blanket: every checker
        else:
            suppressions[number] = {
                part.strip() for part in ids.split(",") if part.strip()
            }
    return suppressions


class Checker:
    """One machine-checked invariant.

    Subclasses set ``id`` (the registry key and suppression token),
    ``description`` (shown by ``repro analyze --list-checkers``) and
    ``severity``, then override :meth:`check` and/or :meth:`check_project`.
    """

    id: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Per-module pass; yield findings for this file."""
        return iter(())

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        """Project-wide pass over every parsed module; yield findings."""
        return iter(())

    def finding(
        self, module: SourceModule, node: ast.AST | int, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` (or a raw line number)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            checker=self.id,
            severity=self.severity,
            path=module.relpath,
            line=line,
            message=message,
        )


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.id:
        raise ValueError(f"checker {cls.__name__} has no id")
    if cls.id in _REGISTRY and _REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate checker id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def checker_ids() -> list[str]:
    return sorted(_REGISTRY)


def all_checkers(only: Iterable[str] | None = None) -> list[Checker]:
    """Instantiate registered checkers, optionally a named subset."""
    if only is None:
        selected = checker_ids()
    else:
        selected = sorted(set(only))
        unknown = [name for name in selected if name not in _REGISTRY]
        if unknown:
            raise KeyError(
                f"unknown checker(s) {unknown}; known: {checker_ids()}"
            )
    return [_REGISTRY[name]() for name in selected]


def suppressed_ids(module: SourceModule) -> set[str]:
    """Every checker id named in the module's suppression comments."""
    names: set[str] = set()
    for ids in module.suppressions.values():
        if ids:
            names.update(ids)
    return names
