"""Static-analysis framework enforcing the engine's unwritten contracts.

Eight PRs in, correctness of the scatter-gather engine rests on
conventions no type checker knows about: every :class:`ExecStats` counter
must flow through ``merge()`` into ``counters_snapshot()``, types crossing
the shard pickle boundary need ``__reduce__``, chunk loops must poll the
:class:`~repro.engine.physical.CancelToken`, and chunk-store renames must
be fsync-preceded.  This package makes those contracts machine-checked:

* :mod:`~repro.analysis.findings` — the :class:`Finding` model
  (checker id, severity, file:line, message);
* :mod:`~repro.analysis.base` — :class:`Checker` base + registry and the
  parsed :class:`SourceModule` handed to every checker;
* :mod:`~repro.analysis.runner` — walks a source tree, runs every
  registered checker (per-module and project-wide passes), applies
  ``# repro: ignore[ID]`` suppressions and returns an
  :class:`AnalysisReport`;
* :mod:`~repro.analysis.callgraph` — the project-wide call graph the
  interprocedural checkers (``lock-order``, ``blocking-under-lock``,
  ``async-reach``) resolve call targets against;
* :mod:`~repro.analysis.concurrency` — per-function lock/blocking
  summaries and the lock-acquisition-order graph built on top of it;
* :mod:`~repro.analysis.checkers` — the repo-specific checkers themselves.

Exposed as the ``repro analyze`` CLI subcommand and run in CI next to
ruff; the custom layer checks what off-the-shelf linting cannot.  The
runtime counterpart of the static lock-order pass is
``repro.util.lock_sanitizer`` (``REPRO_LOCK_SANITIZER=1``), which CI runs
the whole tier-1 suite under.
"""

from .base import Checker, SourceModule, all_checkers, checker_ids, register
from .callgraph import CallGraph
from .concurrency import ConcurrencyModel
from .findings import SEVERITIES, Finding
from .runner import AnalysisReport, analyze, iter_source_files, load_baseline

# Importing the package registers every built-in checker.
from . import checkers  # noqa: F401  (import-for-side-effect)

__all__ = [
    "AnalysisReport",
    "CallGraph",
    "Checker",
    "ConcurrencyModel",
    "Finding",
    "SEVERITIES",
    "SourceModule",
    "all_checkers",
    "analyze",
    "checker_ids",
    "iter_source_files",
    "load_baseline",
    "register",
]
