"""Per-function concurrency summaries over the project call graph.

This is the shared substrate of the three interprocedural checkers:

* which locks a function acquires directly (``with self._lock:`` and
  friends), and which locks were already held at each acquisition site;
* every call site, with the locks held around it and its resolved target
  (or ``None`` — the conservative unknown);
* every *intrinsically blocking* expression (sleeps, file and network
  I/O, future/pool waits, chunk fetches), tagged with the vocabulary it
  belongs to.

Lock identity is ``(owner, attr)`` — class-level, not instance-level —
mirroring both the ``_GUARDED`` convention and the runtime sanitizer's
``"ClassName._attr"`` naming, so the static order graph and the dynamic
one line up.  A ``with`` expression that cannot be traced to a known lock
attribute still becomes a (function-scoped) lock when its name contains
"lock"; anything else is ignored rather than guessed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .astutil import dotted_name
from .base import SourceModule
from .callgraph import CallGraph, FunctionInfo, Scope, shared_call_graph

__all__ = [
    "Acquisition",
    "BlockingSite",
    "ConcurrencyModel",
    "FunctionSummary",
    "KIND_ASYNC",
    "KIND_LOCK",
    "LockId",
    "LockedCall",
]

KIND_ASYNC = "async"  # blocks an event loop
KIND_LOCK = "lock"  # too slow to run under a _GUARDED lock

# Fully-dotted calls that block in any context.
_BLOCKING_DOTTED: Dict[str, str] = {
    "time.sleep": "time.sleep()",
    "os.system": "os.system()",
    "os.popen": "os.popen()",
    "os.wait": "os.wait()",
    "os.waitpid": "os.waitpid()",
}

# Dotted calls that are file I/O: fine in a worker thread, but neither on
# the event loop nor under a guarded lock.
_FILE_IO_DOTTED: Dict[str, str] = {
    "os.fsync": "os.fsync()",
    "os.replace": "os.replace()",
    "os.rename": "os.rename()",
    "os.makedirs": "os.makedirs()",
    "os.listdir": "os.listdir()",
    "os.remove": "os.remove()",
    "os.unlink": "os.unlink()",
    "shutil.rmtree": "shutil.rmtree()",
    "shutil.copytree": "shutil.copytree()",
    "shutil.move": "shutil.move()",
    "np.save": "np.save()",
    "np.load": "np.load()",
    "numpy.save": "numpy.save()",
    "numpy.load": "numpy.load()",
}

# Any call rooted in one of these modules does network / process I/O.
_BLOCKING_MODULE_ROOTS = ("socket", "subprocess", "requests", "urllib")

# Engine chunk-fetch entry points: remote fetch + decode, the slowest
# thing a thread can do; never acceptable under a lock or on the loop.
_FETCH_METHODS = {
    "load_chunk",
    "load_chunk_range",
    "get_or_load",
    "urlopen",
    "read_samples",
    "read_samples_in_range",
}

# Methods that wait on other threads/processes: poison under a lock, but
# routine in the sync helpers the serving layer runs in executors.
_WAIT_METHODS = {"result", "submit", "shutdown", "wait"}


def _call_blocking(call: ast.Call) -> Optional[Tuple[str, FrozenSet[str]]]:
    """``(description, kinds)`` when the call is intrinsically blocking."""
    name = dotted_name(call.func)
    both = frozenset((KIND_ASYNC, KIND_LOCK))
    if name in _BLOCKING_DOTTED:
        return _BLOCKING_DOTTED[name], both
    if name in _FILE_IO_DOTTED:
        return _FILE_IO_DOTTED[name], both
    root = name.split(".", 1)[0]
    if root in _BLOCKING_MODULE_ROOTS and "." in name:
        return f"{root} call {name}()", both
    if isinstance(call.func, ast.Name):
        if call.func.id == "open":
            return "open()", both
        if call.func.id == "input":
            return "input()", frozenset((KIND_ASYNC,))
    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method in _FETCH_METHODS:
            return f"chunk fetch .{method}()", both
        if method in _WAIT_METHODS:
            if method == "shutdown" and _shutdown_nowait(call):
                return None
            return f".{method}()", frozenset((KIND_LOCK,))
    return None


def _shutdown_nowait(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if (
            keyword.arg == "wait"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is False
        ):
            return True
    return False


@dataclass(frozen=True, order=True)
class LockId:
    """Class-level identity of a lock (``owner`` is a class or function)."""

    owner: str
    attr: str

    @property
    def name(self) -> str:
        return f"{self.owner}.{self.attr}"


@dataclass
class Acquisition:
    """One ``with <lock>:`` site, with the locks already held around it."""

    lock: LockId
    held: Tuple[LockId, ...]
    line: int


@dataclass
class LockedCall:
    """One call site; ``callee`` is None when resolution failed."""

    callee: Optional[str]
    held: Tuple[LockId, ...]
    line: int
    text: str


@dataclass
class BlockingSite:
    """An intrinsically blocking expression inside a function body."""

    line: int
    desc: str
    kinds: FrozenSet[str]
    held: Tuple[LockId, ...]


@dataclass
class FunctionSummary:
    fn: FunctionInfo
    acquires: List[Acquisition] = field(default_factory=list)
    calls: List[LockedCall] = field(default_factory=list)
    blocking: List[BlockingSite] = field(default_factory=list)


@dataclass
class OrderEdge:
    """``first`` was held while ``second`` was acquired, somewhere."""

    first: LockId
    second: LockId
    fn_key: str
    line: int
    via: Optional[str]  # callee chain root for interprocedural edges


class ConcurrencyModel:
    """Summaries for every function, plus lock metadata and fixpoints."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, FunctionSummary] = {}
        self.reentrant: set[LockId] = set()
        self.guarded: set[LockId] = set()
        self._transitive: Optional[Dict[str, FrozenSet[LockId]]] = None
        for cls in graph.classes.values():
            for attr, is_rlock in cls.lock_attrs.items():
                if is_rlock:
                    self.reentrant.add(LockId(cls.name, attr))
            for lock_attr in cls.guarded:
                self.guarded.add(LockId(cls.name, lock_attr))
        for fn in graph.iter_functions():
            self.summaries[fn.key] = self._summarize(fn)

    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "ConcurrencyModel":
        return cls(shared_call_graph(modules))

    # -- lock expression resolution ----------------------------------------

    def resolve_lock(
        self, expr: ast.AST, scope: Scope
    ) -> Optional[LockId]:
        if isinstance(expr, ast.Call):
            return None  # ``with open(...)``, ``with suppress(...)``
        chain = dotted_name(expr)
        if not chain:
            return None
        parts = chain.split(".")
        if len(parts) == 1:
            name = parts[0]
            if "lock" in name.lower():
                return LockId(scope.function.key, name)
            return None
        receiver, attr = ".".join(parts[:-1]), parts[-1]
        receiver_class = self.graph._chain_class(scope, receiver)
        if receiver_class is not None:
            cls = self.graph.classes.get(receiver_class)
            if cls is not None and (
                attr in cls.lock_attrs or "lock" in attr.lower()
            ):
                return LockId(cls.name, attr)
            return None
        if "lock" in attr.lower():
            # Unknown receiver: keep the lock function-scoped so two
            # unrelated ``x.lock`` chains never alias into one identity.
            return LockId(scope.function.key, chain)
        return None

    # -- per-function scan -------------------------------------------------

    def _summarize(self, fn: FunctionInfo) -> FunctionSummary:
        scope = self.graph.scope(fn)
        summary = FunctionSummary(fn=fn)
        self._scan(summary, scope, list(fn.node.body), ())
        return summary

    def _scan(
        self,
        summary: FunctionSummary,
        scope: Scope,
        stmts: List[ast.stmt],
        held: Tuple[LockId, ...],
    ) -> None:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # runs later, not under these locks
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[LockId] = []
                for item in stmt.items:
                    self._record_expr(
                        summary, scope, item.context_expr, held
                    )
                    lock = self.resolve_lock(item.context_expr, scope)
                    if lock is not None:
                        summary.acquires.append(
                            Acquisition(
                                lock=lock,
                                held=held + tuple(acquired),
                                line=stmt.lineno,
                            )
                        )
                        acquired.append(lock)
                self._scan(summary, scope, stmt.body, held + tuple(acquired))
                continue
            self._record_stmt_exprs(summary, scope, stmt, held)
            for body in _nested_bodies(stmt):
                self._scan(summary, scope, body, held)

    def _record_stmt_exprs(
        self,
        summary: FunctionSummary,
        scope: Scope,
        stmt: ast.stmt,
        held: Tuple[LockId, ...],
    ) -> None:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                continue  # nested statements are walked by _scan
            self._record_expr(summary, scope, child, held)

    def _record_expr(
        self,
        summary: FunctionSummary,
        scope: Scope,
        expr: ast.AST,
        held: Tuple[LockId, ...],
    ) -> None:
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, ast.stmt) and node is not expr:
                continue
            if isinstance(node, ast.Call):
                callee = self.graph.resolve_call(node, scope)
                summary.calls.append(
                    LockedCall(
                        callee=callee.key if callee is not None else None,
                        held=held,
                        line=node.lineno,
                        text=dotted_name(node.func) or "<dynamic>",
                    )
                )
                blocking = _call_blocking(node)
                if blocking is not None:
                    desc, kinds = blocking
                    summary.blocking.append(
                        BlockingSite(
                            line=node.lineno,
                            desc=desc,
                            kinds=kinds,
                            held=held,
                        )
                    )
            stack.extend(ast.iter_child_nodes(node))

    # -- fixpoints ---------------------------------------------------------

    def transitive_acquires(self) -> Dict[str, FrozenSet[LockId]]:
        """Locks each function may acquire, directly or via callees."""
        if self._transitive is not None:
            return self._transitive
        current: Dict[str, set[LockId]] = {
            key: {acq.lock for acq in summary.acquires}
            for key, summary in self.summaries.items()
        }
        changed = True
        while changed:
            changed = False
            for key, summary in self.summaries.items():
                mine = current[key]
                before = len(mine)
                for call in summary.calls:
                    if call.callee is not None and call.callee in current:
                        mine |= current[call.callee]
                if len(mine) != before:
                    changed = True
        self._transitive = {
            key: frozenset(locks) for key, locks in current.items()
        }
        return self._transitive

    def acquire_path(self, start: str, lock: LockId) -> List[str]:
        """Shortest call chain from ``start`` to a direct acquirer of
        ``lock`` (both ends included); empty when unreachable."""
        if any(
            acq.lock == lock for acq in self.summaries[start].acquires
        ):
            return [start]
        trans = self.transitive_acquires()
        parents: Dict[str, str] = {}
        queue: List[str] = [start]
        seen = {start}
        while queue:
            here = queue.pop(0)
            for call in self.summaries[here].calls:
                callee = call.callee
                if callee is None or callee in seen:
                    continue
                if callee not in self.summaries:
                    continue
                if lock not in trans.get(callee, frozenset()):
                    continue
                parents[callee] = here
                if any(
                    acq.lock == lock
                    for acq in self.summaries[callee].acquires
                ):
                    path = [callee]
                    while path[-1] in parents:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(callee)
                queue.append(callee)
        return []

    def order_edges(self) -> Dict[Tuple[LockId, LockId], OrderEdge]:
        """Every observed ``held -> acquired`` pair with one witness."""
        trans = self.transitive_acquires()
        edges: Dict[Tuple[LockId, LockId], OrderEdge] = {}

        def add(
            first: LockId,
            second: LockId,
            fn_key: str,
            line: int,
            via: Optional[str],
        ) -> None:
            if first == second:
                return
            edges.setdefault(
                (first, second),
                OrderEdge(
                    first=first,
                    second=second,
                    fn_key=fn_key,
                    line=line,
                    via=via,
                ),
            )

        for key, summary in self.summaries.items():
            for acq in summary.acquires:
                for h in acq.held:
                    add(h, acq.lock, key, acq.line, None)
            for call in summary.calls:
                if call.callee is None or not call.held:
                    continue
                for lock in trans.get(call.callee, frozenset()):
                    if lock in call.held:
                        continue
                    for h in call.held:
                        add(h, lock, key, call.line, call.callee)
        return edges

    # -- iteration ---------------------------------------------------------

    def iter_summaries(self) -> Iterator[FunctionSummary]:
        yield from self.summaries.values()


def _nested_bodies(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    """Statement lists nested directly inside ``stmt`` (if/for/try/...)."""
    for name in ("body", "orelse", "finalbody"):
        block = getattr(stmt, name, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            yield block
    for handler in getattr(stmt, "handlers", ()) or ():
        yield handler.body
