"""durability: write-then-rename commits fsync payloads and directory.

PR 5's power-loss hardening established the commit discipline for every
atomic-rename publish in the tree: payload files are fsynced as written,
the staging directory is fsynced, and only then does the rename make the
entry visible (with the parent directory synced after).  A rename without
the preceding fsyncs can "commit" an entry whose payload bytes are still
in the page cache — after a power loss the manifest exists but points at
zero-length or torn files, the exact corruption the chunk store's
quarantine path exists to survive.

The rule: any function that both *writes files* (``open`` with a writing
mode, ``np.save``, ``json.dump``) and *publishes by rename*
(``os.rename``/``os.replace`` or the repo's ``_replace_dir`` helper) must
call a file-level fsync (``os.fsync``/``_fsync_file``) before the first
rename, plus a directory-level fsync (``_fsync_dir``) somewhere in the
commit sequence — before the rename when publishing a staged directory,
after it when making a same-directory file rename durable.  Functions
that only shuffle already-committed directories (sweeps, quarantines,
the replace helper itself) write nothing and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name, calls_in, dotted_name, functions_in
from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["DurabilityChecker"]

RENAME_DOTTED = {"os.rename", "os.replace"}
RENAME_HELPERS = {"_replace_dir", "replace_dir", "atomic_replace"}
FILE_SYNC = {"fsync", "_fsync_file", "fsync_file"}
DIR_SYNC = {"_fsync_dir", "fsync_dir"}
WRITE_CALLS = {"save", "dump", "savez", "store_table"}
WRITING_MODES = ("w", "a", "x", "+")


def _is_writing_open(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
        return False
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    for keyword in call.keywords:
        if keyword.arg == "mode" and isinstance(keyword.value, ast.Constant):
            mode = keyword.value.value
    return isinstance(mode, str) and any(
        flag in mode for flag in WRITING_MODES
    )


@register
class DurabilityChecker(Checker):
    id = "durability"
    description = (
        "functions that write files and publish them by rename fsync "
        "the payloads before the rename and the directory as part of "
        "the commit"
    )
    severity = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func in functions_in(module.tree):
            yield from self._check_function(module, func)

    def _check_function(
        self, module: SourceModule, func: ast.FunctionDef
    ) -> Iterator[Finding]:
        renames: list[ast.Call] = []
        writes = False
        file_synced_lines: list[int] = []
        dir_synced_lines: list[int] = []
        for call in calls_in(func):
            dotted = dotted_name(call.func)
            name = call_name(call)
            if dotted in RENAME_DOTTED or name in RENAME_HELPERS:
                renames.append(call)
            elif _is_writing_open(call) or name in WRITE_CALLS:
                writes = True
            elif name in FILE_SYNC:
                file_synced_lines.append(call.lineno)
            elif name in DIR_SYNC:
                dir_synced_lines.append(call.lineno)
        if not renames or not writes:
            return
        first_rename = min(call.lineno for call in renames)
        if not any(line < first_rename for line in file_synced_lines):
            yield self.finding(
                module,
                min(renames, key=lambda call: call.lineno),
                f"{func.name}() writes files and publishes them by "
                "rename without fsyncing the payload files first; a "
                "power loss can commit an entry with torn or zero-length "
                "contents",
            )
        if not dir_synced_lines:
            yield self.finding(
                module,
                min(renames, key=lambda call: call.lineno),
                f"{func.name}() publishes written files by rename "
                "without any directory-level fsync; the rename itself "
                "may not be durable when the call returns",
            )
