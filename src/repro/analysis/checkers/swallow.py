"""swallow: no bare ``except:`` and no silent broad-except handlers.

A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and is
always flagged.  ``except Exception:`` (or ``BaseException``) is flagged
only when the handler *does nothing* — its body is just ``pass``,
``return``, ``continue`` or ``...`` — because a silent swallow hides
engine bugs behind "best effort".  Handlers that account the failure
(counter bump, log, re-raise, fallback computation) are fine; genuinely
intentional probes carry a ``# repro: ignore[swallow]`` with a reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["SwallowChecker"]

BROAD = {"Exception", "BaseException"}


def _names(expression: ast.expr | None) -> set[str]:
    if expression is None:
        return set()
    if isinstance(expression, ast.Tuple):
        found: set[str] = set()
        for element in expression.elts:
            found |= _names(element)
        return found
    if isinstance(expression, ast.Name):
        return {expression.id}
    if isinstance(expression, ast.Attribute):
        return {expression.attr}
    return set()


def _is_silent(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Return)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring / ellipsis placeholder
        return False
    return True


@register
class SwallowChecker(Checker):
    id = "swallow"
    description = (
        "no bare `except:`; broad `except Exception:` handlers must do "
        "something with the failure"
    )
    severity = "warning"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches KeyboardInterrupt and "
                    "SystemExit; name the exceptions (or at least "
                    "`except Exception:` with handling)",
                )
                continue
            if _names(node.type) & BROAD and _is_silent(node.body):
                yield self.finding(
                    module,
                    node,
                    "broad except silently swallows the failure; narrow "
                    "the exception types, account the failure, or "
                    "suppress with a reason",
                )
