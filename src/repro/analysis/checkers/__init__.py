"""The repo-specific checkers; importing this package registers them all."""

from .async_blocking import AsyncBlockingChecker
from .async_reach import AsyncReachChecker
from .blocking_under_lock import BlockingUnderLockChecker
from .cancellation import CancellationChecker
from .counter_plumbing import CounterPlumbingChecker
from .durability import DurabilityChecker
from .lock_discipline import LockDisciplineChecker
from .lock_order import LockOrderChecker
from .pickle_boundary import PickleBoundaryChecker
from .swallow import SwallowChecker

__all__ = [
    "AsyncBlockingChecker",
    "AsyncReachChecker",
    "BlockingUnderLockChecker",
    "CancellationChecker",
    "CounterPlumbingChecker",
    "DurabilityChecker",
    "LockDisciplineChecker",
    "LockOrderChecker",
    "PickleBoundaryChecker",
    "SwallowChecker",
]
