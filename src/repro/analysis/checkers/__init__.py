"""The repo-specific checkers; importing this package registers them all."""

from .async_blocking import AsyncBlockingChecker
from .cancellation import CancellationChecker
from .counter_plumbing import CounterPlumbingChecker
from .durability import DurabilityChecker
from .lock_discipline import LockDisciplineChecker
from .pickle_boundary import PickleBoundaryChecker
from .swallow import SwallowChecker

__all__ = [
    "AsyncBlockingChecker",
    "CancellationChecker",
    "CounterPlumbingChecker",
    "DurabilityChecker",
    "LockDisciplineChecker",
    "PickleBoundaryChecker",
    "SwallowChecker",
]
