"""async-reach: coroutines must not reach blocking sync calls via helpers.

PR 9's ``async-blocking`` checker is intra-function: it sees ``open()``
written directly inside an ``async def``.  This checker is its
interprocedural generalization — a coroutine that calls an innocent sync
helper which, two frames down, sleeps or does file/socket I/O blocks the
event loop exactly the same way.

Traversal follows resolved *sync* call targets only: awaited coroutines
are analyzed on their own, and sync functions passed (not called) —
``run_in_executor(pool, self._run_query, ...)`` — never create a call
edge, so the legitimate executor escape hatch stays silent.  Direct
blocking inside the coroutine body itself is left to ``async-blocking``;
this checker reports only sites reached through at least one call edge,
anchored at the coroutine's call into the offending chain.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..base import Checker, SourceModule, register
from ..concurrency import KIND_ASYNC, ConcurrencyModel
from ..findings import Finding

__all__ = ["AsyncReachChecker"]


@register
class AsyncReachChecker(Checker):
    id = "async-reach"
    description = (
        "no blocking sync call (sleep, file/socket/process I/O, chunk "
        "fetch) is transitively reachable from a coroutine body"
    )
    severity = "error"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        model = ConcurrencyModel.build(modules)
        blocking_below = self._transitive_blocking(model)
        for summary in model.iter_summaries():
            fn = summary.fn
            if not fn.is_async:
                continue
            for call in summary.calls:
                callee = call.callee
                if callee is None:
                    continue
                target = model.summaries.get(callee)
                if target is None or target.fn.is_async:
                    continue
                below = blocking_below.get(callee)
                if below is None:
                    continue
                desc, chain, line = below
                via = " -> ".join(
                    model.summaries[key].fn.qualname for key in chain
                )
                site_module = model.summaries[chain[-1]].fn.module
                yield self.finding(
                    fn.module,
                    call.line,
                    f"coroutine {fn.qualname} reaches blocking {desc} "
                    f"({site_module.relpath}:{line}) via sync call chain "
                    f"{via}",
                )

    @staticmethod
    def _transitive_blocking(
        model: ConcurrencyModel,
    ) -> Dict[str, Tuple[str, Tuple[str, ...], int]]:
        """Blocking reachable from each *sync* function: (desc, chain, line).

        The chain ends at the function whose body contains the blocking
        expression; ``line`` is that expression's line.  Async functions
        never appear (they are not traversed through).
        """
        found: Dict[str, Tuple[str, Tuple[str, ...], int]] = {}
        for key, summary in model.summaries.items():
            if summary.fn.is_async:
                continue
            for site in summary.blocking:
                if KIND_ASYNC in site.kinds:
                    found[key] = (site.desc, (key,), site.line)
                    break
        changed = True
        while changed:
            changed = False
            for key, summary in model.summaries.items():
                if key in found or summary.fn.is_async:
                    continue
                best: Optional[Tuple[str, Tuple[str, ...], int]] = None
                for call in summary.calls:
                    callee = call.callee
                    if callee is None or callee not in found:
                        continue
                    target = model.summaries.get(callee)
                    if target is not None and target.fn.is_async:
                        continue
                    desc, chain, line = found[callee]
                    candidate = (desc, (key, *chain), line)
                    if best is None or len(candidate[1]) < len(best[1]):
                        best = candidate
                if best is not None:
                    found[key] = best
                    changed = True
        return found
