"""counter-plumbing: every stats field flows to the monitoring surfaces.

The monitoring contract since PR 6: ``repro cache --json`` and the serving
``/stats`` endpoint both render :meth:`SommelierDB.counters_snapshot`, and
the facade counters are accumulated via ``SommelierStats.merge``.  A field
added to :class:`ExecStats` or :class:`SommelierStats` but forgotten in
``reset()``/``merge()`` (or left out of the ``facade`` block) silently
reports zero — or worse, leaks a stale value across queries — and the two
surfaces drift.  This checker makes the plumbing mandatory:

* every ``ExecStats`` field must be reassigned in ``reset()`` and
  accumulated in ``merge()``;
* every ``SommelierStats`` field must be accumulated in ``merge()`` and
  appear as a key of the ``snapshot["facade"]`` dict built by
  ``counters_snapshot()`` in the same module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import is_self_attribute
from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["CounterPlumbingChecker"]

EXEC_STATS = "ExecStats"
FACADE_STATS = "SommelierStats"


def _declared_fields(cls: ast.ClassDef) -> list[tuple[str, int]]:
    """Dataclass-style annotated fields declared at class top level."""
    fields = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append((stmt.target.id, stmt.lineno))
    return fields


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _self_attributes(func: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func):
        attr = is_self_attribute(node)
        if attr is not None:
            names.add(attr)
    return names


def _facade_keys(module: SourceModule) -> set[str] | None:
    """Keys of the ``<anything>["facade"] = {...}`` dict literal, if any."""
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.slice, ast.Constant)
            and target.slice.value == "facade"
            and isinstance(node.value, ast.Dict)
        ):
            continue
        return {
            key.value
            for key in node.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
    return None


@register
class CounterPlumbingChecker(Checker):
    id = "counter-plumbing"
    description = (
        "every ExecStats/SommelierStats field is reset, merged and "
        "reachable from counters_snapshot()'s facade block"
    )
    severity = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == EXEC_STATS:
                yield from self._check_stats_class(
                    module, node, methods=("reset", "merge")
                )
            elif node.name == FACADE_STATS:
                yield from self._check_stats_class(
                    module, node, methods=("merge",)
                )
                yield from self._check_facade(module, node)

    def _check_stats_class(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        methods: tuple[str, ...],
    ) -> Iterator[Finding]:
        fields = _declared_fields(cls)
        for method_name in methods:
            method = _method(cls, method_name)
            if method is None:
                yield self.finding(
                    module,
                    cls,
                    f"{cls.name} declares counters but has no "
                    f"{method_name}() to plumb them",
                )
                continue
            touched = _self_attributes(method)
            for name, line in fields:
                if name not in touched:
                    yield self.finding(
                        module,
                        line,
                        f"{cls.name}.{name} is never touched by "
                        f"{cls.name}.{method_name}(); the counter would "
                        "silently drop (or leak) on aggregation",
                    )

    def _check_facade(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        keys = _facade_keys(module)
        if keys is None:
            yield self.finding(
                module,
                cls,
                f"{cls.name} is declared but no counters_snapshot() "
                "facade block ('snapshot[\"facade\"] = {...}') exists in "
                "this module; the counters are unreachable from "
                "monitoring surfaces",
            )
            return
        for name, line in _declared_fields(cls):
            if name not in keys:
                yield self.finding(
                    module,
                    line,
                    f"{cls.name}.{name} is missing from the "
                    "counters_snapshot() facade block; 'repro cache "
                    "--json' and serving /stats would not report it",
                )
