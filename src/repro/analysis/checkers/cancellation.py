"""cancellation: chunk-fetch loops poll the cancel token every iteration.

The serving front end's request timeouts (PR 6) and the coordinator's
cancel sentinel (PR 8) both rely on one engine convention: any loop that
fetches or decodes chunks in scheduled order checks for cancellation at
every chunk boundary.  A loop that forgets the poll turns a 30s timeout
into "however long the remaining chunks take" while holding a session
pool slot — the exact failure admission control exists to prevent.

Heuristic, tuned to the engine's vocabulary: a ``for``/``async for``
loop qualifies when its iterable mentions a fetch schedule
(``schedule``, ``fetch_order``, ``as_completed``), and a ``while`` loop
when its test does; in both cases the body must also perform chunk
materialization (``get_or_load``, ``load_chunk``, ``_fetch_one``,
``decode``/``produce`` helpers, or draining ``future.result()``).  Such a
loop must call one of the cancellation polls (``check_cancelled``,
``raise_if_cancelled``, ``_check_cancelled``) somewhere in its body.
Claim/bookkeeping sweeps over the same schedules fetch nothing and are
deliberately not flagged, and neither are ``while`` loops that gate on
other conditions (draining ``while pending:`` gathers poll explicitly
and carry the schedule word only when they iterate one).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..astutil import call_name, calls_in
from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["CancellationChecker"]

SCHEDULE_PATTERN = re.compile(r"schedule|fetch_order|as_completed")
FETCH_CALLS = {
    "get_or_load",
    "load_chunk",
    "load_chunk_range",
    "_fetch_one",
    "decode",
    "decode_chunk_to_store",
    "produce",
    "result",
}
POLL_CALLS = {"check_cancelled", "raise_if_cancelled", "_check_cancelled"}


@register
class CancellationChecker(Checker):
    id = "cancellation"
    description = (
        "chunk-iteration loops over fetch schedules poll the cancel "
        "token at every chunk boundary"
    )
    severity = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                guard = module.segment(node.iter)
            elif isinstance(node, ast.While):
                guard = module.segment(node.test)
            else:
                continue
            if not SCHEDULE_PATTERN.search(guard):
                continue
            body_calls = {
                call_name(call)
                for stmt in node.body
                for call in calls_in(stmt)
            }
            if not body_calls & FETCH_CALLS:
                continue  # claim/bookkeeping sweep: nothing to cancel
            if body_calls & POLL_CALLS:
                continue
            kind = (
                "while loop on"
                if isinstance(node, ast.While)
                else "chunk loop over"
            )
            yield self.finding(
                module,
                node,
                f"{kind} {guard!r} fetches without polling the cancel "
                "token; a timed-out or cancelled query would keep "
                "fetching every remaining chunk",
            )
