"""pickle-boundary: identity-compared singletons must survive pickling.

PR 8's ``DataType`` bug, generalized: the engine compares certain
module-level singletons by identity (``fld.dtype is STRING``), and shard
tasks/results carry objects referencing them across a spawn-pool pickle
boundary.  Default pickling materializes a *fresh* instance in the child
(and again in the parent on the way back), so every identity comparison
silently fails — exactly how sharded scans lost their type dispatch until
``DataType.__reduce__`` was added by hand.

The rule, checked project-wide: a class defined in the analyzed tree whose
instances are bound to module-level singleton names that are identity-
compared (``is`` / ``is not``) anywhere in the tree must define
``__reduce__`` or ``__reduce_ex__`` resolving back to the singleton.
``enum.Enum`` subclasses already pickle to identity and are allowlisted,
as is anything named in ``SAFE_CLASSES``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["PickleBoundaryChecker"]

REDUCE_METHODS = {"__reduce__", "__reduce_ex__"}
ENUM_BASES = {"Enum", "IntEnum", "StrEnum", "IntFlag", "Flag"}


def _base_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _defines_reduce(cls: ast.ClassDef) -> bool:
    return any(
        isinstance(stmt, ast.FunctionDef) and stmt.name in REDUCE_METHODS
        for stmt in cls.body
    )


@register
class PickleBoundaryChecker(Checker):
    id = "pickle-boundary"
    description = (
        "identity-compared module-level singletons define __reduce__ so "
        "they survive the shard-worker pickle boundary"
    )
    severity = "error"

    # Known-safe class names (pickle already preserves their identity).
    SAFE_CLASSES: frozenset[str] = frozenset()

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        # singleton name -> (module, class name, class node, safe)
        singletons: dict[str, tuple[SourceModule, str, ast.ClassDef, bool]] = {}
        for module in modules:
            classes: dict[str, ast.ClassDef] = {
                node.name: node
                for node in module.tree.body
                if isinstance(node, ast.ClassDef)
            }
            for node in module.tree.body:
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                ):
                    continue
                cls = classes.get(node.value.func.id)
                if cls is None:
                    continue
                safe = (
                    _defines_reduce(cls)
                    or bool(_base_names(cls) & ENUM_BASES)
                    or cls.name in self.SAFE_CLASSES
                )
                singletons[node.targets[0].id] = (
                    module, cls.name, cls, safe
                )
        if not singletons:
            return

        compared: dict[str, SourceModule] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
                ):
                    continue
                for operand in (node.left, *node.comparators):
                    if (
                        isinstance(operand, ast.Name)
                        and operand.id in singletons
                    ):
                        compared.setdefault(operand.id, module)

        reported: set[str] = set()
        for name, user in sorted(compared.items()):
            module, class_name, cls, safe = singletons[name]
            if safe or class_name in reported:
                continue
            reported.add(class_name)
            yield self.finding(
                module,
                cls,
                f"{class_name} instances (e.g. singleton {name!r}, "
                f"identity-compared in {user.relpath}) cross pickle "
                "boundaries as fresh objects; define __reduce__ to "
                "resolve back to the module singleton",
            )
