"""lock-order: the global lock-acquisition graph must stay acyclic.

Interprocedural: held-lock sets are propagated along resolved call edges
from every ``with <lock>:`` site (see :mod:`repro.analysis.concurrency`),
producing edges ``A -> B`` meaning "some thread may hold A while acquiring
B".  Two threads taking the same pair of locks in opposite orders is the
classic deadlock, so any cycle in this graph is reported — with a witness
path for both directions, down to the function that performs the inner
acquisition.

Also reported: re-acquiring a non-reentrant lock the caller already holds
(directly, or through a resolved callee) — a guaranteed self-deadlock
rather than a racy one.

The runtime counterpart is ``repro.util.lock_sanitizer``
(``REPRO_LOCK_SANITIZER=1``), which enforces the same invariant over the
orders actually observed while the test suite runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..base import Checker, SourceModule, register
from ..concurrency import ConcurrencyModel, LockId, OrderEdge
from ..findings import Finding

__all__ = ["LockOrderChecker"]


def _strongly_connected(
    nodes: Set[LockId], edges: Dict[Tuple[LockId, LockId], OrderEdge]
) -> List[List[LockId]]:
    """Tarjan's SCC, iterative; returns components of size > 1."""
    adjacency: Dict[LockId, List[LockId]] = {n: [] for n in nodes}
    for a, b in edges:
        adjacency[a].append(b)
    index: Dict[LockId, int] = {}
    lowlink: Dict[LockId, int] = {}
    on_stack: Set[LockId] = set()
    stack: List[LockId] = []
    counter = 0
    components: List[List[LockId]] = []

    for root in sorted(nodes):
        if root in index:
            continue
        work: List[Tuple[LockId, int]] = [(root, 0)]
        while work:
            node, child_index = work.pop()
            if child_index == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = adjacency[node]
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index:
                    work.append((node, child_index))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: List[LockId] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


@register
class LockOrderChecker(Checker):
    id = "lock-order"
    description = (
        "the interprocedural lock-acquisition-order graph has no cycles "
        "(potential deadlocks) and no non-reentrant re-acquisition"
    )
    severity = "error"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        model = ConcurrencyModel.build(modules)
        yield from self._self_deadlocks(model)
        yield from self._cycles(model)

    # -- self-deadlocks ----------------------------------------------------

    def _self_deadlocks(self, model: ConcurrencyModel) -> Iterator[Finding]:
        trans = model.transitive_acquires()
        for summary in model.iter_summaries():
            fn = summary.fn
            for acq in summary.acquires:
                if acq.lock in acq.held and acq.lock not in model.reentrant:
                    yield self.finding(
                        fn.module,
                        acq.line,
                        f"{fn.qualname} re-acquires non-reentrant lock "
                        f"{acq.lock.name} it already holds "
                        "(guaranteed self-deadlock)",
                    )
            for call in summary.calls:
                if call.callee is None or not call.held:
                    continue
                for lock in call.held:
                    if lock in model.reentrant:
                        continue
                    if lock in trans.get(call.callee, frozenset()):
                        chain = model.acquire_path(call.callee, lock)
                        via = " -> ".join(
                            model.summaries[key].fn.qualname for key in chain
                        )
                        yield self.finding(
                            fn.module,
                            call.line,
                            f"{fn.qualname} holds non-reentrant lock "
                            f"{lock.name} while calling {call.text}(), "
                            f"which may re-acquire it via {via} "
                            "(potential self-deadlock)",
                        )

    # -- order cycles ------------------------------------------------------

    def _cycles(self, model: ConcurrencyModel) -> Iterator[Finding]:
        edges = model.order_edges()
        nodes: Set[LockId] = set()
        for a, b in edges:
            nodes.add(a)
            nodes.add(b)
        for component in _strongly_connected(nodes, edges):
            members = set(component)
            scc_edges = {
                pair: edge
                for pair, edge in edges.items()
                if pair[0] in members and pair[1] in members
            }
            # Pick one forward edge and the shortest opposing path back;
            # together they are the two witnesses of the inversion.
            first_pair = sorted(scc_edges)[0]
            forward = scc_edges[first_pair]
            backward_path = self._edge_path(
                scc_edges, first_pair[1], first_pair[0]
            )
            witnesses = [self._render_edge(model, forward)]
            witnesses.extend(
                self._render_edge(model, scc_edges[pair])
                for pair in backward_path
            )
            order = " -> ".join(lock.name for lock in component)
            yield self.finding(
                model.summaries[forward.fn_key].fn.module,
                forward.line,
                "potential deadlock: lock-order cycle between "
                f"{order}; " + "; ".join(witnesses),
            )

    @staticmethod
    def _edge_path(
        edges: Dict[Tuple[LockId, LockId], OrderEdge],
        start: LockId,
        goal: LockId,
    ) -> List[Tuple[LockId, LockId]]:
        """BFS over edges from ``start`` back to ``goal``."""
        parents: Dict[LockId, Tuple[LockId, LockId]] = {}
        queue = [start]
        seen = {start}
        while queue:
            here = queue.pop(0)
            for (a, b), _ in edges.items():
                if a != here or b in seen:
                    continue
                parents[b] = (a, b)
                if b == goal:
                    path = [parents[b]]
                    node = a
                    while node != start:
                        path.append(parents[node])
                        node = parents[node][0]
                    return list(reversed(path))
                seen.add(b)
                queue.append(b)
        return []

    def _render_edge(
        self, model: ConcurrencyModel, edge: OrderEdge
    ) -> str:
        fn = model.summaries[edge.fn_key].fn
        where = f"{fn.module.relpath}:{edge.line}"
        if edge.via is None:
            return (
                f"{fn.qualname} holds {edge.first.name} while acquiring "
                f"{edge.second.name} ({where})"
            )
        chain = model.acquire_path(edge.via, edge.second)
        via = " -> ".join(
            model.summaries[key].fn.qualname for key in chain
        )
        return (
            f"{fn.qualname} holds {edge.first.name} and reaches an "
            f"acquisition of {edge.second.name} via {via} ({where})"
        )
