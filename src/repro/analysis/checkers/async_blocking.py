"""async-blocking: no blocking calls on the serving event loop.

The serving front end (PR 6) keeps exactly ``pool_size`` queries executing
on a thread pool; everything on the event loop must stay non-blocking or
admission control, timeouts and drain all stall together.  This checker
flags the classic foot-guns inside ``async def`` bodies:

* ``time.sleep`` (use ``asyncio.sleep``);
* the ``open()`` builtin and ``socket`` module calls (use executors or
  asyncio streams);
* ``subprocess``/``os.system``-style process calls;
* ``.acquire()``/``.wait()`` that is not awaited — a bare
  ``lock.acquire()`` is either a blocking ``threading`` primitive or a
  forgotten ``await`` on an asyncio one; both are bugs.

Sync helper functions *defined inside* a coroutine are skipped: they are
the usual payload handed to ``run_in_executor``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import call_name, dotted_name, walk_skipping_nested_functions
from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["AsyncBlockingChecker"]

BLOCKING_DOTTED = {
    "time.sleep": "time.sleep() blocks the event loop; use asyncio.sleep()",
    "os.system": "os.system() blocks the event loop; use an executor",
    "os.popen": "os.popen() blocks the event loop; use an executor",
    "os.wait": "os.wait() blocks the event loop; use an executor",
    "os.waitpid": "os.waitpid() blocks the event loop; use an executor",
}
BLOCKING_MODULES = {
    "socket": "blocking socket I/O inside a coroutine; use asyncio streams",
    "subprocess": (
        "subprocess calls block the event loop; use "
        "asyncio.create_subprocess_exec or an executor"
    ),
    "requests": (
        "requests performs blocking I/O; run it in an executor"
    ),
}
# Methods that block when not awaited (threading primitives) and return an
# un-awaited coroutine when they are asyncio ones — wrong either way.
MUST_AWAIT = {"acquire"}


@register
class AsyncBlockingChecker(Checker):
    id = "async-blocking"
    description = (
        "no time.sleep, blocking file/socket/process I/O, or bare "
        "lock.acquire() inside async def bodies"
    )
    severity = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_coroutine(module, node)

    def _check_coroutine(
        self, module: SourceModule, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        awaited: set[int] = {
            id(node.value)
            for node in walk_skipping_nested_functions(func)
            if isinstance(node, ast.Await)
        }
        for node in walk_skipping_nested_functions(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            message = BLOCKING_DOTTED.get(dotted)
            if message is None:
                root = dotted.split(".", 1)[0]
                if "." in dotted and root in BLOCKING_MODULES:
                    message = BLOCKING_MODULES[root]
            if message is None and isinstance(node.func, ast.Name):
                if node.func.id == "open":
                    message = (
                        "open() performs blocking file I/O inside "
                        f"coroutine {func.name!r}; use an executor"
                    )
                elif node.func.id == "input":
                    message = "input() blocks the event loop"
            if (
                message is None
                and call_name(node) in MUST_AWAIT
                and isinstance(node.func, ast.Attribute)
                and id(node) not in awaited
            ):
                message = (
                    f"bare .{call_name(node)}() inside coroutine "
                    f"{func.name!r}: blocking if a threading primitive, "
                    "an un-awaited coroutine if an asyncio one"
                )
            if message is not None:
                yield self.finding(
                    module, node, f"in async def {func.name}: {message}"
                )
