"""lock-discipline: registered lock-guarded attributes are written under
their lock.

The engine's exact-accounting guarantees (recycler byte budgets, facade
counters) hold only while every write to the shared fields happens inside
``with self.<lock>:``.  The convention is now machine-readable: a class
declares

.. code-block:: python

    _GUARDED = {"_lock": ("_bytes_cached", "_bytes_mapped")}

and this checker flags any assignment (plain or augmented) to a
registered attribute outside a ``with`` block taking that lock.
``__init__``/``__post_init__``/``__new__`` are exempt (no concurrent
reader can exist during construction).  Helper methods documented as
"caller holds the lock" carry a ``# repro: ignore[lock-discipline]``
suppression — visible, greppable, and reviewed.

Independently of any registry, attributes following the ``_locked_``
naming convention (``self._locked_total = ...``) must be written inside a
``with`` block over *some* ``self.*lock*`` attribute.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import is_self_attribute
from ..base import Checker, SourceModule, register
from ..findings import Finding

__all__ = ["LockDisciplineChecker"]

CONSTRUCTORS = {"__init__", "__new__", "__post_init__"}
LOCKED_PREFIX = "_locked_"


def _guarded_registry(cls: ast.ClassDef) -> dict[str, str]:
    """Parse ``_GUARDED = {lock: (attrs...)}`` into attr -> lock name."""
    guarded: dict[str, str] = {}
    for stmt in cls.body:
        if not (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_GUARDED"
            and isinstance(stmt.value, ast.Dict)
        ):
            continue
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                elements = value.elts
            else:
                elements = [value]
            for element in elements:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    guarded[element.value] = key.value
    return guarded


def _held_locks(item: ast.withitem) -> str | None:
    """The self attribute a ``with self.<attr>:`` item acquires."""
    return is_self_attribute(item.context_expr)


def _assigned_self_attrs(stmt: ast.stmt) -> list[tuple[str, int]]:
    """Direct ``self.<attr> =``/``+=`` targets of one statement."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    found: list[tuple[str, int]] = []
    for target in targets:
        for node in ast.walk(target):
            attr = is_self_attribute(node)
            if attr is not None:
                found.append((attr, stmt.lineno))
    return found


@register
class LockDisciplineChecker(Checker):
    id = "lock-discipline"
    description = (
        "attributes registered in _GUARDED (or named _locked_*) are only "
        "written inside `with <lock>:` blocks"
    )
    severity = "error"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guarded = _guarded_registry(cls)
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name not in CONSTRUCTORS
            ):
                yield from self._walk(module, cls, guarded, stmt.body, set())

    def _walk(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        guarded: dict[str, str],
        body: list[ast.stmt],
        held: set[str],
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
                acquired = {
                    lock
                    for item in stmt.items
                    if (lock := _held_locks(item)) is not None
                }
                yield from self._walk(
                    module, cls, guarded, stmt.body, held | acquired
                )
                continue
            for attr, line in _assigned_self_attrs(stmt):
                yield from self._check_write(
                    module, cls, guarded, attr, line, held
                )
            for child_body in _nested_bodies(stmt):
                yield from self._walk(
                    module, cls, guarded, child_body, held
                )

    def _check_write(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        guarded: dict[str, str],
        attr: str,
        line: int,
        held: set[str],
    ) -> Iterator[Finding]:
        lock = guarded.get(attr)
        if lock is not None and lock not in held:
            yield self.finding(
                module,
                line,
                f"{cls.name}.{attr} is registered as guarded by "
                f"self.{lock} but is written outside a "
                f"`with self.{lock}:` block",
            )
        elif (
            lock is None
            and attr.startswith(LOCKED_PREFIX)
            and not any("lock" in name for name in held)
        ):
            yield self.finding(
                module,
                line,
                f"{cls.name}.{attr} follows the {LOCKED_PREFIX}* "
                "convention but is written outside any `with "
                "self.<lock>:` block",
            )


def _nested_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    """Statement bodies nested under ``stmt`` (excluding With, handled
    by the caller so lock scopes stay accurate)."""
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        value = getattr(stmt, field_name, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            bodies.append(value)
    if isinstance(stmt, ast.Try):
        for handler in stmt.handlers:
            bodies.append(handler.body)
    return bodies
