"""blocking-under-lock: nothing slow may run while a _GUARDED lock is held.

A ``_GUARDED`` registry marks a lock as a *hot* mutex: it serializes
counter updates and pointer swaps on paths every concurrent query crosses.
Sleeping, file/network I/O, chunk fetches, or waiting on futures/pools
while holding one turns that lock into a system-wide convoy (and, for
executor locks, a deadlock risk when the waited-on work needs the same
lock).

Interprocedural: a blocking call three frames below the ``with`` block is
found by following resolved call edges with the held-lock set attached
(see :mod:`repro.analysis.concurrency`).  The blocking vocabulary covers
``time.sleep``, the ``open()`` builtin, ``os``/``shutil``/``numpy`` file
operations, ``socket``/``subprocess``/``requests``/``urllib`` calls,
``.result()``/``.submit()``/``.wait()``/``.shutdown()`` (a
``shutdown(wait=False)`` is exempt), and the engine's chunk-fetch entry
points (``get_or_load``, ``load_chunk``, ...).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..base import Checker, SourceModule, register
from ..concurrency import KIND_LOCK, ConcurrencyModel, LockId
from ..findings import Finding

__all__ = ["BlockingUnderLockChecker"]


@register
class BlockingUnderLockChecker(Checker):
    id = "blocking-under-lock"
    description = (
        "no sleeps, file/network I/O, chunk fetches, or future/pool waits "
        "are reachable while a _GUARDED lock is held"
    )
    severity = "error"

    def check_project(
        self, modules: Sequence[SourceModule]
    ) -> Iterator[Finding]:
        model = ConcurrencyModel.build(modules)
        if not model.guarded:
            return
        blocking_below = self._transitive_blocking(model)
        for summary in model.iter_summaries():
            fn = summary.fn
            for site in summary.blocking:
                if KIND_LOCK not in site.kinds:
                    continue
                guarded = self._guarded_held(model, site.held)
                if guarded is None:
                    continue
                yield self.finding(
                    fn.module,
                    site.line,
                    f"{fn.qualname} performs blocking {site.desc} while "
                    f"holding guarded lock {guarded.name}",
                )
            for call in summary.calls:
                if call.callee is None or not call.held:
                    continue
                guarded = self._guarded_held(model, call.held)
                if guarded is None:
                    continue
                below = blocking_below.get(call.callee)
                if below is None:
                    continue
                desc, chain = below
                via = " -> ".join(
                    model.summaries[key].fn.qualname for key in chain
                )
                yield self.finding(
                    fn.module,
                    call.line,
                    f"{fn.qualname} holds guarded lock {guarded.name} "
                    f"while calling {call.text}(), which reaches blocking "
                    f"{desc} via {via}",
                )

    @staticmethod
    def _guarded_held(
        model: ConcurrencyModel, held: Tuple[LockId, ...]
    ) -> Optional[LockId]:
        for lock in held:
            if lock in model.guarded:
                return lock
        return None

    @staticmethod
    def _transitive_blocking(
        model: ConcurrencyModel,
    ) -> Dict[str, Tuple[str, Tuple[str, ...]]]:
        """For each function: a blocking site it can reach (desc, chain).

        The chain is the shortest witness path of function keys ending at
        the function containing the blocking expression.  Functions that
        reach no blocking call are absent.
        """
        found: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        for key, summary in model.summaries.items():
            for site in summary.blocking:
                if KIND_LOCK in site.kinds:
                    found[key] = (site.desc, (key,))
                    break
        changed = True
        while changed:
            changed = False
            for key, summary in model.summaries.items():
                if key in found:
                    continue
                best: Optional[Tuple[str, Tuple[str, ...]]] = None
                for call in summary.calls:
                    callee = call.callee
                    if callee is None or callee not in found:
                        continue
                    desc, chain = found[callee]
                    candidate = (desc, (key, *chain))
                    if best is None or len(candidate[1]) < len(best[1]):
                        best = candidate
                if best is not None:
                    found[key] = best
                    changed = True
        return found
