"""Project-wide call graph over the parsed :class:`SourceModule`s.

The interprocedural checkers (``lock-order``, ``blocking-under-lock``,
``async-reach``) need to know, for a call expression in one module, which
function body it lands in — possibly in another module.  This builder
resolves the cases that matter for the engine's code style and is
**deliberately conservative** everywhere else: a call it cannot resolve is
recorded as unresolved (``None`` target) rather than guessed, so dynamic
dispatch can produce false negatives but never false positives.

Resolved call shapes:

* ``helper(...)`` — module-level functions, including names imported via
  ``from .mod import helper`` (absolute or relative).
* ``self.method(...)`` — methods of the enclosing class, following base
  classes resolvable within the project.
* ``self.attr.method(...)`` and longer chains — attribute types are
  inferred from ``self.attr = ClassName(...)`` assignments in ``__init__``
  and from parameter annotations (including string annotations and
  ``TYPE_CHECKING``-only imports).
* ``var.method(...)`` — locals typed by ``var = ClassName(...)``, by
  annotated parameters, or by the return annotation of a resolved call.
* ``ClassName(...)`` — resolves to ``ClassName.__init__`` when defined.

Anything else (tuple unpacking, ``getattr``, callbacks, subscripted
receivers, name-only heuristics across unrelated classes) resolves to
``None``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .astutil import dotted_name, walk_skipping_nested_functions
from .base import SourceModule

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Scope",
    "module_key",
]

# Constructors of lock objects; attributes assigned one of these in
# ``__init__`` are treated as locks by the concurrency checkers.
_LOCK_FACTORIES: Dict[str, bool] = {
    # dotted call name -> reentrant
    "threading.Lock": False,
    "threading.RLock": True,
    "make_lock": False,
    "make_rlock": True,
}


def module_key(relpath: str) -> str:
    """Dotted module name for a root-relative path.

    ``engine/recycler.py`` -> ``engine.recycler``; package ``__init__``
    files map to the package itself (``engine/__init__.py`` -> ``engine``,
    the root ``__init__.py`` -> ``""``).
    """
    name = relpath
    if name.endswith(".py"):
        name = name[: -len(".py")]
    name = name.replace(os.sep, ".").replace("/", ".")
    if name == "__init__":
        return ""
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


@dataclass
class FunctionInfo:
    """One function or method body in the project."""

    key: str  # "<module>::<qualname>"
    qualname: str  # "Class.method" or "func"
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_key: Optional[str] = None

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition plus the type facts the checkers need."""

    key: str  # "<module>::ClassName"
    name: str
    module: SourceModule
    node: ast.ClassDef
    base_names: List[str] = field(default_factory=list)
    bases: List[str] = field(default_factory=list)  # resolved class keys
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn key
    # attr -> class key inferred from __init__ assignments / annotations
    attr_types: Dict[str, str] = field(default_factory=dict)
    # lock attr -> reentrant?
    lock_attrs: Dict[str, bool] = field(default_factory=dict)
    # lock attr -> guarded attribute names (the _GUARDED registry)
    guarded: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Per-module symbol table."""

    key: str
    module: SourceModule
    is_package: bool
    # bound name -> (module key, symbol or None when the name IS a module)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    functions: Dict[str, str] = field(default_factory=dict)  # name -> fn key
    classes: Dict[str, str] = field(default_factory=dict)  # name -> class key


@dataclass
class Scope:
    """Name environment for resolving calls inside one function body."""

    function: FunctionInfo
    module_info: ModuleInfo
    # local / parameter name -> class key (only names with a known type)
    local_types: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Indexes and resolution over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        # Candidate root package names ("repro", fixture dirs in tests):
        # absolute imports may carry them as a prefix to strip.
        self._root_names: set[str] = set()
        self._scopes: Dict[str, Scope] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, modules: Sequence[SourceModule]) -> "CallGraph":
        graph = cls()
        for module in modules:
            graph._index_module(module)
        for module in modules:
            graph._collect_imports(module)
        # Type facts depend on imports being in place; bases depend on
        # classes being indexed everywhere.
        for info in list(graph.classes.values()):
            graph._resolve_bases(info)
        for info in list(graph.classes.values()):
            graph._infer_class_facts(info)
        return graph

    def _index_module(self, module: SourceModule) -> None:
        key = module_key(module.relpath)
        is_package = os.path.basename(module.relpath) == "__init__.py"
        info = ModuleInfo(key=key, module=module, is_package=is_package)
        self.modules[key] = info
        root = module.path
        rel = module.relpath
        if root.endswith(rel):
            base = os.path.basename(os.path.dirname(root[: -len(rel)] or "."))
            if base:
                self._root_names.add(base)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    key=f"{key}::{stmt.name}",
                    qualname=stmt.name,
                    module=module,
                    node=stmt,
                )
                self.functions[fn.key] = fn
                info.functions[stmt.name] = fn.key
            elif isinstance(stmt, ast.ClassDef):
                cls_info = ClassInfo(
                    key=f"{key}::{stmt.name}",
                    name=stmt.name,
                    module=module,
                    node=stmt,
                    base_names=[dotted_name(b) for b in stmt.bases],
                )
                self.classes[cls_info.key] = cls_info
                info.classes[stmt.name] = cls_info.key
                for member in stmt.body:
                    if isinstance(
                        member, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fn = FunctionInfo(
                            key=f"{key}::{stmt.name}.{member.name}",
                            qualname=f"{stmt.name}.{member.name}",
                            module=module,
                            node=member,
                            class_key=cls_info.key,
                        )
                        self.functions[fn.key] = fn
                        cls_info.methods[member.name] = fn.key

    def _collect_imports(self, module: SourceModule) -> None:
        info = self.modules[module_key(module.relpath)]
        # Walk the whole tree: TYPE_CHECKING-only imports sit inside an
        # ``if`` block but still name the types annotations refer to.
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = self._known_module(alias.name)
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    if target is not None and alias.asname is not None:
                        info.imports[bound] = (target, None)
                    elif target is not None and "." not in alias.name:
                        info.imports[bound] = (target, None)
                    # ``import pkg.sub`` without an alias binds ``pkg``;
                    # dotted lookups resolve through _known_module later.
            elif isinstance(node, ast.ImportFrom):
                target = self._import_from_module(info, node)
                if target is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    submodule = self._known_module(
                        f"{target}.{alias.name}" if target else alias.name
                    )
                    target_info = self.modules.get(target)
                    defines_symbol = target_info is not None and (
                        alias.name in target_info.functions
                        or alias.name in target_info.classes
                    )
                    if defines_symbol or submodule is None:
                        info.imports[bound] = (target, alias.name)
                    else:
                        info.imports[bound] = (submodule, None)

    def _import_from_module(
        self, info: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return self._known_module(node.module or "")
        # Relative import: start from the containing package.
        parts = info.key.split(".") if info.key else []
        if not info.is_package and parts:
            parts = parts[:-1]
        drop = node.level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts)

    def _known_module(self, name: str) -> Optional[str]:
        """Map an absolute import name onto an analyzed module key."""
        if name in self.modules:
            return name
        head, _, tail = name.partition(".")
        if head in self._root_names:
            if tail in self.modules:
                return tail
            if tail == "" and "" in self.modules:
                return ""
        return None

    def _resolve_bases(self, info: ClassInfo) -> None:
        for base_name in info.base_names:
            resolved = self._class_by_name(
                self.modules[info.key.split("::", 1)[0]], base_name
            )
            if resolved is not None:
                info.bases.append(resolved)

    def _infer_class_facts(self, info: ClassInfo) -> None:
        mod = self.modules[info.key.split("::", 1)[0]]
        for stmt in info.node.body:
            # Class-level: ``attr: ClassName`` declarations and _GUARDED.
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                typed = self._annotation_class(mod, stmt.annotation)
                if typed is not None:
                    info.attr_types.setdefault(stmt.target.id, typed)
            elif (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "_GUARDED"
                and isinstance(stmt.value, ast.Dict)
            ):
                self._parse_guarded(info, stmt.value)
        for method_key in info.methods.values():
            self._infer_from_method(info, mod, self.functions[method_key])

    def _parse_guarded(self, info: ClassInfo, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            attrs: List[str] = []
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        attrs.append(element.value)
            elif isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                attrs.append(value.value)
            info.guarded[key.value] = tuple(attrs)

    def _infer_from_method(
        self, info: ClassInfo, mod: ModuleInfo, fn: FunctionInfo
    ) -> None:
        # Annotated parameters type the attribute they are stored into and
        # (via Scope) receivers inside the body.
        param_types: Dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            typed = self._annotation_class(mod, arg.annotation)
            if typed is not None:
                param_types[arg.arg] = typed
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            lock_kind = self._lock_factory(node.value)
            if lock_kind is not None:
                info.lock_attrs.setdefault(attr, lock_kind)
                continue
            if isinstance(node.value, ast.ListComp):
                # e.g. ``[make_lock(...) for _ in range(N)]`` — a stripe
                # array; treated as a single named lock by the checkers.
                elt = node.value.elt
                kind = self._lock_factory(elt)
                if kind is not None:
                    info.lock_attrs.setdefault(attr, kind)
                continue
            typed = self._value_class(mod, node.value, param_types)
            if typed is not None:
                info.attr_types.setdefault(attr, typed)

    def _lock_factory(self, value: ast.AST) -> Optional[bool]:
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name in _LOCK_FACTORIES:
                return _LOCK_FACTORIES[name]
            short = name.rsplit(".", 1)[-1]
            if short in ("Lock", "RLock") and name.count(".") <= 1:
                return short == "RLock"
        return None

    def _value_class(
        self,
        mod: ModuleInfo,
        value: ast.AST,
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Class key of an expression's value, when statically evident."""
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            resolved = self._class_by_name(mod, name) if name else None
            if resolved is not None:
                return resolved
            return None
        if isinstance(value, ast.Name):
            return local_types.get(value.id)
        return None

    # -- annotation / name resolution --------------------------------------

    def _annotation_class(
        self, mod: ModuleInfo, ann: Optional[ast.AST]
    ) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
            return self._annotation_class(mod, ann)
        if isinstance(ann, ast.Subscript):
            base = dotted_name(ann.value)
            if base.rsplit(".", 1)[-1] == "Optional":
                return self._annotation_class(mod, ann.slice)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            candidates = []
            for side in (ann.left, ann.right):
                if isinstance(side, ast.Constant) and side.value is None:
                    continue
                resolved = self._annotation_class(mod, side)
                if resolved is not None:
                    candidates.append(resolved)
            return candidates[0] if len(candidates) == 1 else None
        name = dotted_name(ann)
        if not name or name == "None":
            return None
        return self._class_by_name(mod, name)

    def _class_by_name(self, mod: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a (possibly dotted) type name in a module's namespace."""
        if not name:
            return None
        head, _, rest = name.partition(".")
        if not rest:
            if head in mod.classes:
                return mod.classes[head]
            imported = mod.imports.get(head)
            if imported is not None:
                target_key, symbol = imported
                target = self.modules.get(target_key)
                if target is None:
                    return None
                if symbol is None:
                    return None
                if symbol in target.classes:
                    return target.classes[symbol]
                # Re-exports: chase one level of ``from .x import C``.
                chained = target.imports.get(symbol)
                if chained is not None:
                    inner = self.modules.get(chained[0])
                    if inner is not None and chained[1] in inner.classes:
                        return inner.classes[chained[1]]
            return None
        # Dotted: resolve the head to a module, look the rest up there.
        imported = mod.imports.get(head)
        if imported is not None and imported[1] is None:
            target = self.modules.get(imported[0])
            if target is not None:
                return self._class_by_name(target, rest)
        known = self._known_module(".".join(name.split(".")[:-1]))
        if known is not None:
            target = self.modules.get(known)
            if target is not None:
                leaf = name.rsplit(".", 1)[-1]
                return target.classes.get(leaf)
        return None

    # -- scopes ------------------------------------------------------------

    def scope(self, fn: FunctionInfo) -> Scope:
        cached = self._scopes.get(fn.key)
        if cached is not None:
            return cached
        mod = self.modules[fn.key.split("::", 1)[0]]
        scope = Scope(function=fn, module_info=mod)
        args = fn.node.args
        params = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        if fn.class_key is not None and params and params[0].arg in (
            "self",
            "cls",
        ):
            scope.local_types[params[0].arg] = fn.class_key
            params = params[1:]
        for arg in params:
            typed = self._annotation_class(mod, arg.annotation)
            if typed is not None:
                scope.local_types[arg.arg] = typed
        self._collect_local_types(scope)
        self._scopes[fn.key] = scope
        return scope

    def _collect_local_types(self, scope: Scope) -> None:
        poisoned: set[str] = set()
        assigns = [
            node
            for node in walk_skipping_nested_functions(scope.function.node)
            if isinstance(node, ast.Assign)
        ]
        for node in sorted(assigns, key=lambda n: n.lineno):
            if len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name in poisoned:
                continue
            typed = self._expression_class(scope, node.value)
            existing = scope.local_types.get(name)
            if typed is None or (existing is not None and existing != typed):
                # Conflicting or unknown assignment: drop to unknown so a
                # rebinding never mis-resolves later calls.
                scope.local_types.pop(name, None)
                poisoned.add(name)
            else:
                scope.local_types[name] = typed

    def _expression_class(
        self, scope: Scope, value: ast.AST
    ) -> Optional[str]:
        """Class key for an arbitrary expression in a function body."""
        if isinstance(value, ast.Name):
            return scope.local_types.get(value.id)
        if isinstance(value, ast.Attribute):
            chain = dotted_name(value)
            return self._chain_class(scope, chain) if chain else None
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            resolved = (
                self._class_by_name(scope.module_info, name) if name else None
            )
            if resolved is not None:
                return resolved
            # Fall back to the return annotation of a resolved callee.
            callee = self.resolve_call(value, scope)
            if callee is not None:
                returns = callee.node.returns
                target_mod = self.modules[callee.key.split("::", 1)[0]]
                return self._annotation_class(target_mod, returns)
            return None
        return None

    def _chain_class(self, scope: Scope, chain: str) -> Optional[str]:
        """Class key of a ``a.b.c`` value chain, or None."""
        parts = chain.split(".")
        head = parts[0]
        current: Optional[str] = scope.local_types.get(head)
        index = 1
        if current is None:
            imported = scope.module_info.imports.get(head)
            if imported is not None and imported[1] is None:
                # Module-rooted chain: class attribute lookups on modules
                # are rare in this codebase; resolve class names only.
                target = self.modules.get(imported[0])
                if target is not None and len(parts) == 2:
                    return target.classes.get(parts[1])
                return None
            if head in scope.module_info.classes and len(parts) == 1:
                return scope.module_info.classes[head]
            return None
        while index < len(parts):
            cls = self.classes.get(current or "")
            if cls is None:
                return None
            nxt = cls.attr_types.get(parts[index])
            if nxt is None:
                return None
            current = nxt
            index += 1
        return current

    # -- call resolution ---------------------------------------------------

    def resolve_call(
        self, call: ast.Call, scope: Scope
    ) -> Optional[FunctionInfo]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_call(func.id, scope)
        if isinstance(func, ast.Attribute):
            chain = dotted_name(func)
            if not chain:
                return None
            parts = chain.split(".")
            method = parts[-1]
            receiver = ".".join(parts[:-1])
            if not receiver:
                return None
            receiver_class = self._chain_class(scope, receiver)
            if receiver_class is not None:
                return self._method(receiver_class, method)
            # Module-rooted: ``mod.helper(...)``.
            imported = scope.module_info.imports.get(parts[0])
            if (
                imported is not None
                and imported[1] is None
                and len(parts) == 2
            ):
                target = self.modules.get(imported[0])
                if target is not None and method in target.functions:
                    return self.functions[target.functions[method]]
            return None
        return None

    def _resolve_name_call(
        self, name: str, scope: Scope
    ) -> Optional[FunctionInfo]:
        if name in scope.local_types:
            return None  # calling a value, not a def
        mod = scope.module_info
        if name in mod.functions:
            return self.functions[mod.functions[name]]
        if name in mod.classes:
            return self._method(mod.classes[name], "__init__")
        imported = mod.imports.get(name)
        if imported is not None and imported[1] is not None:
            target = self.modules.get(imported[0])
            if target is not None:
                if imported[1] in target.functions:
                    return self.functions[target.functions[imported[1]]]
                if imported[1] in target.classes:
                    return self._method(
                        target.classes[imported[1]], "__init__"
                    )
        return None

    def _method(
        self, class_key: str, method: str
    ) -> Optional[FunctionInfo]:
        seen: set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            cls = self.classes.get(key)
            if cls is None:
                continue
            fn_key = cls.methods.get(method)
            if fn_key is not None:
                return self.functions[fn_key]
            stack.extend(cls.bases)
        return None

    # -- iteration helpers -------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        yield from self.functions.values()

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_key is None:
            return None
        return self.classes.get(fn.class_key)


# One analyze() run hands the same module list to every project checker;
# building the graph once per run (not once per checker) keeps the pass
# linear.  Keyed on object identities, which are stable for the lifetime
# of the list the runner holds.
_CACHE: List[Tuple[Tuple[int, ...], CallGraph]] = []


def shared_call_graph(modules: Sequence[SourceModule]) -> CallGraph:
    """The memoized project call graph for this exact module list."""
    key = tuple(id(m) for m in modules)
    for cached_key, cached in _CACHE:
        if cached_key == key:
            return cached
    graph = CallGraph.build(modules)
    del _CACHE[:]
    _CACHE.append((key, graph))
    return graph
