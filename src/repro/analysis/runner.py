"""Walk a source tree, run every checker, apply suppressions, report.

The runner makes two passes: every checker's per-module :meth:`check` over
each file, then every checker's :meth:`check_project` over the full module
list (for cross-module invariants such as the pickle boundary).  Findings
on lines carrying a matching ``# repro: ignore[...]`` comment are counted
as suppressed, not reported; anything else makes ``repro analyze`` exit
nonzero.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from .base import Checker, SourceModule, all_checkers
from .findings import SEVERITIES, Finding

__all__ = [
    "AnalysisReport",
    "analyze",
    "iter_source_files",
    "load_baseline",
]

SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", "node_modules"}

# What a baseline entry pins a finding by.  Line numbers drift with every
# edit, so they are deliberately not part of the identity.
BaselineKey = tuple[str, str, str]  # (checker, path, message)


@dataclass
class AnalysisReport:
    """Everything one analysis run produced, JSON- and text-renderable."""

    roots: list[str]
    checkers: list[str]
    files_scanned: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    parse_errors: list[Finding] = field(default_factory=list)
    baselined: int = 0
    fail_on: str = SEVERITIES[0]  # weakest: every finding fails the run

    @property
    def ok(self) -> bool:
        """True when nothing at or above ``fail_on`` was found (exit 0)."""
        if self.parse_errors:
            return False
        threshold = SEVERITIES.index(self.fail_on)
        return not any(
            SEVERITIES.index(finding.severity) >= threshold
            for finding in self.findings
        )

    def all_findings(self) -> list[Finding]:
        return sorted(
            self.parse_errors + self.findings, key=Finding.sort_key
        )

    def to_payload(self) -> dict:
        """The ``--json`` schema (stable: summary block + findings list)."""
        findings = self.all_findings()
        by_checker: dict[str, int] = {}
        for finding in findings:
            by_checker[finding.checker] = by_checker.get(finding.checker, 0) + 1
        return {
            "summary": {
                "roots": list(self.roots),
                "checkers": list(self.checkers),
                "files_scanned": self.files_scanned,
                "findings": len(findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "fail_on": self.fail_on,
                "findings_by_checker": by_checker,
                "ok": self.ok,
            },
            "findings": [finding.to_dict() for finding in findings],
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.all_findings()]
        summary = (
            f"{self.files_scanned} file(s) scanned, "
            f"{len(self.findings) + len(self.parse_errors)} finding(s), "
            f"{self.suppressed} suppressed"
        )
        if self.baselined:
            summary += f", {self.baselined} baselined"
        lines.append(summary)
        return "\n".join(lines)


def iter_source_files(root: str) -> list[str]:
    """Every ``.py`` file under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        return [root]
    paths: list[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
        )
        paths.extend(
            os.path.join(dirpath, name)
            for name in sorted(filenames)
            if name.endswith(".py")
        )
    return paths


def _load_modules(
    roots: list[str],
) -> tuple[list[SourceModule], list[Finding]]:
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for root in roots:
        base = root if os.path.isdir(root) else os.path.dirname(root)
        for path in iter_source_files(root):
            relpath = os.path.relpath(path, base) if base else path
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                modules.append(SourceModule.parse(path, relpath, source))
            except (OSError, SyntaxError, ValueError) as exc:
                errors.append(
                    Finding(
                        checker="parse",
                        severity="error",
                        path=relpath,
                        line=getattr(exc, "lineno", None) or 1,
                        message=f"cannot analyze: {exc}",
                    )
                )
    return modules, errors


def load_baseline(path: str) -> set[BaselineKey]:
    """Accepted-findings keys from a committed ``--json`` report.

    A baseline lets a new checker land before every pre-existing finding
    is fixed: findings whose ``(checker, path, message)`` triple appears
    in the baseline file are counted (``baselined``), not reported.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = payload.get("findings", payload) if isinstance(
        payload, dict
    ) else payload
    keys: set[BaselineKey] = set()
    for entry in entries:
        try:
            keys.add(
                (
                    str(entry["checker"]),
                    str(entry["path"]),
                    str(entry["message"]),
                )
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"baseline entry {entry!r} lacks checker/path/message"
            ) from exc
    return keys


def analyze(
    roots: list[str],
    only: list[str] | None = None,
    baseline: set[BaselineKey] | None = None,
    fail_on: str = SEVERITIES[0],
) -> AnalysisReport:
    """Run the (selected) checkers over every Python file under ``roots``."""
    if fail_on not in SEVERITIES:
        raise ValueError(
            f"fail_on {fail_on!r} not one of {SEVERITIES}"
        )
    checkers: list[Checker] = all_checkers(only)
    modules, parse_errors = _load_modules(roots)
    report = AnalysisReport(
        roots=list(roots),
        checkers=[checker.id for checker in checkers],
        files_scanned=len(modules),
        parse_errors=parse_errors,
        fail_on=fail_on,
    )
    by_relpath = {module.relpath: module for module in modules}
    raw: list[Finding] = []
    for module in modules:
        for checker in checkers:
            raw.extend(checker.check(module))
    for checker in checkers:
        raw.extend(checker.check_project(modules))
    for finding in raw:
        module = by_relpath.get(finding.path)
        if module is not None and module.is_suppressed(finding):
            report.suppressed += 1
        elif (
            baseline is not None
            and (finding.checker, finding.path, finding.message) in baseline
        ):
            report.baselined += 1
        else:
            report.findings.append(finding)
    report.findings.sort(key=Finding.sort_key)
    return report
