"""Steim-like waveform compression: zigzag delta coding with bit-packed frames.

Real SEED volumes compress waveforms with the Steim-1/2 codecs: per-frame
difference coding with variable bit widths.  We implement the same idea in a
vectorizable form:

* the sample stream is delta-encoded (first value kept verbatim);
* deltas are zigzag-mapped to unsigned integers;
* values are grouped into frames of :data:`FRAME_SAMPLES`; each frame picks
  the smallest bit width that holds its largest value and packs all values
  at that width (LSB-first).

Like Steim, smooth seismic signals (small deltas) compress to a few bits per
sample while the decompressed form expands by an order of magnitude — the
size asymmetry behind the paper's Table III.

All encode/decode paths are NumPy-vectorized; nothing loops per sample.
Decoding is two-phase: a cheap header scan builds a *frame table* (per-frame
width, count and offsets), then one of the :mod:`repro.mseed.steim_kernels`
kernels unpacks every frame — equal-width groups in single vectorized
operations on the default numpy kernel, a JIT bit-loop when numba is
installed.  :func:`decode_many` batches the scan and unpack across several
payloads (a chunk's segments) so per-call overhead is paid once per chunk,
which is what the engine's chunk scans call.
"""

from __future__ import annotations

import struct

import numpy as np

from ..engine.errors import FormatError
from . import steim_kernels

__all__ = ["encode", "decode", "decode_many", "FRAME_SAMPLES"]

FRAME_SAMPLES = 512
_HEADER = struct.Struct("<IQ")  # sample count, first value (zigzagged)
_FRAME_HEADER = struct.Struct("<BH")  # bit width, value count


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned so small magnitudes get small codes."""
    signed = values.astype(np.int64, copy=False)
    return ((signed << 1) ^ (signed >> 63)).view(np.uint64)


def _unzigzag(codes: np.ndarray) -> np.ndarray:
    unsigned = codes.astype(np.uint64, copy=False)
    # (u >> 1) ^ -(u & 1), computed wholly in uint64 (two's-complement
    # wraparound is the sign extension) and reinterpreted — no int casts.
    flip = np.uint64(0) - (unsigned & np.uint64(1))
    return ((unsigned >> np.uint64(1)) ^ flip).view(np.int64)


def _pack_frame(codes: np.ndarray) -> bytes:
    """Pack one frame of unsigned codes at its minimal bit width."""
    width = int(codes.max()).bit_length() if len(codes) else 0
    if width == 0:
        return struct.pack("<BH", 0, len(codes))
    bits = (
        (codes[:, None] >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    packed = np.packbits(bits.reshape(-1), bitorder="little")
    return struct.pack("<BH", width, len(codes)) + packed.tobytes()


def _scan_frames(
    payload: bytes,
    count: int,
    base: int,
    delta_base: int,
    frames: list[tuple[int, int, int, int]],
) -> None:
    """Phase one of decode: walk frame headers, no payload bytes touched.

    Appends ``(width, count, buffer offset, output offset)`` rows to the
    shared frame table; offsets are global (``base`` is where this payload
    starts in the concatenated buffer, ``delta_base`` where its deltas
    start in the flat code array).  Validates framing exhaustively: header
    and payload truncation, delta-count mismatch, and trailing bytes after
    the last frame.
    """
    offset = _HEADER.size
    decoded = 0
    while decoded < count - 1:
        if offset + _FRAME_HEADER.size > len(payload):
            raise FormatError("truncated steim frame header")
        width, values = _FRAME_HEADER.unpack_from(payload, offset)
        offset += _FRAME_HEADER.size
        if values == 0:
            raise FormatError("empty steim frame")
        nbytes = (values * width + 7) // 8
        if offset + nbytes > len(payload):
            raise FormatError("truncated steim frame payload")
        frames.append((width, values, base + offset, delta_base + decoded))
        offset += nbytes
        decoded += values
    if count and decoded != count - 1:
        raise FormatError(
            f"steim payload decoded {decoded} deltas, expected {count - 1}"
        )
    if offset != len(payload):
        raise FormatError(
            f"steim payload has {len(payload) - offset} trailing byte(s) "
            "after the last frame"
        )


def encode(samples: np.ndarray) -> bytes:
    """Compress an integer sample array; empty input is legal."""
    values = np.asarray(samples, dtype=np.int64)
    if values.ndim != 1:
        raise FormatError("steim encode expects a 1-D sample array")
    if len(values) == 0:
        return _HEADER.pack(0, 0)
    first = int(_zigzag(values[:1])[0])
    deltas = np.diff(values)
    codes = _zigzag(deltas)
    parts = [_HEADER.pack(len(values), first)]
    for start in range(0, len(codes), FRAME_SAMPLES):
        parts.append(_pack_frame(codes[start : start + FRAME_SAMPLES]))
    return b"".join(parts)


def decode(payload: bytes) -> np.ndarray:
    """Decompress back to the original int64 sample array."""
    return decode_many([payload])[0]


def decode_many(payloads: "list[bytes] | tuple[bytes, ...]") -> list[np.ndarray]:
    """Decompress a batch of payloads in one kernel pass.

    The batch entry point of the codec: all frame headers across all
    payloads are scanned first, the concatenated frame table goes through
    the active decode kernel once (so equal-width frames of *different*
    payloads still share vectorized unpacks), and zigzag/cumsum
    reconstruction runs over the flat delta array.  Chunk readers hand a
    whole chunk's segment payloads here to amortize per-call overhead.
    """
    if not payloads:
        return []
    # Phase 1: header scan — frame table + per-payload reconstruction specs.
    frames: list[tuple[int, int, int, int]] = []
    specs: list[tuple[int, int, int]] = []  # (count, first_zz, delta offset)
    base = 0
    total_deltas = 0
    for payload in payloads:
        if len(payload) < _HEADER.size:
            raise FormatError("truncated steim header")
        count, first_zz = _HEADER.unpack_from(payload, 0)
        _scan_frames(payload, count, base, total_deltas, frames)
        specs.append((count, first_zz, total_deltas))
        total_deltas += max(count - 1, 0)
        base += len(payload)

    # Phase 2: one kernel pass over every frame of every payload.
    if frames:
        buf = (
            np.frombuffer(payloads[0], dtype=np.uint8)
            if len(payloads) == 1
            else np.frombuffer(b"".join(payloads), dtype=np.uint8)
        )
        table = np.asarray(frames, dtype=np.int64)
        codes = steim_kernels.unpack_frames(
            buf, table[:, 0], table[:, 1], table[:, 2], table[:, 3],
            total_deltas,
        )
        deltas = _unzigzag(codes)
    else:
        deltas = np.empty(0, dtype=np.int64)

    # Phase 3: per-payload zigzag first value + cumulative sum.
    results: list[np.ndarray] = []
    for count, first_zz, delta_offset in specs:
        if count == 0:
            results.append(np.empty(0, dtype=np.int64))
            continue
        first = int(_unzigzag(np.asarray([first_zz], dtype=np.uint64))[0])
        samples = np.empty(count, dtype=np.int64)
        samples[0] = first
        if count > 1:
            np.cumsum(
                deltas[delta_offset : delta_offset + count - 1],
                out=samples[1:],
            )
            samples[1:] += first
        results.append(samples)
    return results
