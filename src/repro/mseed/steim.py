"""Steim-like waveform compression: zigzag delta coding with bit-packed frames.

Real SEED volumes compress waveforms with the Steim-1/2 codecs: per-frame
difference coding with variable bit widths.  We implement the same idea in a
vectorizable form:

* the sample stream is delta-encoded (first value kept verbatim);
* deltas are zigzag-mapped to unsigned integers;
* values are grouped into frames of :data:`FRAME_SAMPLES`; each frame picks
  the smallest bit width that holds its largest value and packs all values
  at that width (LSB-first).

Like Steim, smooth seismic signals (small deltas) compress to a few bits per
sample while the decompressed form expands by an order of magnitude — the
size asymmetry behind the paper's Table III.

All encode/decode paths are NumPy-vectorized; nothing loops per sample.
"""

from __future__ import annotations

import struct

import numpy as np

from ..engine.errors import FormatError

__all__ = ["encode", "decode", "FRAME_SAMPLES"]

FRAME_SAMPLES = 512
_HEADER = struct.Struct("<IQ")  # sample count, first value (zigzagged)


def _zigzag(values: np.ndarray) -> np.ndarray:
    """Map signed int64 to unsigned so small magnitudes get small codes."""
    signed = values.astype(np.int64, copy=False)
    return ((signed << 1) ^ (signed >> 63)).view(np.uint64)


def _unzigzag(codes: np.ndarray) -> np.ndarray:
    unsigned = codes.astype(np.uint64, copy=False)
    return ((unsigned >> 1).astype(np.int64)) ^ -(
        (unsigned & 1).astype(np.int64)
    )


def _pack_frame(codes: np.ndarray) -> bytes:
    """Pack one frame of unsigned codes at its minimal bit width."""
    width = int(codes.max()).bit_length() if len(codes) else 0
    if width == 0:
        return struct.pack("<BH", 0, len(codes))
    bits = (
        (codes[:, None] >> np.arange(width, dtype=np.uint64)) & np.uint64(1)
    ).astype(np.uint8)
    packed = np.packbits(bits.reshape(-1), bitorder="little")
    return struct.pack("<BH", width, len(codes)) + packed.tobytes()


def _unpack_frame(payload: bytes, offset: int) -> tuple[np.ndarray, int]:
    if offset + 3 > len(payload):
        raise FormatError("truncated steim frame header")
    width, count = struct.unpack_from("<BH", payload, offset)
    offset += 3
    if width == 0:
        return np.zeros(count, dtype=np.uint64), offset
    nbytes = (count * width + 7) // 8
    if offset + nbytes > len(payload):
        raise FormatError("truncated steim frame payload")
    raw = np.frombuffer(payload, dtype=np.uint8, count=nbytes, offset=offset)
    bits = np.unpackbits(raw, bitorder="little")[: count * width]
    matrix = bits.reshape(count, width).astype(np.uint64)
    weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
    codes = (matrix * weights).sum(axis=1, dtype=np.uint64)
    return codes, offset + nbytes


def encode(samples: np.ndarray) -> bytes:
    """Compress an integer sample array; empty input is legal."""
    values = np.asarray(samples, dtype=np.int64)
    if values.ndim != 1:
        raise FormatError("steim encode expects a 1-D sample array")
    if len(values) == 0:
        return _HEADER.pack(0, 0)
    first = int(_zigzag(values[:1])[0])
    deltas = np.diff(values)
    codes = _zigzag(deltas)
    parts = [_HEADER.pack(len(values), first)]
    for start in range(0, len(codes), FRAME_SAMPLES):
        parts.append(_pack_frame(codes[start : start + FRAME_SAMPLES]))
    return b"".join(parts)


def decode(payload: bytes) -> np.ndarray:
    """Decompress back to the original int64 sample array."""
    if len(payload) < _HEADER.size:
        raise FormatError("truncated steim header")
    count, first_zz = _HEADER.unpack_from(payload, 0)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    first = int(_unzigzag(np.asarray([first_zz], dtype=np.uint64))[0])
    offset = _HEADER.size
    frames: list[np.ndarray] = []
    decoded = 0
    while decoded < count - 1:
        codes, offset = _unpack_frame(payload, offset)
        frames.append(codes)
        decoded += len(codes)
    if decoded != count - 1:
        raise FormatError(
            f"steim payload decoded {decoded} deltas, expected {count - 1}"
        )
    if frames:
        deltas = _unzigzag(np.concatenate(frames))
        samples = np.empty(count, dtype=np.int64)
        samples[0] = first
        np.cumsum(deltas, out=samples[1:])
        samples[1:] += first
    else:
        samples = np.asarray([first], dtype=np.int64)
    return samples
