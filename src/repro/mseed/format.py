"""The xseed binary format: our mSEED stand-in.

An xseed *volume* (one file = one semantic chunk) mirrors the structure the
paper describes for mSEED (Section II-C):

* a fixed-size **volume header** holding the given metadata that describes
  the whole chunk — the sensor identification (network, station, location,
  channel) and technical characteristics (data quality, encoding,
  byte order);
* a sequence of **segment records**, each with a small fixed header (segment
  number, start time, sampling frequency, sample count, payload length)
  followed by a Steim-compressed waveform payload.

Reading only the headers costs a few hundred bytes of I/O per file; decoding
the payloads costs orders of magnitude more — the GMd/AD cost asymmetry the
whole approach relies on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..engine.errors import FormatError

__all__ = [
    "MAGIC",
    "VERSION",
    "VolumeHeader",
    "SegmentHeader",
    "VOLUME_HEADER_STRUCT",
    "SEGMENT_HEADER_STRUCT",
    "pack_volume_header",
    "unpack_volume_header",
    "pack_segment_header",
    "unpack_segment_header",
]

MAGIC = b"XSD1"
VERSION = 1

# magic, version, network(8s), station(8s), location(8s), channel(8s),
# quality(4s), encoding(u8), byte_order(u8), n_segments(u32)
VOLUME_HEADER_STRUCT = struct.Struct("<4sH8s8s8s8s4sBBI")

# segment_no(u32), start_time_ms(i64), frequency(f64), sample_count(u32),
# payload_bytes(u32)
SEGMENT_HEADER_STRUCT = struct.Struct("<IqdII")

ENCODING_STEIM_LIKE = 10  # mirrors SEED's encoding-format code space
BYTE_ORDER_LITTLE = 0


@dataclass(frozen=True)
class VolumeHeader:
    """Given metadata describing a whole chunk (file)."""

    network: str
    station: str
    location: str
    channel: str
    quality: str
    encoding: int
    byte_order: int
    n_segments: int


@dataclass(frozen=True)
class SegmentHeader:
    """Given metadata describing one contiguous time series in a chunk."""

    segment_no: int
    start_time_ms: int
    frequency: float
    sample_count: int
    payload_bytes: int

    @property
    def end_time_ms(self) -> int:
        """Exclusive end timestamp of the segment."""
        if self.sample_count == 0 or self.frequency <= 0:
            return self.start_time_ms
        return self.start_time_ms + int(
            round(self.sample_count * 1000.0 / self.frequency)
        )


def _fixed(text: str, width: int) -> bytes:
    blob = text.encode("ascii", errors="replace")[:width]
    return blob.ljust(width, b" ")


def _unfixed(blob: bytes) -> str:
    return blob.decode("ascii", errors="replace").rstrip(" \x00")


def pack_volume_header(header: VolumeHeader) -> bytes:
    """Serialize a volume header to its fixed binary layout."""
    return VOLUME_HEADER_STRUCT.pack(
        MAGIC,
        VERSION,
        _fixed(header.network, 8),
        _fixed(header.station, 8),
        _fixed(header.location, 8),
        _fixed(header.channel, 8),
        _fixed(header.quality, 4),
        header.encoding,
        header.byte_order,
        header.n_segments,
    )


def unpack_volume_header(blob: bytes) -> VolumeHeader:
    if len(blob) < VOLUME_HEADER_STRUCT.size:
        raise FormatError("truncated xseed volume header")
    (
        magic,
        version,
        network,
        station,
        location,
        channel,
        quality,
        encoding,
        byte_order,
        n_segments,
    ) = VOLUME_HEADER_STRUCT.unpack_from(blob, 0)
    if magic != MAGIC:
        raise FormatError(f"bad xseed magic {magic!r}")
    if version != VERSION:
        raise FormatError(f"unsupported xseed version {version}")
    return VolumeHeader(
        network=_unfixed(network),
        station=_unfixed(station),
        location=_unfixed(location),
        channel=_unfixed(channel),
        quality=_unfixed(quality),
        encoding=encoding,
        byte_order=byte_order,
        n_segments=n_segments,
    )


def pack_segment_header(header: SegmentHeader) -> bytes:
    """Serialize a segment header to its fixed binary layout."""
    return SEGMENT_HEADER_STRUCT.pack(
        header.segment_no,
        header.start_time_ms,
        header.frequency,
        header.sample_count,
        header.payload_bytes,
    )


def unpack_segment_header(blob: bytes, offset: int = 0) -> SegmentHeader:
    """Parse a segment header at ``offset``; raises FormatError when short."""
    if len(blob) - offset < SEGMENT_HEADER_STRUCT.size:
        raise FormatError("truncated xseed segment header")
    segment_no, start_ms, frequency, count, payload = (
        SEGMENT_HEADER_STRUCT.unpack_from(blob, offset)
    )
    return SegmentHeader(
        segment_no=segment_no,
        start_time_ms=start_ms,
        frequency=frequency,
        sample_count=count,
        payload_bytes=payload,
    )
