"""File repository abstraction over a directory of xseed chunks.

The paper's sommelier metaphor: the repository is the wine cellar.  Millions
of mSEED files sit in remote FTP repositories; here a repository is a local
directory tree (the Section VIII "other sources" extension point — an HTTP
or HDFS listing would implement the same interface).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator

__all__ = ["ChunkInfo", "FileRepository"]

XSEED_SUFFIX = ".xseed"


@dataclass(frozen=True)
class ChunkInfo:
    """One chunk as listed by the repository."""

    uri: str
    size_bytes: int


class FileRepository:
    """A directory tree of xseed chunk files.

    URIs are absolute file paths; listing is deterministic (sorted) so
    experiments are reproducible.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)

    def exists(self) -> bool:
        """Whether the repository directory is present on disk."""
        return os.path.isdir(self.root)

    def list_chunks(self) -> list[ChunkInfo]:
        """All chunks, sorted by URI."""
        chunks: list[ChunkInfo] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if not filename.endswith(XSEED_SUFFIX):
                    continue
                path = os.path.join(dirpath, filename)
                chunks.append(ChunkInfo(path, os.path.getsize(path)))
        chunks.sort(key=lambda c: c.uri)
        return chunks

    def iter_uris(self) -> Iterator[str]:
        """Yield chunk URIs in sorted order."""
        for chunk in self.list_chunks():
            yield chunk.uri

    @property
    def num_chunks(self) -> int:
        return len(self.list_chunks())

    def total_bytes(self) -> int:
        """Size of the raw repository (Table III's mSEED column)."""
        return sum(chunk.size_bytes for chunk in self.list_chunks())
