"""xseed volume writer.

Used by the synthetic dataset builder (:mod:`repro.data.ingv`) to produce
file repositories, and by tests to craft hand-made chunks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..engine.errors import FormatError
from . import steim
from .format import (
    BYTE_ORDER_LITTLE,
    ENCODING_STEIM_LIKE,
    SegmentHeader,
    VolumeHeader,
    pack_segment_header,
    pack_volume_header,
)

__all__ = ["SegmentData", "write_volume"]


@dataclass(frozen=True)
class SegmentData:
    """One segment to be written: its timing plus the raw samples."""

    segment_no: int
    start_time_ms: int
    frequency: float
    samples: np.ndarray


def write_volume(
    path: str,
    network: str,
    station: str,
    location: str,
    channel: str,
    segments: list[SegmentData],
    quality: str = "D",
) -> int:
    """Write one xseed volume; returns bytes written.

    Segments are written in the order given; segment numbers must be unique
    within the volume (they are the paper's per-file segment identifiers).
    """
    seen = {s.segment_no for s in segments}
    if len(seen) != len(segments):
        raise FormatError(f"duplicate segment numbers in volume {path!r}")
    header = VolumeHeader(
        network=network,
        station=station,
        location=location,
        channel=channel,
        quality=quality,
        encoding=ENCODING_STEIM_LIKE,
        byte_order=BYTE_ORDER_LITTLE,
        n_segments=len(segments),
    )
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    written = 0
    with open(path, "wb") as handle:
        blob = pack_volume_header(header)
        handle.write(blob)
        written += len(blob)
        for segment in segments:
            payload = steim.encode(np.asarray(segment.samples, dtype=np.int64))
            seg_header = SegmentHeader(
                segment_no=segment.segment_no,
                start_time_ms=segment.start_time_ms,
                frequency=segment.frequency,
                sample_count=len(segment.samples),
                payload_bytes=len(payload),
            )
            head_blob = pack_segment_header(seg_header)
            handle.write(head_blob)
            handle.write(payload)
            written += len(head_blob) + len(payload)
    return written
