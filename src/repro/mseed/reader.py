"""xseed reader — our stand-in for the libmseed library [22].

Two access paths with very different costs:

* :func:`read_metadata` parses only the volume header and segment headers,
  seeking past every compressed payload.  This is what the Registrar calls
  for every file — cheap, O(#segments) small reads.
* :func:`read_samples` / :func:`read_segment` additionally decode payloads —
  the expensive path that only runs for chunks a query actually needs.

:func:`read_samples_in_range` implements the NoDB-style *in-situ selective*
single-chunk access strategy (paper Section VII: such accessors are
"orthogonal and even complementary ... in order to provide sub-chunk access
granularity"): segment headers act as zonemaps so only payloads overlapping
a time range are decoded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import BinaryIO

import numpy as np

from ..engine.errors import FormatError
from . import steim
from .archive import open_chunk
from .format import (
    SEGMENT_HEADER_STRUCT,
    VOLUME_HEADER_STRUCT,
    SegmentHeader,
    VolumeHeader,
    unpack_segment_header,
    unpack_volume_header,
)

__all__ = [
    "FileMetadata",
    "SegmentSamples",
    "read_metadata",
    "read_samples",
    "read_segment",
    "read_samples_in_range",
    "sample_times",
]


@dataclass(frozen=True)
class FileMetadata:
    """All given metadata of one chunk (headers only, no payload decode)."""

    volume: VolumeHeader
    segments: tuple[SegmentHeader, ...]

    @property
    def total_samples(self) -> int:
        """Sum of sample counts over all segments (from headers only)."""
        return sum(s.sample_count for s in self.segments)


@dataclass(frozen=True)
class SegmentSamples:
    """Decoded samples of one segment plus its header."""

    header: SegmentHeader
    times_ms: np.ndarray
    values: np.ndarray


def sample_times(header: SegmentHeader) -> np.ndarray:
    """Reconstruct per-sample timestamps from a segment header.

    Timestamps are not stored in the file (like mSEED, they are implied by
    start time and frequency); materializing them is part of why loaded
    data is so much bigger than the raw chunk.
    """
    if header.frequency <= 0:
        raise FormatError("segment frequency must be positive")
    period_ms = 1000.0 / header.frequency
    offsets = np.round(np.arange(header.sample_count) * period_ms).astype(np.int64)
    return header.start_time_ms + offsets


def _read_headers(handle: BinaryIO) -> tuple[VolumeHeader, list[tuple[SegmentHeader, int]]]:
    blob = handle.read(VOLUME_HEADER_STRUCT.size)
    volume = unpack_volume_header(blob)
    segments: list[tuple[SegmentHeader, int]] = []
    for _ in range(volume.n_segments):
        head_blob = handle.read(SEGMENT_HEADER_STRUCT.size)
        header = unpack_segment_header(head_blob)
        payload_offset = handle.tell()
        segments.append((header, payload_offset))
        handle.seek(header.payload_bytes, 1)
    return volume, segments


def read_metadata(path: str) -> FileMetadata:
    """Header-only scan of one volume (the Registrar's access path)."""
    with open_chunk(path) as handle:
        volume, segments = _read_headers(handle)
    return FileMetadata(volume=volume, segments=tuple(h for h, _ in segments))


def read_samples(path: str) -> list[SegmentSamples]:
    """Full decode of every segment (the chunk-access full-load strategy)."""
    with open_chunk(path) as handle:
        volume, segments = _read_headers(handle)
        payloads = []
        for header, offset in segments:
            handle.seek(offset)
            payloads.append(handle.read(header.payload_bytes))
    # One batched kernel pass over the whole chunk's segments.
    decoded = steim.decode_many(payloads)
    results: list[SegmentSamples] = []
    for (header, _), values in zip(segments, decoded):
        if len(values) != header.sample_count:
            raise FormatError(
                f"{path}: segment {header.segment_no} decoded "
                f"{len(values)} samples, header says {header.sample_count}"
            )
        results.append(SegmentSamples(header, sample_times(header), values))
    return results


def read_segment(path: str, segment_no: int) -> SegmentSamples:
    """Decode exactly one segment of a volume."""
    with open_chunk(path) as handle:
        volume, segments = _read_headers(handle)
        for header, offset in segments:
            if header.segment_no != segment_no:
                continue
            handle.seek(offset)
            payload = handle.read(header.payload_bytes)
            values = steim.decode(payload)
            return SegmentSamples(header, sample_times(header), values)
    raise FormatError(f"{path}: no segment {segment_no}")


def read_samples_in_range(
    path: str, start_ms: int | None, end_ms: int | None
) -> list[SegmentSamples]:
    """In-situ selective access: decode only segments overlapping a range.

    Segment headers serve as zonemaps: a segment whose [start, end) interval
    misses ``[start_ms, end_ms)`` is skipped without touching its payload.
    """
    with open_chunk(path) as handle:
        volume, segments = _read_headers(handle)
        selected: list[SegmentHeader] = []
        payloads: list[bytes] = []
        for header, offset in segments:
            if start_ms is not None and header.end_time_ms <= start_ms:
                continue
            if end_ms is not None and header.start_time_ms >= end_ms:
                continue
            handle.seek(offset)
            selected.append(header)
            payloads.append(handle.read(header.payload_bytes))
    return [
        SegmentSamples(header, sample_times(header), values)
        for header, values in zip(selected, steim.decode_many(payloads))
    ]
