"""CSV serialization of xseed chunks — the Eager-csv loading path.

The paper's ``eager_csv`` variant first converts every mSEED file into CSV
text and then bulk-loads the CSV with ``COPY INTO``; its cost is dominated
by "expensive serialization to and parsing from a textual (CSV)
representation" (Section VI-B), and Table III shows the CSV blow-up
(1.3 GB of mSEED becomes 45.5 GB of CSV).  This module reproduces both the
serialization and the parsing sides; timestamp rendering/parsing is
vectorized (NumPy datetime64) — it is still a genuine full text round trip,
just not a per-row Python loop.

CSV layout (one row per sample)::

    file_id,segment_no,sample_time,sample_value
    17,3,2010-04-20T23:00:00.000,-1042
"""

from __future__ import annotations

import os

import numpy as np

from ..engine.errors import FormatError
from . import reader

__all__ = ["volume_to_csv", "parse_csv", "CSV_HEADER"]

CSV_HEADER = "file_id,segment_no,sample_time,sample_value"


def volume_to_csv(xseed_path: str, csv_path: str, file_id: int) -> int:
    """Decode one volume and serialize its samples as CSV text.

    Returns the bytes written.  Timestamps are serialized in full ISO form —
    the explicit materialization the paper calls out as a major cost.
    """
    os.makedirs(os.path.dirname(os.path.abspath(csv_path)), exist_ok=True)
    written = 0
    with open(csv_path, "w", encoding="ascii") as handle:
        handle.write(CSV_HEADER + "\n")
        written += len(CSV_HEADER) + 1
        for segment in reader.read_samples(xseed_path):
            if not len(segment.values):
                continue
            iso_times = np.datetime_as_string(
                segment.times_ms.astype("datetime64[ms]"), unit="ms"
            )
            prefix = f"{file_id},{segment.header.segment_no},"
            value_text = segment.values.astype("U20")
            lines = np.char.add(
                np.char.add(
                    np.char.add(prefix, iso_times), ","
                ),
                value_text,
            )
            block = "\n".join(lines.tolist()) + "\n"
            handle.write(block)
            written += len(block)
    return written


def parse_csv(
    csv_path: str,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Parse a CSV file back into (file_id, segment_no, time_ms, value) arrays.

    This is the ``COPY INTO`` half of the eager_csv pipeline: full text
    parsing of every field including the ISO timestamps.
    """
    with open(csv_path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        if header != CSV_HEADER:
            raise FormatError(f"{csv_path}: unexpected CSV header {header!r}")
        body = handle.read()
    lines = body.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    try:
        parts = [line.split(",") for line in lines]
        columns = list(zip(*parts))
        if len(columns) != 4:
            raise ValueError("wrong field count")
        file_ids = np.asarray(columns[0], dtype=np.int64)
        segment_nos = np.asarray(columns[1], dtype=np.int64)
        times = (
            np.asarray(columns[2], dtype="datetime64[ms]").astype(np.int64)
        )
        values = np.asarray(columns[3], dtype=np.int64)
    except ValueError as exc:
        raise FormatError(f"{csv_path}: malformed CSV body ({exc})") from exc
    return file_ids, segment_nos, times, values
