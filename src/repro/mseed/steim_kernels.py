"""Decode kernels for the Steim-like codec: batched numpy and optional numba.

The codec's hot loop is frame unpacking: every 512-sample frame stores its
deltas bit-packed (LSB-first) at one width.  Three interchangeable kernels
turn a *frame table* — parallel arrays of per-frame ``(width, count,
payload offset, output offset)`` built by one cheap header scan in
:mod:`repro.mseed.steim` — into the flat array of unsigned delta codes:

* ``loop`` — the historical per-frame numpy loop (one ``unpackbits`` +
  reshape + weighted sum per frame).  Kept as the reference baseline the
  decode benchmark measures the batched kernels against.
* ``numpy`` — the batched single-pass kernel: frames are grouped by
  ``(width, count)`` and each group is gathered and unpacked in one
  vectorized operation, so a whole chunk's worth of frames costs a handful
  of numpy calls instead of one per frame.  Always available.
* ``numba`` — a JIT-compiled nopython bit-twiddling loop (``nogil``, so
  decode threads scale past the GIL).  Auto-detected: when numba is not
  installed the registry silently omits it and ``numpy`` is the default.

All kernels are bit-exact to one another; ``tests/mseed`` and
``benchmarks/bench_decode.py`` gate on that equality.  Select explicitly
with :func:`set_kernel` or the ``REPRO_STEIM_KERNEL`` environment variable.
"""

from __future__ import annotations

import os

import numpy as np

from ..engine.errors import FormatError

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except ImportError:  # pragma: no cover - the container default
    _numba = None

__all__ = [
    "NUMBA_AVAILABLE",
    "active_kernel",
    "available_kernels",
    "set_kernel",
    "unpack_frames",
]

NUMBA_AVAILABLE = _numba is not None


# -- kernel implementations --------------------------------------------------


def _unpack_frames_loop(
    buf: np.ndarray,
    widths: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    starts: np.ndarray,
    out: np.ndarray,
) -> None:
    """Reference kernel: one unpackbits/reshape/sum per frame."""
    for f in range(len(widths)):
        width = int(widths[f])
        count = int(counts[f])
        start = int(starts[f])
        if width == 0:
            out[start : start + count] = 0
            continue
        offset = int(offsets[f])
        nbytes = (count * width + 7) // 8
        raw = buf[offset : offset + nbytes]
        bits = np.unpackbits(raw, bitorder="little")[: count * width]
        matrix = bits.reshape(count, width).astype(np.uint64)
        weights = np.uint64(1) << np.arange(width, dtype=np.uint64)
        out[start : start + count] = matrix.dot(weights)


def _unpack_frames_numpy(
    buf: np.ndarray,
    widths: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    starts: np.ndarray,
    out: np.ndarray,
) -> None:
    """Batched kernel: frames grouped by ``(width, count)``, unpacked per group.

    A steim stream is overwhelmingly frames of one width and one count
    (the codec's ``FRAME_SAMPLES``), so the frame table collapses to a
    handful of groups.  Each group unpacks in a few whole-group numpy
    calls: gather every frame's payload rows at once, ``unpackbits`` them
    to an LSB-first bit matrix, right-pad each sample's bits to the
    smallest 8/16/32/64-bit container, and let ``packbits`` re-assemble
    the codes natively — the expensive traffic stays uint8 instead of the
    reference loop's per-sample uint64 matrix, and the Python-level work
    drops from one iteration per frame to one per distinct frame shape.
    """
    if not len(widths) or not len(out):
        return
    widths = widths.astype(np.int64, copy=False)
    counts = counts.astype(np.int64, copy=False)
    offsets = offsets.astype(np.int64, copy=False)
    starts = starts.astype(np.int64, copy=False)
    # counts fit in 16 bits (frame headers store them as uint16), so a
    # (width, count) pair packs into one key for the group scan.
    pairs = (widths << 16) | counts
    for key in np.unique(pairs):
        width = int(key) >> 16
        count = int(key) & 0xFFFF
        if width == 0:
            continue  # out is pre-zeroed
        members = pairs == key
        group_offsets = offsets[members]
        group_starts = starts[members]
        group = len(group_offsets)
        nbytes = (count * width + 7) // 8
        rows = buf[group_offsets[:, None] + np.arange(nbytes, dtype=np.int64)]
        bits = np.unpackbits(rows, axis=1, bitorder="little")[
            :, : count * width
        ].reshape(group * count, width)
        if width <= 8:
            container, dtype = 8, np.uint8
        elif width <= 16:
            container, dtype = 16, np.uint16
        elif width <= 32:
            container, dtype = 32, np.uint32
        else:
            container, dtype = 64, np.uint64
        if width < container:
            padded = np.zeros((group * count, container), dtype=np.uint8)
            padded[:, :width] = bits
            bits = padded
        # Rows are whole bytes, so packing the raveled row-major matrix is
        # byte-for-byte the per-row pack — and the flat form of packbits is
        # far faster than its axis= path.
        codes = np.packbits(bits.reshape(-1), bitorder="little").view(dtype)
        if group == 1 or (
            np.all(group_starts[1:] - group_starts[:-1] == count)
        ):
            # The dominant shape: one payload's run of full frames lands in
            # one contiguous output slice.
            begin = int(group_starts[0])
            out[begin : begin + group * count] = codes
        else:
            out[group_starts[:, None] + np.arange(count, dtype=np.int64)] = (
                codes.reshape(group, count)
            )


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba exists

    @_numba.njit(cache=True, nogil=True)
    def _unpack_frames_numba_jit(buf, widths, counts, offsets, starts, out):
        for f in range(widths.shape[0]):
            width = widths[f]
            count = counts[f]
            start = starts[f]
            if width == 0:
                for j in range(count):
                    out[start + j] = 0
                continue
            offset = offsets[f]
            bit = 0
            for j in range(count):
                code = np.uint64(0)
                for k in range(width):
                    byte = buf[offset + (bit >> 3)]
                    code |= np.uint64((byte >> (bit & 7)) & 1) << np.uint64(k)
                    bit += 1
                out[start + j] = code

    def _unpack_frames_numba(buf, widths, counts, offsets, starts, out):
        _unpack_frames_numba_jit(
            buf,
            widths.astype(np.int64),
            counts.astype(np.int64),
            offsets.astype(np.int64),
            starts.astype(np.int64),
            out,
        )


# -- kernel registry ---------------------------------------------------------

_KERNELS = {
    "loop": _unpack_frames_loop,
    "numpy": _unpack_frames_numpy,
}
if NUMBA_AVAILABLE:  # pragma: no cover
    _KERNELS["numba"] = _unpack_frames_numba


def _default_kernel() -> str:
    requested = os.environ.get("REPRO_STEIM_KERNEL", "")
    if requested in _KERNELS:
        return requested
    return "numba" if NUMBA_AVAILABLE else "numpy"


_active = _default_kernel()


def available_kernels() -> tuple[str, ...]:
    """Every kernel importable in this interpreter, reference loop included."""
    return tuple(sorted(_KERNELS))


def active_kernel() -> str:
    """The kernel :func:`unpack_frames` currently dispatches to."""
    return _active


def set_kernel(name: str) -> str:
    """Select a kernel by name; returns the previously active one."""
    global _active
    if name not in _KERNELS:
        raise FormatError(
            f"unknown steim decode kernel {name!r}; "
            f"available: {available_kernels()}"
        )
    previous = _active
    _active = name
    return previous


def unpack_frames(
    buf: np.ndarray,
    widths: np.ndarray,
    counts: np.ndarray,
    offsets: np.ndarray,
    starts: np.ndarray,
    total: int,
) -> np.ndarray:
    """Run the active kernel over a frame table; returns the delta codes.

    ``buf`` is the concatenated payload bytes; each frame ``f`` reads
    ``(counts[f] * widths[f] + 7) // 8`` bytes at ``offsets[f]`` and writes
    ``counts[f]`` codes at ``starts[f]`` of the ``total``-long output.
    """
    out = np.zeros(total, dtype=np.uint64)
    _KERNELS[_active](buf, widths, counts, offsets, starts, out)
    return out
