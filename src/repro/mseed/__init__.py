"""The xseed chunked-file substrate: an mSEED/libmseed stand-in.

Chunks (files) carry small header metadata (GMd) and large Steim-compressed
waveform payloads (AD); see DESIGN.md for the substitution rationale.
"""

from .format import SegmentHeader, VolumeHeader
from .reader import (
    FileMetadata,
    SegmentSamples,
    read_metadata,
    read_samples,
    read_samples_in_range,
    read_segment,
    sample_times,
)
from .repository import ChunkInfo, FileRepository
from .steim import decode, encode
from .writer import SegmentData, write_volume

__all__ = [
    "ChunkInfo",
    "FileMetadata",
    "FileRepository",
    "SegmentData",
    "SegmentHeader",
    "SegmentSamples",
    "VolumeHeader",
    "decode",
    "encode",
    "read_metadata",
    "read_samples",
    "read_samples_in_range",
    "read_segment",
    "sample_times",
    "write_volume",
]
