"""Internally-chunked archive files and URI-based chunk access.

The paper notes that chunked data does not always mean one-file-per-chunk:
"there are other cases, like BAM files used in genome sequencing, where
huge files are internally chunked" (Section II-C), and lists new sources as
future work (Section VIII).  This module provides both:

* :func:`pack_archive` concatenates xseed volumes into one ``.xar`` archive
  with an entry index (name → offset/length);
* :class:`ArchiveRepository` exposes the archive's entries as chunks with
  URIs of the form ``/path/to/data.xar#entry-name``;
* :func:`open_chunk` resolves any chunk URI — plain file path or archive
  member — into a file-like object, which the xseed reader uses for all
  access paths (so the Registrar, lazy loading and in-situ access work on
  archives unchanged).
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass

from ..engine.errors import FormatError
from .repository import ChunkInfo

__all__ = ["pack_archive", "ArchiveRepository", "open_chunk", "split_uri"]

ARCHIVE_MAGIC = b"XAR1"
ARCHIVE_SUFFIX = ".xar"
_COUNT = struct.Struct("<I")
_ENTRY_FIXED = struct.Struct("<HQQ")  # name length, offset, length


def split_uri(uri: str) -> tuple[str, str | None]:
    """Split a chunk URI into (path, member); member is None for files."""
    if "#" in uri:
        path, member = uri.split("#", 1)
        return path, member
    return uri, None


def pack_archive(archive_path: str, chunk_paths: list[str]) -> int:
    """Concatenate chunk files into one archive; returns bytes written.

    Entry names are the chunks' base names and must be unique.
    """
    names = [os.path.basename(p) for p in chunk_paths]
    if len(set(names)) != len(names):
        raise FormatError("archive entries must have unique base names")
    sizes = [os.path.getsize(p) for p in chunk_paths]
    header_size = len(ARCHIVE_MAGIC) + _COUNT.size + sum(
        _ENTRY_FIXED.size + len(n.encode("utf-8")) for n in names
    )
    offsets = []
    cursor = header_size
    for size in sizes:
        offsets.append(cursor)
        cursor += size
    os.makedirs(os.path.dirname(os.path.abspath(archive_path)), exist_ok=True)
    with open(archive_path, "wb") as out:
        out.write(ARCHIVE_MAGIC)
        out.write(_COUNT.pack(len(names)))
        for name, offset, size in zip(names, offsets, sizes):
            blob = name.encode("utf-8")
            out.write(_ENTRY_FIXED.pack(len(blob), offset, size))
            out.write(blob)
        for path in chunk_paths:
            with open(path, "rb") as source:
                out.write(source.read())
    return cursor


def _read_index(archive_path: str) -> dict[str, tuple[int, int]]:
    """Entry name → (offset, length)."""
    with open(archive_path, "rb") as handle:
        magic = handle.read(len(ARCHIVE_MAGIC))
        if magic != ARCHIVE_MAGIC:
            raise FormatError(f"{archive_path}: bad archive magic {magic!r}")
        (count,) = _COUNT.unpack(handle.read(_COUNT.size))
        index: dict[str, tuple[int, int]] = {}
        for _ in range(count):
            name_len, offset, length = _ENTRY_FIXED.unpack(
                handle.read(_ENTRY_FIXED.size)
            )
            name = handle.read(name_len).decode("utf-8")
            index[name] = (offset, length)
    return index


class _SlicedFile(io.RawIOBase):
    """A read-only window [offset, offset+length) of an underlying file."""

    def __init__(self, handle, offset: int, length: int) -> None:
        self._handle = handle
        self._offset = offset
        self._length = length
        self._position = 0
        handle.seek(offset)

    def read(self, size: int = -1) -> bytes:
        remaining = self._length - self._position
        if size < 0 or size > remaining:
            size = remaining
        if size <= 0:
            return b""
        self._handle.seek(self._offset + self._position)
        data = self._handle.read(size)
        self._position += len(data)
        return data

    def seek(self, position: int, whence: int = 0) -> int:
        if whence == 0:
            target = position
        elif whence == 1:
            target = self._position + position
        elif whence == 2:
            target = self._length + position
        else:  # pragma: no cover - io protocol completeness
            raise ValueError(f"invalid whence {whence}")
        if target < 0:
            raise ValueError("negative seek position")
        self._position = target
        return self._position

    def tell(self) -> int:
        return self._position

    def close(self) -> None:
        try:
            self._handle.close()
        finally:
            super().close()

    def readable(self) -> bool:  # pragma: no cover - io protocol
        return True

    def seekable(self) -> bool:  # pragma: no cover - io protocol
        return True


def open_chunk(uri: str):
    """Open any chunk URI for binary reading.

    Plain paths open directly; ``archive.xar#entry`` URIs open a sliced
    window over the archive.  The returned object supports read/seek/tell
    and closes the underlying file on close.
    """
    path, member = split_uri(uri)
    if member is None:
        return open(path, "rb")
    index = _read_index(path)
    try:
        offset, length = index[member]
    except KeyError:
        raise FormatError(f"{path}: no archive entry {member!r}") from None
    return _SlicedFile(open(path, "rb"), offset, length)


@dataclass(frozen=True)
class _ArchiveEntry:
    name: str
    offset: int
    length: int


class ArchiveRepository:
    """A repository whose chunks live inside one archive file.

    Implements the same listing interface as
    :class:`~repro.mseed.repository.FileRepository`, with member URIs.
    """

    def __init__(self, archive_path: str) -> None:
        self.archive_path = os.path.abspath(archive_path)

    def exists(self) -> bool:
        return os.path.isfile(self.archive_path)

    def list_chunks(self) -> list[ChunkInfo]:
        index = _read_index(self.archive_path)
        chunks = [
            ChunkInfo(f"{self.archive_path}#{name}", length)
            for name, (_, length) in index.items()
        ]
        chunks.sort(key=lambda c: c.uri)
        return chunks

    def iter_uris(self):
        for chunk in self.list_chunks():
            yield chunk.uri

    @property
    def num_chunks(self) -> int:
        return len(self.list_chunks())

    def total_bytes(self) -> int:
        return sum(chunk.size_bytes for chunk in self.list_chunks())
