"""Shared JSON emission for CLI subcommands.

Every ``--json`` surface in the CLI (``repro cache --json``,
``repro analyze --json``) emits through this module so the shape stays
uniform: two-space indent, sorted keys, and a sibling ``metadata`` block
identifying the tool, the payload kind, and the format version.  The
metadata is attached as a *sibling* key — existing top-level keys stay
where consumers already look for them.
"""

from __future__ import annotations

import json
from typing import Any, Dict

__all__ = ["FORMAT_VERSION", "attach_metadata", "render_json"]

FORMAT_VERSION = 1


def attach_metadata(payload: Dict[str, Any], kind: str) -> Dict[str, Any]:
    """Return ``payload`` with a standard ``metadata`` block added."""
    enriched = dict(payload)
    enriched["metadata"] = {
        "tool": "repro",
        "kind": kind,
        "format_version": FORMAT_VERSION,
    }
    return enriched


def render_json(payload: Dict[str, Any], kind: str) -> str:
    """Serialize ``payload`` (plus metadata) in the house style."""
    return json.dumps(attach_metadata(payload, kind), indent=2, sort_keys=True)
