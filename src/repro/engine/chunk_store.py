"""Persistent on-disk chunk store: the second tier of the Recycler.

The in-memory Recycler makes just-in-time loading pay off only while the
process lives — every restart re-decodes every Steim chunk.  Following the
idea of pushing DBMS caching onto a shared storage tier (Odysseus/DFS) and
of a BDMS owning its on-disk representation instead of re-parsing external
files (AsterixDB's managed LSM storage), this module persists *decoded*
chunks as memory-mappable columnar files:

* one directory per chunk URI (named by a URI digest) holding one ``.npy``
  file per column plus a small JSON ``manifest.json``;
* fixed-width columns re-hydrate as zero-copy ``np.memmap`` arrays — a RAM
  miss becomes a page-cache read instead of a Steim re-decode;
* the manifest is written *last* and the whole directory is committed with
  one atomic rename, so a crash mid-spill leaves the store readable: an
  entry either exists completely or not at all, and partial/corrupt
  manifests are simply ignored on open.

Durability: payload files, the manifest and the staging directory are
fsynced *before* the commit rename (and the store root after it), so a
power loss cannot leave a "committed" entry pointing at zero-length or
torn column files.  Defense in depth on the read side: :meth:`get`
verifies each payload file's on-disk size against the manifest before
decoding; a mismatch is treated as a miss and the entry is quarantined
(moved aside, reaped at the next open), never served and never fatal.
Opening a store also sweeps leftovers of crashed writers — orphaned
``.tmp-*`` staging directories of dead processes, quarantined entries, and
``*.old`` directories from an interrupted replace (restored when the crash
lost the live entry, deleted otherwise).

The store is shared between threads (all index/stat mutations are under a
mutex) and between *processes*: writers on any process commit atomically,
and :meth:`get` falls back to a filesystem probe for entries committed by
another process after this store object scanned the directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass

import numpy as np

from .chunk_stats import compute_column_ranges, parse_ranges
from .errors import StorageError
from .table import Field, Schema, Table
from .types import STRING, type_by_name
from .column import Column
from ..util.lock_sanitizer import make_lock

__all__ = ["ChunkStoreStats", "ChunkStore"]

MANIFEST_NAME = "manifest.json"
STORE_VERSION = 1
# Directory-name suffixes of non-entry states: a replaced entry moved
# aside mid-commit, and a torn entry moved aside by read verification.
OLD_SUFFIX = ".old"
QUARANTINE_SUFFIX = ".quarantine"


def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: str) -> None:
    """Persist a directory's entries (rename/create durability).

    Best-effort: some filesystems refuse O_RDONLY fsync on directories;
    losing the sync there degrades to the pre-durability behavior instead
    of failing the write path.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@dataclass
class ChunkStoreStats:
    """Counters of the disk tier (mirrors :class:`RecyclerStats`)."""

    spills: int = 0
    rehydrates: int = 0
    misses: int = 0
    bytes_spilled: int = 0
    bytes_rehydrated: int = 0
    invalid_entries: int = 0
    swept_dirs: int = 0
    restored_entries: int = 0

    def reset(self) -> None:
        self.spills = 0
        self.rehydrates = 0
        self.misses = 0
        self.bytes_spilled = 0
        self.bytes_rehydrated = 0
        self.invalid_entries = 0
        self.swept_dirs = 0
        self.restored_entries = 0


class ChunkStore:
    """A directory of decoded chunks, keyed by chunk URI.

    Layout::

        root/<digest>/manifest.json   # uri, loading cost, column directory
        root/<digest>/c<i>.npy        # one array per column
        root/.tmp-*                   # in-flight writes, never read

    The manifest is the commit point: data files are staged in a ``.tmp-*``
    directory, the manifest is written there last, and the directory is
    renamed into place.  Readers only trust directories whose manifest
    parses and matches the requested URI.
    """

    # Machine-checked (repro analyze, lock-discipline / blocking-under-lock):
    # staging names must be unique, and the file I/O around them is
    # deliberately outside the lock — only the counter bump is inside.
    _GUARDED = {"_lock": ("_tmp_counter",)}

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = ChunkStoreStats()
        os.makedirs(root, exist_ok=True)
        self._lock = make_lock("ChunkStore._lock")
        self._tmp_counter = 0
        # uri -> (dirname, payload_bytes, loading_cost)
        self._index: dict[str, tuple[str, int, float]] = {}
        # Stats sidecars parsed during the startup scan, served (and
        # dropped) on first get_stats so open-time adoption does not
        # re-read every manifest it just parsed.
        self._scanned_stats: dict[str, dict[str, tuple[float, float]]] = {}
        self._scan()

    # -- keys and layout ---------------------------------------------------

    @staticmethod
    def _key(uri: str) -> str:
        return hashlib.sha1(uri.encode("utf-8")).hexdigest()[:20]

    def _entry_dir(self, uri: str) -> str:
        return os.path.join(self.root, self._key(uri))

    def _scan(self) -> None:
        """Sweep crash leftovers, then index every committed entry."""
        self._sweep()
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if not os.path.isdir(path) or self._is_non_entry(name):
                continue
            manifest = self._read_manifest(path)
            if manifest is None:
                self.stats.invalid_entries += 1
                continue
            payload = sum(int(c.get("nbytes", 0)) for c in manifest["columns"])
            self._index[manifest["uri"]] = (
                name, payload, float(manifest.get("loading_cost", 0.0))
            )
            ranges = parse_ranges(manifest.get("stats"))
            if ranges is not None:
                self._scanned_stats[manifest["uri"]] = ranges

    @staticmethod
    def _is_non_entry(name: str) -> bool:
        return (
            name.startswith(".tmp-")
            or OLD_SUFFIX in name
            or name.endswith(QUARANTINE_SUFFIX)
        )

    def _sweep(self) -> None:
        """Garbage-collect what crashed writers left behind.

        * ``.tmp-*`` staging dirs whose writing process is gone are dead
          (live writers of other processes are left alone: their commit
          rename is still coming);
        * quarantined entries were torn when a reader moved them aside —
          the chunk is re-decodable from the repository, so reap them;
        * ``X.old`` dirs mark an interrupted replace: when ``X`` itself is
          missing the crash hit between the two renames and the old entry
          is the only surviving committed state — restore it; when ``X``
          exists the replace completed and the leftover is garbage.
        """
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if not os.path.isdir(path):
                continue
            if name.startswith(".tmp-"):
                if self._staging_pid_alive(name):
                    continue
                shutil.rmtree(path, ignore_errors=True)
                self.stats.swept_dirs += 1
            elif name.endswith(QUARANTINE_SUFFIX):
                shutil.rmtree(path, ignore_errors=True)
                self.stats.swept_dirs += 1
            elif OLD_SUFFIX in name:
                final = os.path.join(
                    self.root, name[: name.index(OLD_SUFFIX)]
                )
                if not os.path.isdir(final) and (
                    self._read_manifest(path) is not None
                ):
                    try:
                        os.rename(path, final)
                        self.stats.restored_entries += 1
                        continue
                    except OSError:
                        pass
                shutil.rmtree(path, ignore_errors=True)
                self.stats.swept_dirs += 1

    @staticmethod
    def _staging_pid_alive(name: str) -> bool:
        """Does the process that staged ``.tmp-<pid>-<n>`` still run?

        Unparseable names count as dead (sweepable); a PID we may not
        signal counts as alive (conservative — the dir is at worst kept
        one open longer).
        """
        parts = name.split("-")
        try:
            pid = int(parts[1])
        except (IndexError, ValueError):
            return False
        if pid == os.getpid():
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:
            return True
        return True

    @staticmethod
    def _read_manifest(entry_dir: str) -> dict | None:
        """Parse an entry's manifest; None when absent, partial or corrupt."""
        path = os.path.join(entry_dir, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != STORE_VERSION
            or "uri" not in manifest
            or not isinstance(manifest.get("columns"), list)
        ):
            return None
        return manifest

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, uri: str) -> bool:
        # Always a manifest-only disk probe (no payload reads): the entry
        # may have been committed by another process after this store
        # scanned the directory — or deleted behind our back (a concurrent
        # ``clear()``), in which case the stale index entry is dropped.
        manifest = self._read_manifest(self._entry_dir(uri))
        if manifest is not None and manifest["uri"] == uri:
            return True
        with self._lock:
            self._index.pop(uri, None)
        return False

    def uris(self) -> set[str]:
        with self._lock:
            return set(self._index)

    @property
    def nbytes(self) -> int:
        """Total payload bytes of all indexed entries."""
        with self._lock:
            return sum(payload for _, payload, _ in self._index.values())

    def loading_cost(self, uri: str) -> float | None:
        with self._lock:
            entry = self._index.get(uri)
            return entry[2] if entry is not None else None

    def payload_nbytes(self, uri: str) -> int:
        """Indexed payload bytes of one entry (0 when unknown)."""
        with self._lock:
            entry = self._index.get(uri)
            return entry[1] if entry is not None else 0

    def get_stats(self, uri: str) -> dict[str, tuple[float, float]] | None:
        """The statistics sidecar of one committed entry, validated.

        Returns ``{column: (min, max)}`` or None when the entry is absent,
        predates the sidecar, or the sidecar is partial/corrupt — a broken
        sidecar never surfaces as (wrong) bounds, and never makes the
        chunk itself unreadable.  Sidecars parsed by the startup scan are
        served from memory once; later calls probe the filesystem (the
        entry may have been rewritten or deleted by another process).
        """
        with self._lock:
            scanned = self._scanned_stats.pop(uri, None)
        if scanned is not None:
            return scanned
        manifest = self._read_manifest(self._entry_dir(uri))
        if manifest is None or manifest["uri"] != uri:
            return None
        return parse_ranges(manifest.get("stats"))

    # -- write path --------------------------------------------------------

    def put(
        self, uri: str, table: Table, loading_cost: float,
        table_name: str | None = None,
    ) -> int:
        """Persist a decoded chunk; returns payload bytes written.

        The write is atomic *and durable*: data files and the manifest are
        staged in a temp directory, each fsynced as written, the staging
        directory itself is fsynced, and only then is it renamed into
        place (with the root directory fsynced after) — a power loss
        either loses the whole entry or none of it, never the payload
        bytes of a committed one.  A concurrent writer of the same URI
        wins benignly (content for one URI is identical by the
        loader-purity contract).
        """
        with self._lock:
            self._tmp_counter += 1
            staging = os.path.join(
                self.root, f".tmp-{os.getpid()}-{self._tmp_counter}"
            )
        os.makedirs(staging, exist_ok=True)
        payload = 0
        try:
            columns = []
            for position, (fld, column) in enumerate(
                zip(table.schema, table.columns)
            ):
                filename = f"c{position}.npy"
                file_path = os.path.join(staging, filename)
                with open(file_path, "wb") as handle:
                    if fld.dtype is STRING:
                        np.save(handle,
                                np.asarray(column.values, dtype=object),
                                allow_pickle=True)
                    else:
                        np.save(handle,
                                np.ascontiguousarray(column.values),
                                allow_pickle=False)
                    _fsync_file(handle)
                nbytes = os.path.getsize(file_path)
                payload += nbytes
                columns.append(
                    {
                        "name": fld.name,
                        "dtype": fld.dtype.name,
                        "file": filename,
                        "nbytes": nbytes,
                    }
                )
            manifest = {
                "version": STORE_VERSION,
                "uri": uri,
                "table": table_name,
                "loading_cost": loading_cost,
                "num_rows": table.num_rows,
                "columns": columns,
                # Statistics sidecar: exact numeric min/max of the decoded
                # chunk, committed atomically with the data.  Readers that
                # fail to parse it treat it as absent (never wrong).
                "stats": {
                    name: [low, high]
                    for name, (low, high) in compute_column_ranges(
                        table
                    ).items()
                },
            }
            # The manifest is the commit marker within the staging dir; the
            # rename below is the commit marker within the store.
            with open(
                os.path.join(staging, MANIFEST_NAME), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle)
                _fsync_file(handle)
            _fsync_dir(staging)
            final = self._entry_dir(uri)
            self._replace_dir(staging, final)
            _fsync_dir(self.root)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        with self._lock:
            self._index[uri] = (os.path.basename(final), payload, loading_cost)
            self._scanned_stats.pop(uri, None)  # superseded by this write
            self.stats.spills += 1
            self.stats.bytes_spilled += payload
        return payload

    def _replace_dir(self, staging: str, final: str) -> None:
        """Move a staged entry into place, tolerating a concurrent winner.

        A replace moves the old entry aside under a *writer-unique* name
        and deletes it only after the new one is committed, so at every
        instant a committed entry is reachable — as ``final``, or as the
        ``final.old-*`` copy the open-time sweep restores if a crash hits
        between the two renames.  Unique names mean concurrent replacers
        of the same URI never delete each other's safety copy.
        """
        with self._lock:
            self._tmp_counter += 1
            doomed = (
                f"{final}{OLD_SUFFIX}-{os.getpid()}-{self._tmp_counter}"
            )
        if os.path.isdir(final):
            try:
                os.rename(final, doomed)
            except OSError:
                pass
        try:
            os.rename(staging, final)
        except OSError:
            # Lost the race to a concurrent writer of the same URI: their
            # committed entry is equivalent; drop ours.
            if not os.path.isdir(final):
                raise
            shutil.rmtree(staging, ignore_errors=True)
        shutil.rmtree(doomed, ignore_errors=True)

    # -- read path ---------------------------------------------------------

    def get(self, uri: str) -> tuple[Table, float] | None:
        """Re-hydrate one chunk, or None when the store has no valid entry.

        Fixed-width columns come back as zero-copy ``np.memmap`` arrays
        (``Column.is_mapped``); object (string) columns are materialized.
        """
        loaded = self._probe(uri)
        if loaded is None:
            with self._lock:
                self._index.pop(uri, None)  # drop if deleted behind us
                self.stats.misses += 1
            return None
        table, cost, payload = loaded
        with self._lock:
            self.stats.rehydrates += 1
            self.stats.bytes_rehydrated += payload
        return table, cost

    def _probe(self, uri: str) -> tuple[Table, float, int] | None:
        """Load an entry without touching hit/miss stats.

        Falls back to a filesystem probe when the in-memory index has no
        entry — another process (a stage-two decode worker) may have
        committed it after this store object scanned the directory.
        Entries whose payload files do not match the manifest (size or
        row count) are quarantined, never served.
        """
        entry_dir = self._entry_dir(uri)
        manifest = self._read_manifest(entry_dir)
        if manifest is None or manifest["uri"] != uri:
            return None
        fields: list[Field] = []
        columns: list[Column] = []
        payload = 0
        try:
            for spec in manifest["columns"]:
                dtype = type_by_name(spec["dtype"])
                file_path = os.path.join(entry_dir, spec["file"])
                # Size check before decode: a torn or zero-length payload
                # (power loss predating the fsync discipline, bit rot,
                # manual truncation) must read as a miss, not an exception
                # from deep inside np.load.
                expected = int(spec.get("nbytes", -1))
                if expected >= 0 and os.path.getsize(file_path) != expected:
                    raise StorageError(
                        f"chunk payload {spec['file']!r} of {uri!r} is "
                        f"{os.path.getsize(file_path)} bytes, manifest "
                        f"says {expected}"
                    )
                if dtype is STRING:
                    values = np.load(file_path, allow_pickle=True)
                    values = np.asarray(values, dtype=object)
                else:
                    values = np.load(file_path, mmap_mode="r")
                fields.append(Field(spec["name"], dtype))
                columns.append(Column(dtype, values))
                payload += int(spec.get("nbytes", 0))
            table = Table(Schema(fields), columns)
            if table.num_rows != int(manifest.get("num_rows", table.num_rows)):
                raise StorageError(
                    f"chunk {uri!r} decoded {table.num_rows} rows, manifest "
                    f"says {manifest.get('num_rows')}"
                )
        except (FileNotFoundError, ValueError, KeyError, StorageError):
            # Definitively broken: missing/torn payloads, size or row-count
            # mismatches, unparseable npy content.
            self._quarantine(uri, entry_dir)
            return None
        except OSError:
            # Transient I/O failure (fd exhaustion, interrupt): the entry
            # may be perfectly valid — report a miss but leave it on disk
            # for the next attempt.
            with self._lock:
                self.stats.invalid_entries += 1
            return None
        with self._lock:
            self._index[uri] = (
                os.path.basename(entry_dir), payload,
                float(manifest.get("loading_cost", 0.0)),
            )
        return table, float(manifest.get("loading_cost", 0.0)), payload

    def _quarantine(self, uri: str, entry_dir: str) -> None:
        """Move a torn entry aside: served as a miss, reaped at next open.

        The chunk itself is never lost — it is re-decodable from the
        repository — so quarantine only has to guarantee the broken files
        are not read again and do not shadow a future rewrite of the URI.
        Re-verified before the rename: a concurrent writer may have
        re-committed a fresh valid entry at this path since the failed
        read, and a concurrent delete may have removed it entirely —
        neither is a torn entry to destroy or count.
        """
        with self._lock:
            self._index.pop(uri, None)
            self._scanned_stats.pop(uri, None)
        if not os.path.isdir(entry_dir):
            return  # concurrently deleted: nothing to quarantine or count
        with self._lock:
            self.stats.invalid_entries += 1
        if self._entry_is_intact(entry_dir):
            return  # concurrently re-committed: a valid entry lives here
        doomed = entry_dir + QUARANTINE_SUFFIX
        shutil.rmtree(doomed, ignore_errors=True)
        try:
            os.rename(entry_dir, doomed)
        except OSError:
            # Already gone or already moved by a concurrent reader.
            pass

    def _entry_is_intact(self, entry_dir: str) -> bool:
        """Manifest parses and every payload file matches its size."""
        manifest = self._read_manifest(entry_dir)
        if manifest is None:
            return False
        try:
            for spec in manifest["columns"]:
                expected = int(spec.get("nbytes", -1))
                size = os.path.getsize(os.path.join(entry_dir, spec["file"]))
                if expected >= 0 and size != expected:
                    return False
        except (OSError, KeyError, ValueError, TypeError):
            return False
        return True

    # -- maintenance -------------------------------------------------------

    def delete(self, uri: str) -> None:
        with self._lock:
            self._index.pop(uri, None)
            self._scanned_stats.pop(uri, None)
        shutil.rmtree(self._entry_dir(uri), ignore_errors=True)

    def clear(self) -> None:
        """Drop every entry (the fully-cold protocol of the experiments)."""
        with self._lock:
            self._index.clear()
            self._scanned_stats.clear()
        for name in os.listdir(self.root):
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    def tier_stats(self) -> dict[str, int]:
        """JSON-friendly snapshot for ``repro cache`` and the benchmarks."""
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes_stored": sum(p for _, p, _ in self._index.values()),
                "spills": self.stats.spills,
                "rehydrates": self.stats.rehydrates,
                "misses": self.stats.misses,
                "bytes_spilled": self.stats.bytes_spilled,
                "bytes_rehydrated": self.stats.bytes_rehydrated,
                "invalid_entries": self.stats.invalid_entries,
                "swept_dirs": self.stats.swept_dirs,
                "restored_entries": self.stats.restored_entries,
            }
