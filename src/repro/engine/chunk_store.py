"""Persistent on-disk chunk store: the second tier of the Recycler.

The in-memory Recycler makes just-in-time loading pay off only while the
process lives — every restart re-decodes every Steim chunk.  Following the
idea of pushing DBMS caching onto a shared storage tier (Odysseus/DFS) and
of a BDMS owning its on-disk representation instead of re-parsing external
files (AsterixDB's managed LSM storage), this module persists *decoded*
chunks as memory-mappable columnar files:

* one directory per chunk URI (named by a URI digest) holding one ``.npy``
  file per column plus a small JSON ``manifest.json``;
* fixed-width columns re-hydrate as zero-copy ``np.memmap`` arrays — a RAM
  miss becomes a page-cache read instead of a Steim re-decode;
* the manifest is written *last* and the whole directory is committed with
  one atomic rename, so a crash mid-spill leaves the store readable: an
  entry either exists completely or not at all, and partial/corrupt
  manifests are simply ignored on open.

The store is shared between threads (all index/stat mutations are under a
mutex) and between *processes*: writers on any process commit atomically,
and :meth:`get` falls back to a filesystem probe for entries committed by
another process after this store object scanned the directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from dataclasses import dataclass

import numpy as np

from .chunk_stats import compute_column_ranges, parse_ranges
from .errors import StorageError
from .table import Field, Schema, Table
from .types import STRING, type_by_name
from .column import Column

__all__ = ["ChunkStoreStats", "ChunkStore"]

MANIFEST_NAME = "manifest.json"
STORE_VERSION = 1


@dataclass
class ChunkStoreStats:
    """Counters of the disk tier (mirrors :class:`RecyclerStats`)."""

    spills: int = 0
    rehydrates: int = 0
    misses: int = 0
    bytes_spilled: int = 0
    bytes_rehydrated: int = 0
    invalid_entries: int = 0

    def reset(self) -> None:
        self.spills = 0
        self.rehydrates = 0
        self.misses = 0
        self.bytes_spilled = 0
        self.bytes_rehydrated = 0
        self.invalid_entries = 0


class ChunkStore:
    """A directory of decoded chunks, keyed by chunk URI.

    Layout::

        root/<digest>/manifest.json   # uri, loading cost, column directory
        root/<digest>/c<i>.npy        # one array per column
        root/.tmp-*                   # in-flight writes, never read

    The manifest is the commit point: data files are staged in a ``.tmp-*``
    directory, the manifest is written there last, and the directory is
    renamed into place.  Readers only trust directories whose manifest
    parses and matches the requested URI.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = ChunkStoreStats()
        os.makedirs(root, exist_ok=True)
        self._lock = threading.Lock()
        self._tmp_counter = 0
        # uri -> (dirname, payload_bytes, loading_cost)
        self._index: dict[str, tuple[str, int, float]] = {}
        # Stats sidecars parsed during the startup scan, served (and
        # dropped) on first get_stats so open-time adoption does not
        # re-read every manifest it just parsed.
        self._scanned_stats: dict[str, dict[str, tuple[float, float]]] = {}
        self._scan()

    # -- keys and layout ---------------------------------------------------

    @staticmethod
    def _key(uri: str) -> str:
        return hashlib.sha1(uri.encode("utf-8")).hexdigest()[:20]

    def _entry_dir(self, uri: str) -> str:
        return os.path.join(self.root, self._key(uri))

    def _scan(self) -> None:
        """Index every committed entry; ignore temp dirs and broken ones."""
        for name in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, name)
            if name.startswith(".tmp-") or not os.path.isdir(path):
                continue
            manifest = self._read_manifest(path)
            if manifest is None:
                self.stats.invalid_entries += 1
                continue
            payload = sum(int(c.get("nbytes", 0)) for c in manifest["columns"])
            self._index[manifest["uri"]] = (
                name, payload, float(manifest.get("loading_cost", 0.0))
            )
            ranges = parse_ranges(manifest.get("stats"))
            if ranges is not None:
                self._scanned_stats[manifest["uri"]] = ranges

    @staticmethod
    def _read_manifest(entry_dir: str) -> dict | None:
        """Parse an entry's manifest; None when absent, partial or corrupt."""
        path = os.path.join(entry_dir, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("version") != STORE_VERSION
            or "uri" not in manifest
            or not isinstance(manifest.get("columns"), list)
        ):
            return None
        return manifest

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, uri: str) -> bool:
        # Always a manifest-only disk probe (no payload reads): the entry
        # may have been committed by another process after this store
        # scanned the directory — or deleted behind our back (a concurrent
        # ``clear()``), in which case the stale index entry is dropped.
        manifest = self._read_manifest(self._entry_dir(uri))
        if manifest is not None and manifest["uri"] == uri:
            return True
        with self._lock:
            self._index.pop(uri, None)
        return False

    def uris(self) -> set[str]:
        with self._lock:
            return set(self._index)

    @property
    def nbytes(self) -> int:
        """Total payload bytes of all indexed entries."""
        with self._lock:
            return sum(payload for _, payload, _ in self._index.values())

    def loading_cost(self, uri: str) -> float | None:
        with self._lock:
            entry = self._index.get(uri)
            return entry[2] if entry is not None else None

    def payload_nbytes(self, uri: str) -> int:
        """Indexed payload bytes of one entry (0 when unknown)."""
        with self._lock:
            entry = self._index.get(uri)
            return entry[1] if entry is not None else 0

    def get_stats(self, uri: str) -> dict[str, tuple[float, float]] | None:
        """The statistics sidecar of one committed entry, validated.

        Returns ``{column: (min, max)}`` or None when the entry is absent,
        predates the sidecar, or the sidecar is partial/corrupt — a broken
        sidecar never surfaces as (wrong) bounds, and never makes the
        chunk itself unreadable.  Sidecars parsed by the startup scan are
        served from memory once; later calls probe the filesystem (the
        entry may have been rewritten or deleted by another process).
        """
        with self._lock:
            scanned = self._scanned_stats.pop(uri, None)
        if scanned is not None:
            return scanned
        manifest = self._read_manifest(self._entry_dir(uri))
        if manifest is None or manifest["uri"] != uri:
            return None
        return parse_ranges(manifest.get("stats"))

    # -- write path --------------------------------------------------------

    def put(
        self, uri: str, table: Table, loading_cost: float,
        table_name: str | None = None,
    ) -> int:
        """Persist a decoded chunk; returns payload bytes written.

        The write is atomic: data files and the manifest are staged in a
        temp directory that is renamed into place as the last step.  A
        concurrent writer of the same URI wins benignly (content for one
        URI is identical by the loader-purity contract).
        """
        with self._lock:
            self._tmp_counter += 1
            staging = os.path.join(
                self.root, f".tmp-{os.getpid()}-{self._tmp_counter}"
            )
        os.makedirs(staging, exist_ok=True)
        payload = 0
        try:
            columns = []
            for position, (fld, column) in enumerate(
                zip(table.schema, table.columns)
            ):
                filename = f"c{position}.npy"
                file_path = os.path.join(staging, filename)
                if fld.dtype is STRING:
                    np.save(file_path, np.asarray(column.values, dtype=object),
                            allow_pickle=True)
                else:
                    np.save(file_path, np.ascontiguousarray(column.values),
                            allow_pickle=False)
                nbytes = os.path.getsize(file_path)
                payload += nbytes
                columns.append(
                    {
                        "name": fld.name,
                        "dtype": fld.dtype.name,
                        "file": filename,
                        "nbytes": nbytes,
                    }
                )
            manifest = {
                "version": STORE_VERSION,
                "uri": uri,
                "table": table_name,
                "loading_cost": loading_cost,
                "num_rows": table.num_rows,
                "columns": columns,
                # Statistics sidecar: exact numeric min/max of the decoded
                # chunk, committed atomically with the data.  Readers that
                # fail to parse it treat it as absent (never wrong).
                "stats": {
                    name: [low, high]
                    for name, (low, high) in compute_column_ranges(
                        table
                    ).items()
                },
            }
            # The manifest is the commit marker within the staging dir; the
            # rename below is the commit marker within the store.
            with open(
                os.path.join(staging, MANIFEST_NAME), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle)
            final = self._entry_dir(uri)
            self._replace_dir(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        with self._lock:
            self._index[uri] = (os.path.basename(final), payload, loading_cost)
            self._scanned_stats.pop(uri, None)  # superseded by this write
            self.stats.spills += 1
            self.stats.bytes_spilled += payload
        return payload

    @staticmethod
    def _replace_dir(staging: str, final: str) -> None:
        """Move a staged entry into place, tolerating a concurrent winner."""
        if os.path.isdir(final):
            # Replace: move the old entry aside first so the rename target
            # is free; a crash in between leaves either the old or the new
            # committed entry, never a torn one.
            doomed = final + ".old"
            shutil.rmtree(doomed, ignore_errors=True)
            try:
                os.rename(final, doomed)
            except OSError:
                pass
            shutil.rmtree(doomed, ignore_errors=True)
        try:
            os.rename(staging, final)
        except OSError:
            # Lost the race to a concurrent writer of the same URI: their
            # committed entry is equivalent; drop ours.
            if not os.path.isdir(final):
                raise
            shutil.rmtree(staging, ignore_errors=True)

    # -- read path ---------------------------------------------------------

    def get(self, uri: str) -> tuple[Table, float] | None:
        """Re-hydrate one chunk, or None when the store has no valid entry.

        Fixed-width columns come back as zero-copy ``np.memmap`` arrays
        (``Column.is_mapped``); object (string) columns are materialized.
        """
        loaded = self._probe(uri)
        if loaded is None:
            with self._lock:
                self._index.pop(uri, None)  # drop if deleted behind us
                self.stats.misses += 1
            return None
        table, cost, payload = loaded
        with self._lock:
            self.stats.rehydrates += 1
            self.stats.bytes_rehydrated += payload
        return table, cost

    def _probe(self, uri: str) -> tuple[Table, float, int] | None:
        """Load an entry without touching hit/miss stats.

        Falls back to a filesystem probe when the in-memory index has no
        entry — another process (a stage-two decode worker) may have
        committed it after this store object scanned the directory.
        """
        entry_dir = self._entry_dir(uri)
        manifest = self._read_manifest(entry_dir)
        if manifest is None or manifest["uri"] != uri:
            return None
        fields: list[Field] = []
        columns: list[Column] = []
        payload = 0
        try:
            for spec in manifest["columns"]:
                dtype = type_by_name(spec["dtype"])
                file_path = os.path.join(entry_dir, spec["file"])
                if dtype is STRING:
                    values = np.load(file_path, allow_pickle=True)
                    values = np.asarray(values, dtype=object)
                else:
                    values = np.load(file_path, mmap_mode="r")
                fields.append(Field(spec["name"], dtype))
                columns.append(Column(dtype, values))
                payload += int(spec.get("nbytes", 0))
            table = Table(Schema(fields), columns)
        except (OSError, ValueError, KeyError, StorageError):
            with self._lock:
                self.stats.invalid_entries += 1
            return None
        if table.num_rows != int(manifest.get("num_rows", table.num_rows)):
            with self._lock:
                self.stats.invalid_entries += 1
            return None
        with self._lock:
            self._index[uri] = (
                os.path.basename(entry_dir), payload,
                float(manifest.get("loading_cost", 0.0)),
            )
        return table, float(manifest.get("loading_cost", 0.0)), payload

    # -- maintenance -------------------------------------------------------

    def delete(self, uri: str) -> None:
        with self._lock:
            self._index.pop(uri, None)
            self._scanned_stats.pop(uri, None)
        shutil.rmtree(self._entry_dir(uri), ignore_errors=True)

    def clear(self) -> None:
        """Drop every entry (the fully-cold protocol of the experiments)."""
        with self._lock:
            self._index.clear()
            self._scanned_stats.clear()
        for name in os.listdir(self.root):
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    def tier_stats(self) -> dict[str, int]:
        """JSON-friendly snapshot for ``repro cache`` and the benchmarks."""
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes_stored": sum(p for _, p, _ in self._index.values()),
                "spills": self.stats.spills,
                "rehydrates": self.stats.rehydrates,
                "misses": self.stats.misses,
                "bytes_spilled": self.stats.bytes_spilled,
                "bytes_rehydrated": self.stats.bytes_rehydrated,
                "invalid_entries": self.stats.invalid_entries,
            }
