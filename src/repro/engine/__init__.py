"""The columnar engine substrate (a MonetDB-like stand-in).

This package is the generic DBMS the paper's contribution plugs into:
columns and tables (:mod:`column`, :mod:`table`), a catalog with data-kind
classification (:mod:`catalog`), logical algebra and a rule-based optimizer
(:mod:`algebra`, :mod:`optimizer`), vectorized physical operators
(:mod:`physical`), a MAL-like rewritable program layer (:mod:`mal`), paged
storage with a buffer pool (:mod:`storage`), the Recycler chunk cache
(:mod:`recycler`), index structures (:mod:`indexes`) and a SQL front-end
(:mod:`sql`).

The paper-specific machinery — two-stage execution, coloring rules,
incremental metadata derivation — lives in :mod:`repro.core` and composes
these pieces.
"""

from .catalog import Catalog, ForeignKey, TableKind
from .chunk_store import ChunkStore, ChunkStoreStats
from .column import Column, ColumnBuilder
from .database import Database
from .errors import (
    BindError,
    CatalogError,
    EngineError,
    ExecutionError,
    FormatError,
    LexerError,
    ParseError,
    PlanError,
    SQLError,
    StorageError,
    TypeMismatchError,
)
from .physical import ExecutionContext, ExecStats, drop_hidden_columns, execute_plan
from .recycler import Recycler
from .storage import BufferPool, PagedColumnStore
from .table import Field, Schema, Table, TableBuilder
from .types import BOOL, FLOAT64, INT64, STRING, TIMESTAMP

__all__ = [
    "BOOL",
    "BindError",
    "BufferPool",
    "Catalog",
    "CatalogError",
    "ChunkStore",
    "ChunkStoreStats",
    "Column",
    "ColumnBuilder",
    "Database",
    "EngineError",
    "ExecStats",
    "ExecutionContext",
    "ExecutionError",
    "Field",
    "FLOAT64",
    "ForeignKey",
    "FormatError",
    "INT64",
    "LexerError",
    "PagedColumnStore",
    "ParseError",
    "PlanError",
    "Recycler",
    "SQLError",
    "STRING",
    "Schema",
    "StorageError",
    "TIMESTAMP",
    "Table",
    "TableBuilder",
    "TableKind",
    "TypeMismatchError",
    "drop_hidden_columns",
    "execute_plan",
]
