"""Shared chunk scans: one physical pass over a chunk feeds many queries.

The recycler already single-flights the *decode* of a chunk; under N
concurrent dashboard clients the warm path still pays N× for everything
after it — schema alignment, predicate masks, filtered pieces and the
final assembly.  This module extends the single-flight idea from decode
to the whole scan pass (the cooperative/shared scans of MonetDB-lineage
systems the ROADMAP names):

* A :class:`_ScanPass` exists per actual-data table while at least one
  consumer is scanning it.  Queries whose
  :class:`~repro.engine.chunk_planner.ChunkPlan` overlaps attach to the
  same pass; a consumer attaching while others are active is counted in
  ``ExecStats.shared_scan_attached``.
* Within a pass, each chunk URI has at most one *delivery*: the first
  consumer to reach an unclaimed URI becomes its owner, materializes the
  chunk once (through the recycler, so decode stays single-flight and
  tier accounting is unchanged) and publishes it; every other consumer
  waits for the publication instead of re-materializing, counted in
  ``ExecStats.chunks_shared``.  Consumers claim their whole fetch
  schedule up front, so concurrent overlapping queries *partition* the
  URI set and a wave of N queries does ~1× chunk work in total.  Late
  arrivals attach mid-pass and only materialize chunks no delivery
  covers yet.
* Each consumer applies its own residual predicate; filtered pieces are
  memoized per delivery keyed by ``(predicate.key(), schema)`` so *equal*
  predicates share the mask-and-filter work too.  Whole assemblies (piece
  concatenation in plan order) are single-flighted per pass: for the
  identical-query fan-out a dashboard produces, one consumer runs the
  pass and the rest wait for the finished table, skipping the per-chunk
  work entirely.
* A delivery abandoned by its owner (cancellation, load failure) is
  re-claimed by the next consumer that needs it: one consumer's
  :class:`~repro.engine.errors.QueryCancelled` never poisons the others.
  An owner that unwinds abandons every claimed-but-unpublished delivery
  eagerly, so waiters never block on a dead owner.

The pass dies when its last consumer detaches (wave semantics): shared
state lives only as long as somebody is scanning, so memoized pieces can
never outlive the recycler's view of the data by more than one wave.

Results are bit-identical to private scans by construction: pieces are
filtered with the same pushed predicate and concatenated in the same
assembly (plan) order as :func:`~repro.engine.physical` does privately;
owned chunks are fetched in the plan's schedule order through the same
shared I/O pool when ``io_threads > 1``.
"""

from __future__ import annotations

import threading
from concurrent.futures import as_completed
from typing import TYPE_CHECKING

import numpy as np

from .errors import ExecutionError
from .table import Table
from ..util.lock_sanitizer import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import algebra
    from .database import Database
    from .physical import ExecutionContext

__all__ = ["SharedScanScheduler"]

# How often waiters wake to honor their own CancelToken while another
# consumer materializes a chunk for them.
_CANCEL_POLL_SECONDS = 0.05


class _Delivery:
    """Single-flight production of one chunk within one scan pass."""

    __slots__ = ("uri", "event", "chunk", "error", "pieces")

    def __init__(self, uri: str) -> None:
        self.uri = uri
        self.event = threading.Event()
        self.chunk: Table | None = None
        self.error: BaseException | None = None
        # (predicate key | None, schema names) -> aligned+filtered piece.
        self.pieces: dict[tuple, Table] = {}

    @property
    def published(self) -> bool:
        return self.event.is_set() and self.error is None

    def publish(self, chunk: Table) -> None:
        self.chunk = chunk
        self.event.set()

    def abandon(self, error: BaseException) -> None:
        if not self.event.is_set():
            self.error = error
            self.event.set()


class _Assembly:
    """Single-flight construction of one whole scan result within a pass.

    The identical-query fan-out (N dashboard clients issuing the same
    query) needs more than shared chunks: with deliveries alone every
    consumer still gathers pieces and concatenates them privately.  The
    first consumer to reach an assembly key becomes its owner and runs
    the pass; the rest wait for the finished table and skip the per-chunk
    work entirely.
    """

    __slots__ = ("event", "table", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.table: Table | None = None
        self.error: BaseException | None = None

    @property
    def published(self) -> bool:
        return self.event.is_set() and self.error is None

    def publish(self, table: Table) -> None:
        self.table = table
        self.event.set()

    def abandon(self, error: BaseException) -> None:
        if not self.event.is_set():
            self.error = error
            self.event.set()


class _ScanPass:
    """Shared state of every consumer currently scanning one table."""

    __slots__ = ("table_name", "lock", "consumers", "deliveries", "assemblies")

    def __init__(self, table_name: str) -> None:
        self.table_name = table_name
        self.lock = make_lock("_ScanPass.lock")
        self.consumers = 0
        self.deliveries: dict[str, _Delivery] = {}
        # (uris, predicate key | None, schema names) -> single-flight
        # assembly of the whole scan result.
        self.assemblies: dict[tuple, _Assembly] = {}


class SharedScanScheduler:
    """Co-schedules overlapping ``ParallelChunkScan``s, one pass per table.

    Owned by a :class:`~repro.engine.database.Database`;
    :func:`~repro.engine.physical` routes a scan here when its plan node
    carries ``shared=True`` (the ``TwoStageOptions(shared_scan=True)``
    gate).
    """

    # Machine-checked (repro analyze, lock-discipline): the shared-scan
    # counters feed counters_snapshot() and must never race.
    _GUARDED = {
        "_lock": (
            "_passes_started",
            "_consumers_total",
            "_consumers_attached",
            "_deliveries_produced",
            "_deliveries_shared",
            "_assemblies_shared",
        )
    }

    def __init__(self, database: "Database") -> None:
        self.database = database
        self._lock = make_lock("SharedScanScheduler._lock")
        self._passes: dict[str, _ScanPass] = {}
        # Cumulative counters for counters_snapshot() / the benchmarks.
        self._passes_started = 0
        self._consumers_total = 0
        self._consumers_attached = 0
        self._deliveries_produced = 0
        self._deliveries_shared = 0
        self._assemblies_shared = 0

    # -- monitoring --------------------------------------------------------

    def stats_snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "passes_started": self._passes_started,
                "consumers_total": self._consumers_total,
                "consumers_attached": self._consumers_attached,
                "deliveries_produced": self._deliveries_produced,
                "deliveries_shared": self._deliveries_shared,
                "assemblies_shared": self._assemblies_shared,
            }

    # -- execution ---------------------------------------------------------

    def execute(
        self, plan: "algebra.ParallelChunkScan", ctx: "ExecutionContext"
    ) -> Table:
        """Run one consumer's scan through the table's shared pass."""
        if not plan.uris:
            return Table.empty(plan.schema)
        with self._lock:
            scan_pass = self._passes.get(plan.table_name)
            if scan_pass is None:
                scan_pass = _ScanPass(plan.table_name)
                self._passes[plan.table_name] = scan_pass
                self._passes_started += 1
            elif scan_pass.consumers > 0:
                ctx.stats.shared_scan_attached += 1
                self._consumers_attached += 1
            self._consumers_total += 1
            scan_pass.consumers += 1
        try:
            return self._consume(scan_pass, plan, ctx)
        finally:
            with self._lock:
                scan_pass.consumers -= 1
                # Last consumer out ends the wave; the next arrival
                # starts a fresh pass (decode stays warm in the
                # recycler, only the scan-level memos are dropped).
                if (
                    scan_pass.consumers == 0
                    and self._passes.get(plan.table_name) is scan_pass
                ):
                    del self._passes[plan.table_name]

    def _consume(
        self,
        scan_pass: _ScanPass,
        plan: "algebra.ParallelChunkScan",
        ctx: "ExecutionContext",
    ) -> Table:
        predicate_key = (
            plan.pushed_predicate.key()
            if plan.pushed_predicate is not None
            else None
        )
        names = tuple(plan.schema.names)
        assembly_key = (plan.uris, predicate_key, names)
        while True:
            with scan_pass.lock:
                assembly = scan_pass.assemblies.get(assembly_key)
                if assembly is None or assembly.error is not None:
                    assembly = _Assembly()
                    scan_pass.assemblies[assembly_key] = assembly
                    owner = True
                else:
                    owner = False
            if owner:
                try:
                    result = self._run_pass(
                        scan_pass, plan, ctx, predicate_key, names
                    )
                except BaseException as exc:
                    assembly.abandon(exc)
                    raise
                assembly.publish(result)
                return result
            # The identical-query fan-out: another consumer of this wave is
            # assembling exactly this scan; wait for the finished table.
            while not assembly.event.wait(_CANCEL_POLL_SECONDS):
                ctx.check_cancelled()
            if assembly.published:
                assert assembly.table is not None
                ctx.stats.chunks_shared += len(plan.uris)
                with self._lock:
                    self._assemblies_shared += 1
                return assembly.table
            # The assembler unwound without publishing: take over.

    def _run_pass(
        self,
        scan_pass: _ScanPass,
        plan: "algebra.ParallelChunkScan",
        ctx: "ExecutionContext",
        predicate_key: tuple | None,
        names: tuple[str, ...],
    ) -> Table:
        uris = plan.uris
        schedule = plan.plan.fetch_order or tuple(range(len(uris)))
        # Claim phase: sweep the whole schedule first, so concurrent
        # consumers partition the chunk set instead of colliding one URI
        # at a time.
        owned: list[tuple[int, _Delivery]] = []
        joined: list[tuple[int, _Delivery]] = []
        with scan_pass.lock:
            for index in schedule:
                uri = uris[index]
                delivery = scan_pass.deliveries.get(uri)
                if delivery is None or delivery.error is not None:
                    delivery = _Delivery(uri)
                    scan_pass.deliveries[uri] = delivery
                    owned.append((index, delivery))
                else:
                    joined.append((index, delivery))

        pieces: list[Table | None] = [None] * len(uris)

        def finish(index: int, delivery: _Delivery) -> None:
            pieces[index] = self._piece(delivery, plan, predicate_key, names)

        try:
            self._materialize_owned(plan, ctx, owned, finish)
        except BaseException as exc:
            for _, delivery in owned:
                delivery.abandon(exc)
            raise
        for index, delivery in joined:
            finish(index, self._await_delivery(scan_pass, delivery, plan, ctx))

        return Table.concat_all([p for p in pieces if p is not None])

    def _materialize_owned(
        self,
        plan: "algebra.ParallelChunkScan",
        ctx: "ExecutionContext",
        owned: list[tuple[int, _Delivery]],
        finish,
    ) -> None:
        """Produce every claimed chunk, publishing each as it lands.

        Mirrors the private scheduler: fetches are issued in schedule
        order — through the database's shared I/O pool when the plan asks
        for parallelism — while accounting and piece building stay on the
        query thread.
        """
        from .physical import _record_chunk_outcome

        database = self.database

        def produce(delivery: _Delivery) -> tuple[Table, str, float]:
            try:
                chunk, outcome, cost = database.recycler.get_or_load(
                    delivery.uri,
                    lambda u: database.load_chunk(u, plan.table_name),
                )
            except BaseException as exc:
                delivery.abandon(exc)
                raise
            delivery.publish(chunk)
            return chunk, outcome, cost

        if plan.io_threads > 1 and len(owned) > 1:
            executor = database.io_executor(plan.io_threads)
            futures = {
                executor.submit(produce, delivery): (index, delivery)
                for index, delivery in owned
            }
            try:
                for future in as_completed(futures):
                    ctx.check_cancelled()
                    chunk, outcome, cost = future.result()
                    index, delivery = futures[future]
                    _record_chunk_outcome(
                        ctx, delivery.uri, chunk, outcome, cost
                    )
                    with self._lock:
                        self._deliveries_produced += 1
                    finish(index, delivery)
            except BaseException:
                for pending in futures:
                    pending.cancel()
                raise
        else:
            for index, delivery in owned:
                ctx.check_cancelled()
                chunk, outcome, cost = produce(delivery)
                _record_chunk_outcome(ctx, delivery.uri, chunk, outcome, cost)
                with self._lock:
                    self._deliveries_produced += 1
                finish(index, delivery)

    def _await_delivery(
        self,
        scan_pass: _ScanPass,
        delivery: _Delivery,
        plan: "algebra.ParallelChunkScan",
        ctx: "ExecutionContext",
    ) -> _Delivery:
        """Wait for another consumer's delivery, re-claiming if abandoned."""
        from .physical import _record_chunk_outcome

        database = self.database
        while True:
            # Owner progress wakes us immediately; the timeout only bounds
            # how long our own cancel token can go unchecked.
            while not delivery.event.wait(_CANCEL_POLL_SECONDS):
                ctx.check_cancelled()
            if delivery.published:
                if delivery.chunk is None:  # pragma: no cover - defensive
                    raise ExecutionError(
                        f"shared scan delivery of {delivery.uri!r} "
                        "published no chunk"
                    )
                ctx.stats.chunks_shared += 1
                with self._lock:
                    self._deliveries_shared += 1
                return delivery
            # The owner unwound without publishing: take over (or join a
            # newer claimant's delivery).
            with scan_pass.lock:
                current = scan_pass.deliveries.get(delivery.uri)
                if current is None or current.error is not None:
                    current = _Delivery(delivery.uri)
                    scan_pass.deliveries[delivery.uri] = current
                    owned = True
                else:
                    owned = False
                delivery = current
            if owned:
                ctx.check_cancelled()
                try:
                    chunk, outcome, cost = database.recycler.get_or_load(
                        delivery.uri,
                        lambda u: database.load_chunk(u, plan.table_name),
                    )
                except BaseException as exc:
                    delivery.abandon(exc)
                    raise
                delivery.publish(chunk)
                _record_chunk_outcome(ctx, delivery.uri, chunk, outcome, cost)
                with self._lock:
                    self._deliveries_produced += 1
                return delivery

    def _piece(
        self,
        delivery: _Delivery,
        plan: "algebra.ParallelChunkScan",
        predicate_key: tuple | None,
        names: tuple[str, ...],
    ) -> Table:
        """This consumer's aligned+filtered view of a delivered chunk.

        Memoized per delivery: consumers with the same pushed predicate
        and schema share the mask evaluation and filtered piece, not just
        the decoded chunk.  Recomputing under a race is harmless (both
        sides produce identical tables), so the memo rides on the
        GIL-atomicity of single dict operations instead of a lock.
        """
        from .physical import _align_chunk

        piece_key = (predicate_key, names)
        piece = delivery.pieces.get(piece_key)
        if piece is not None:
            return piece
        assert delivery.chunk is not None
        piece = _align_chunk(delivery.chunk, plan.schema)
        if plan.pushed_predicate is not None:
            mask = np.asarray(
                plan.pushed_predicate.evaluate(piece), dtype=np.bool_
            )
            piece = piece.filter(mask)
        return delivery.pieces.setdefault(piece_key, piece)
