"""SQL statement AST produced by the parser, consumed by the binder.

Scalar expressions reuse the engine's :mod:`repro.engine.expressions` AST
(column references carry the raw, possibly unqualified names from the SQL
text; the binder resolves them).  Aggregate calls cannot appear in engine
expressions, so they get their own node here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..expressions import Expression

__all__ = ["AggregateCall", "SelectItem", "OrderItem", "SelectStatement"]


class AggregateCall(Expression):
    """``FUNC(argument)`` in a select list; argument None means COUNT(*).

    This node never reaches the executor: the binder translates it into an
    :class:`~repro.engine.algebra.AggregateSpec` and replaces references to
    it with a column ref over the aggregate's output.
    """

    __slots__ = ("function", "argument")

    def __init__(self, function: str, argument: Expression | None) -> None:
        self.function = function
        self.argument = argument

    def evaluate(self, table):  # pragma: no cover - defensive
        raise NotImplementedError(
            "AggregateCall must be planned by the binder, not evaluated"
        )

    def output_type(self, table):  # pragma: no cover - defensive
        raise NotImplementedError

    def children(self) -> Sequence[Expression]:
        return () if self.argument is None else (self.argument,)

    def key(self) -> tuple:
        arg_key = None if self.argument is None else self.argument.key()
        return ("agg", self.function, arg_key)

    def __repr__(self) -> str:
        inner = "*" if self.argument is None else repr(self.argument)
        return f"{self.function}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One output of the select list (``expression [AS alias]``)."""

    expression: Expression
    alias: str | None = None

    def output_name(self) -> str:
        if self.alias is not None:
            return self.alias
        return repr(self.expression)


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed (unbound) SELECT statement."""

    select_items: list[SelectItem]
    from_name: str
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False
    select_star: bool = False
