"""SQL lexer: text → token stream.

Keywords are case-insensitive; identifiers keep their case.  String
literals use single quotes with ``''`` escaping.  Numbers are int or float
literals; qualified names are produced by the parser from IDENT '.' IDENT
sequences, not by the lexer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LexerError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "LIMIT",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "ASC",
        "DESC",
        "COUNT",
        "SUM",
        "AVG",
        "MIN",
        "MAX",
        "STD",
        "STDDEV",
        "TRUE",
        "FALSE",
    }
)

_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),."


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word.upper()


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`LexerError` on bad input."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            text, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, text, i))
            continue
        if ch.isdigit():
            text, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, text, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched_operator = None
        for operator in _OPERATORS:
            if sql.startswith(operator, i):
                matched_operator = operator
                break
        if matched_operator is not None:
            normalized = "<>" if matched_operator == "!=" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, normalized, i))
            i += len(matched_operator)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted literal starting at ``start``; '' escapes '."""
    i = start + 1
    parts: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    seen_dot = False
    while i < len(sql):
        ch = sql[i]
        if ch.isdigit():
            i += 1
            continue
        if (
            ch == "."
            and not seen_dot
            and i + 1 < len(sql)
            and sql[i + 1].isdigit()
        ):
            seen_dot = True
            i += 1
            continue
        break
    return sql[start:i], i
