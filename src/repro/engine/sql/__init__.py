"""SQL front-end: a lexer, recursive-descent parser and binder for the
SELECT subset the paper's workload needs (Queries 1/2 and the T1–T5 types).

Public entry point: :func:`repro.engine.sql.binder.bind_sql`, re-exported
here as :func:`compile_sql`.
"""

from .lexer import Token, TokenType, tokenize
from .parser import parse_select
from .binder import bind_sql

compile_sql = bind_sql

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_select",
    "bind_sql",
    "compile_sql",
]
