"""The binder: parsed SQL → bound logical plan against a database catalog.

Responsibilities:

* resolve the FROM object (base table or non-materialized view — views
  expand to their defining plan, exactly how ``dataview`` and
  ``windowdataview`` work in the paper's schema);
* resolve column names: unqualified names must match exactly one visible
  column of the FROM plan by suffix; qualified names must exist;
* coerce ISO timestamp string literals when compared against TIMESTAMP
  columns (``D.sample_time > '2010-01-12T22:15:00.000'``);
* plan aggregation: aggregate calls in the select list become an
  :class:`~repro.engine.algebra.Aggregate` node, and the select expressions
  are rewritten to reference its outputs;
* apply DISTINCT / ORDER BY / LIMIT on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import algebra
from ..errors import BindError
from ..expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    IsIn,
    Literal,
)
from ..physical import is_hidden
from ..table import Table
from ..types import STRING, TIMESTAMP, parse_timestamp
from .ast_nodes import AggregateCall, SelectStatement
from .parser import parse_select

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..database import Database

__all__ = ["bind_sql", "bind_statement", "Binder"]


def bind_sql(sql: str, database: "Database") -> algebra.LogicalPlan:
    """Parse and bind SQL text into a logical plan."""
    return bind_statement(parse_select(sql), database)


def bind_statement(
    statement: SelectStatement, database: "Database"
) -> algebra.LogicalPlan:
    return Binder(database).bind(statement)


class Binder:
    """Binds one statement; not reusable across statements."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._aggregate_specs: list[algebra.AggregateSpec] = []
        self._aggregate_names: dict[tuple, str] = {}

    # -- entry point ---------------------------------------------------------

    def bind(self, statement: SelectStatement) -> algebra.LogicalPlan:
        plan = self._bind_from(statement.from_name)
        schema = plan.schema
        probe = Table.empty(schema)

        if statement.where is not None:
            predicate = self._bind_expression(statement.where, schema, probe)
            self._reject_aggregates(predicate, "WHERE")
            plan = algebra.Select(plan, predicate)

        group_names = [
            self._resolve_name(self._require_column(g, "GROUP BY").name, schema)
            for g in statement.group_by
        ]

        if statement.select_star:
            if self._uses_aggregates(statement) or group_names:
                raise BindError(
                    "SELECT * cannot be combined with aggregation or GROUP BY"
                )
            outputs = [
                (name, ColumnRef(name))
                for name in schema.names
                if not is_hidden(name)
            ]
            plan = algebra.Project(plan, outputs)
        else:
            bound_items = [
                (
                    item.output_name(),
                    self._bind_expression(item.expression, schema, probe),
                )
                for item in statement.select_items
            ]
            if self._aggregate_specs or group_names:
                plan = algebra.Aggregate(plan, group_names, self._aggregate_specs)
                # Select expressions now evaluate over the aggregate output.
                outputs = [
                    (name, self._replace_aggregates(expr))
                    for name, expr in bound_items
                ]
                plan = algebra.Project(plan, outputs)
            else:
                plan = algebra.Project(plan, bound_items)

        if statement.distinct:
            plan = algebra.Distinct(plan)

        if statement.order_by:
            keys = []
            for order_item in statement.order_by:
                column = self._require_column(order_item.expression, "ORDER BY")
                name = self._resolve_output_name(column.name, plan.schema)
                keys.append(algebra.SortKey(name, order_item.ascending))
            plan = algebra.Sort(plan, keys)

        if statement.limit is not None:
            plan = algebra.Limit(plan, statement.limit)
        return plan

    # -- FROM resolution --------------------------------------------------------

    def _bind_from(self, name: str) -> algebra.LogicalPlan:
        catalog = self._database.catalog
        if catalog.has_table(name):
            return algebra.Scan(name, self._database.qualified_schema(name))
        if catalog.has_view(name):
            plan = catalog.view(name).plan_factory()
            if not isinstance(plan, algebra.LogicalPlan):
                raise BindError(
                    f"view {name!r} factory returned {type(plan).__name__}, "
                    "expected a LogicalPlan"
                )
            return plan
        raise BindError(f"unknown table or view {name!r}")

    # -- name resolution -----------------------------------------------------------

    def _resolve_name(self, raw: str, schema) -> str:
        visible = [n for n in schema.names if not is_hidden(n)]
        if raw in visible:
            return raw
        if "." not in raw:
            matches = [n for n in visible if n.rsplit(".", 1)[-1] == raw]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise BindError(
                    f"ambiguous column {raw!r}: matches {sorted(matches)}"
                )
        raise BindError(
            f"unknown column {raw!r} (available: {sorted(visible)[:12]}...)"
        )

    def _resolve_output_name(self, raw: str, schema) -> str:
        if schema.has(raw):
            return raw
        try:
            return self._resolve_name(raw, schema)
        except BindError:
            raise BindError(
                f"ORDER BY column {raw!r} must appear in the select output"
            ) from None

    @staticmethod
    def _require_column(expression: Expression, clause: str) -> ColumnRef:
        if not isinstance(expression, ColumnRef):
            raise BindError(f"{clause} supports plain column references only")
        return expression

    # -- expression binding -----------------------------------------------------------

    def _bind_expression(
        self, expression: Expression, schema, probe: Table
    ) -> Expression:
        bound = self._rewrite(expression, schema)
        return self._coerce_timestamps(bound, probe)

    def _rewrite(self, expression: Expression, schema) -> Expression:
        if isinstance(expression, ColumnRef):
            return ColumnRef(self._resolve_name(expression.name, schema))
        if isinstance(expression, Literal):
            return expression
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op,
                self._rewrite(expression.left, schema),
                self._rewrite(expression.right, schema),
            )
        if isinstance(expression, BooleanOp):
            return BooleanOp(
                expression.op,
                [self._rewrite(o, schema) for o in expression.operands],
            )
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op,
                self._rewrite(expression.left, schema),
                self._rewrite(expression.right, schema),
            )
        if isinstance(expression, IsIn):
            return IsIn(
                self._rewrite(expression.operand, schema), expression.options
            )
        if isinstance(expression, AggregateCall):
            argument = (
                None
                if expression.argument is None
                else self._rewrite(expression.argument, schema)
            )
            return self._register_aggregate(expression.function, argument)
        raise BindError(
            f"unsupported expression node {type(expression).__name__}"
        )

    def _register_aggregate(
        self, function: str, argument: Expression | None
    ) -> AggregateCall:
        call = AggregateCall(function, argument)
        key = call.key()
        if key not in self._aggregate_names:
            name = f"__agg{len(self._aggregate_specs)}"
            self._aggregate_names[key] = name
            self._aggregate_specs.append(
                algebra.AggregateSpec(function, argument, name)
            )
        return call

    def _replace_aggregates(self, expression: Expression) -> Expression:
        """Swap AggregateCall nodes for refs to the Aggregate node outputs."""
        if isinstance(expression, AggregateCall):
            return ColumnRef(self._aggregate_names[expression.key()])
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op,
                self._replace_aggregates(expression.left),
                self._replace_aggregates(expression.right),
            )
        if isinstance(expression, BooleanOp):
            return BooleanOp(
                expression.op,
                [self._replace_aggregates(o) for o in expression.operands],
            )
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op,
                self._replace_aggregates(expression.left),
                self._replace_aggregates(expression.right),
            )
        if isinstance(expression, IsIn):
            return IsIn(
                self._replace_aggregates(expression.operand), expression.options
            )
        return expression

    def _coerce_timestamps(self, expression: Expression, probe: Table) -> Expression:
        """Convert string literals compared against TIMESTAMP columns."""
        if isinstance(expression, Comparison):
            left = self._coerce_timestamps(expression.left, probe)
            right = self._coerce_timestamps(expression.right, probe)
            left, right = self._coerce_pair(left, right, probe)
            return Comparison(expression.op, left, right)
        if isinstance(expression, BooleanOp):
            return BooleanOp(
                expression.op,
                [self._coerce_timestamps(o, probe) for o in expression.operands],
            )
        if isinstance(expression, IsIn):
            operand = self._coerce_timestamps(expression.operand, probe)
            if self._safe_type(operand, probe) is TIMESTAMP:
                options = tuple(
                    parse_timestamp(v) if isinstance(v, str) else v
                    for v in expression.options
                )
                return IsIn(operand, options)
            return IsIn(operand, expression.options)
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op,
                self._coerce_timestamps(expression.left, probe),
                self._coerce_timestamps(expression.right, probe),
            )
        return expression

    def _coerce_pair(
        self, left: Expression, right: Expression, probe: Table
    ) -> tuple[Expression, Expression]:
        left_type = self._safe_type(left, probe)
        right_type = self._safe_type(right, probe)
        if (
            left_type is TIMESTAMP
            and isinstance(right, Literal)
            and right.dtype is STRING
        ):
            right = Literal(parse_timestamp(right.value), TIMESTAMP)
        elif (
            right_type is TIMESTAMP
            and isinstance(left, Literal)
            and left.dtype is STRING
        ):
            left = Literal(parse_timestamp(left.value), TIMESTAMP)
        return left, right

    @staticmethod
    def _safe_type(expression: Expression, probe: Table):
        if isinstance(expression, AggregateCall):
            return None
        try:
            return expression.output_type(probe)
        # typing probe is best-effort: None means "defer the type
        # decision", and every failure mode maps to the same answer.
        # repro: ignore[swallow]
        except Exception:  # noqa: BLE001
            return None

    # -- aggregate placement checks -------------------------------------------------

    def _reject_aggregates(self, expression: Expression, clause: str) -> None:
        for node in expression.walk():
            if isinstance(node, AggregateCall):
                raise BindError(f"aggregate calls are not allowed in {clause}")

    @staticmethod
    def _uses_aggregates(statement: SelectStatement) -> bool:
        for item in statement.select_items:
            for node in item.expression.walk():
                if isinstance(node, AggregateCall):
                    return True
        return False
