"""Recursive-descent SQL parser for the supported SELECT subset.

Grammar (EBNF, keywords case-insensitive)::

    select    := SELECT [DISTINCT] (\"*\" | item (\",\" item)*)
                 FROM name
                 [WHERE expr]
                 [GROUP BY column (\",\" column)*]
                 [ORDER BY column [ASC|DESC] (\",\" ...)*]
                 [LIMIT number]
    item      := expr [AS ident | ident]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := [NOT] predicate
    predicate := additive [cmp additive | IN \"(\" literal, ... \")\"
                 | BETWEEN additive AND additive]
    additive  := multiplicative ((\"+\"|\"-\") multiplicative)*
    multiplicative := unary ((\"*\"|\"/\"|\"%\") unary)*
    unary     := [\"-\"] primary
    primary   := literal | name | agg \"(\" (\"*\"|expr) \")\" | \"(\" expr \")\"
    name      := ident [\".\" ident]
"""

from __future__ import annotations

from ..errors import ParseError
from ..expressions import (
    Arithmetic,
    BooleanOp,
    ColumnRef,
    Comparison,
    Expression,
    IsIn,
    Literal,
)
from .ast_nodes import AggregateCall, OrderItem, SelectItem, SelectStatement
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_select", "Parser"]

_AGGREGATE_KEYWORDS = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STD", "STDDEV"}
_COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}


def parse_select(sql: str) -> SelectStatement:
    """Parse SQL text into a :class:`SelectStatement`."""
    return Parser(tokenize(sql)).parse_statement()


class Parser:
    """Hand-written recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token utilities ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word}, found {token.text!r}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.text != char:
            raise ParseError(f"expected {char!r}, found {token.text!r}")
        return self._advance()

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.text == char:
            self._advance()
            return True
        return False

    def _accept_operator(self, *ops: str) -> str | None:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in ops:
            self._advance()
            return token.text
        return None

    # -- statement ---------------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        select_star = False
        items: list[SelectItem] = []
        if self._accept_operator("*"):
            select_star = True
        else:
            items.append(self._parse_select_item())
            while self._accept_punct(","):
                items.append(self._parse_select_item())
        self._expect_keyword("FROM")
        from_name = self._parse_object_name()
        where = None
        if self._accept_keyword("WHERE"):
            where = self.parse_expression()
        group_by: list[Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_name_expression())
            while self._accept_punct(","):
                group_by.append(self._parse_name_expression())
        order_by: list[OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise ParseError(f"LIMIT expects a number, found {token.text!r}")
            self._advance()
            limit = int(token.text)
        end = self._peek()
        if end.type is not TokenType.END:
            raise ParseError(f"unexpected trailing input: {end.text!r}")
        return SelectStatement(
            select_items=items,
            from_name=from_name,
            where=where,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            select_star=select_star,
        )

    def _parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.type is not TokenType.IDENT:
                raise ParseError(f"expected alias after AS, found {token.text!r}")
            alias = self._advance().text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return SelectItem(expression, alias)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_name_expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return OrderItem(expression, ascending)

    def _parse_object_name(self) -> str:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected table or view name, found {token.text!r}")
        return self._advance().text

    def _parse_name_expression(self) -> Expression:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected column name, found {token.text!r}")
        return self._parse_qualified_name()

    def _parse_qualified_name(self) -> ColumnRef:
        first = self._advance().text
        if self._accept_punct("."):
            token = self._peek()
            if token.type is not TokenType.IDENT:
                raise ParseError(
                    f"expected column after {first}., found {token.text!r}"
                )
            second = self._advance().text
            return ColumnRef(f"{first}.{second}")
        return ColumnRef(first)

    # -- expressions ---------------------------------------------------------------

    def parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("OR", operands)

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("AND", operands)

    def _parse_not(self) -> Expression:
        if self._accept_keyword("NOT"):
            return BooleanOp("NOT", [self._parse_not()])
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()
        operator = self._accept_operator(*_COMPARISON_OPS)
        if operator is not None:
            right = self._parse_additive()
            return Comparison(operator, left, right)
        if self._accept_keyword("IN"):
            self._expect_punct("(")
            options = [self._parse_literal_value()]
            while self._accept_punct(","):
                options.append(self._parse_literal_value())
            self._expect_punct(")")
            return IsIn(left, options)
        if self._accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return BooleanOp(
                "AND",
                [Comparison(">=", left, low), Comparison("<=", left, high)],
            )
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            operator = self._accept_operator("+", "-")
            if operator is None:
                return left
            right = self._parse_multiplicative()
            left = Arithmetic(operator, left, right)

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            operator = self._accept_operator("*", "/", "%")
            if operator is None:
                return left
            right = self._parse_unary()
            left = Arithmetic(operator, left, right)

    def _parse_unary(self) -> Expression:
        if self._accept_operator("-"):
            operand = self._parse_unary()
            if isinstance(operand, Literal) and operand.dtype.is_numeric:
                return Literal(-operand.value, operand.dtype)
            return Arithmetic("-", Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.text)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.type is TokenType.KEYWORD and token.text in _AGGREGATE_KEYWORDS:
            return self._parse_aggregate_call()
        if token.type is TokenType.PUNCT and token.text == "(":
            self._advance()
            inner = self.parse_expression()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            return self._parse_qualified_name()
        raise ParseError(f"unexpected token {token.text!r} in expression")

    def _parse_aggregate_call(self) -> AggregateCall:
        token = self._advance()
        function = "STD" if token.text == "STDDEV" else token.text
        self._expect_punct("(")
        if self._accept_operator("*"):
            if function != "COUNT":
                raise ParseError(f"{function}(*) is not supported")
            self._expect_punct(")")
            return AggregateCall("COUNT", None)
        argument = self.parse_expression()
        self._expect_punct(")")
        return AggregateCall(function, argument)

    def _parse_literal_value(self):
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.type is TokenType.STRING:
            self._advance()
            return token.text
        raise ParseError(f"expected literal in list, found {token.text!r}")
