"""Paged column storage and a budgeted buffer pool.

The paper's evaluation hinges on a memory hierarchy: while data plus indexes
fit in RAM (sf-1, sf-3) the eager variants answer queries quickly, but once
they outgrow memory (sf-9, sf-27) every scan pays for disk reads again and
query times blow up by one to two orders of magnitude (Section VI-C).

To reproduce that *shape* honestly in-process we persist base table columns
in fixed-size pages on disk and route all reads through a :class:`BufferPool`
with an LRU replacement policy and a configurable byte budget.  A "cold" run
starts from an empty pool (all reads hit disk); a "hot" run re-reads through
the pool and is fast only if the working set fits the budget — exactly the
paper's cold/hot protocol.

Pages store raw ``ndarray.tobytes()`` payloads for fixed-width types and a
length-prefixed encoding for strings.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .column import Column
from .errors import StorageError, TypeMismatchError
from .table import Schema, Table
from .types import STRING, DataType, type_by_name
from ..util.lock_sanitizer import make_rlock

__all__ = ["PageId", "BufferPool", "PagedColumnStore", "PoolStats"]

DEFAULT_PAGE_ROWS = 8192


@dataclass(frozen=True)
class PageId:
    """Identifies one page of one column of one stored table."""

    table: str
    column: str
    page_no: int


@dataclass
class PoolStats:
    """Counters exposed by the buffer pool for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_read: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes_read = 0

    @property
    def total_accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.total_accesses == 0:
            return 0.0
        return self.hits / self.total_accesses


class BufferPool:
    """A byte-budgeted LRU cache of decoded column pages.

    The pool never holds more than ``budget_bytes`` of page payloads; loading
    a page larger than the budget is allowed (it becomes the only resident
    page and is evicted on the next load).  ``stats`` counts hits, misses and
    evictions so experiments can verify the memory cliff.

    Concurrent queries share one pool, so the page map and its accounting
    are guarded by a mutex; page decoding itself (``loader()``) runs outside
    the lock so concurrent misses on different pages overlap their I/O.
    """

    def __init__(self, budget_bytes: int = 256 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise StorageError("buffer pool budget must be positive")
        self.budget_bytes = budget_bytes
        self.stats = PoolStats()
        self._pages: "OrderedDict[PageId, np.ndarray]" = OrderedDict()
        self._bytes_cached = 0
        self._lock = make_rlock("BufferPool._lock")

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes_cached

    @property
    def num_pages(self) -> int:
        with self._lock:
            return len(self._pages)

    def clear(self) -> None:
        """Drop every cached page (the \"restart the server\" of the paper)."""
        with self._lock:
            self._pages.clear()
            self._bytes_cached = 0

    def invalidate_table(self, table: str) -> None:
        """Drop cached pages belonging to one table (used on re-load)."""
        with self._lock:
            stale = [pid for pid in self._pages if pid.table == table]
            for pid in stale:
                self._bytes_cached -= self._page_nbytes(self._pages.pop(pid))

    def get(self, page_id: PageId, loader) -> np.ndarray:
        """Return the page, loading through ``loader()`` on a miss."""
        with self._lock:
            cached = self._pages.get(page_id)
            if cached is not None:
                self._pages.move_to_end(page_id)
                self.stats.hits += 1
                return cached
            self.stats.misses += 1
        page = loader()
        nbytes = self._page_nbytes(page)
        with self._lock:
            self.stats.bytes_read += nbytes
            self._admit(page_id, page, nbytes)
        return page

    def _admit(self, page_id: PageId, page: np.ndarray, nbytes: int) -> None:
        # Caller holds self._lock.  A page admitted twice by racing misses
        # replaces itself; the accounting stays exact either way.
        existing = self._pages.pop(page_id, None)
        if existing is not None:
            self._bytes_cached -= self._page_nbytes(existing)
        while self._bytes_cached + nbytes > self.budget_bytes and self._pages:
            _, evicted = self._pages.popitem(last=False)
            self._bytes_cached -= self._page_nbytes(evicted)
            self.stats.evictions += 1
        if nbytes <= self.budget_bytes:
            self._pages[page_id] = page
            self._bytes_cached += nbytes

    @staticmethod
    def _page_nbytes(page: np.ndarray) -> int:
        if page.dtype == object:
            return page.nbytes + sum(
                len(v) for v in page if isinstance(v, str)
            )
        return page.nbytes


class PagedColumnStore:
    """On-disk home for base-table columns, organized in fixed-row pages.

    Layout: ``root/<table>/<column>.pages`` holds the concatenated page
    payloads; an in-memory directory keeps per-page offsets (rebuilt from a
    sidecar ``.idx`` file on open, so stores survive process restarts).
    """

    MAGIC = b"RPST"

    def __init__(
        self,
        root: str,
        pool: BufferPool,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> None:
        if page_rows <= 0:
            raise StorageError("page_rows must be positive")
        self.root = root
        self.pool = pool
        self.page_rows = page_rows
        os.makedirs(root, exist_ok=True)
        # (table, column) -> (dtype, [(offset, length, rows)], total_rows)
        self._directory: dict[tuple[str, str], tuple[DataType, list, int]] = {}
        self._schemas: dict[str, Schema] = {}
        self._load_directory()

    # -- write path ----------------------------------------------------------

    def store_table(self, name: str, table: Table) -> int:
        """Persist every column of ``table``; returns bytes written."""
        self.pool.invalidate_table(name)
        table_dir = os.path.join(self.root, name)
        os.makedirs(table_dir, exist_ok=True)
        total = 0
        self._schemas[name] = table.schema
        for fld, column in zip(table.schema, table.columns):
            total += self._store_column(name, fld.name, column)
        return total

    def _store_column(self, table: str, column_name: str, column: Column) -> int:
        safe = column_name.replace("/", "_")
        path = os.path.join(self.root, table, f"{safe}.pages")
        pages: list[tuple[int, int, int]] = []
        offset = 0
        with open(path, "wb") as handle:
            for start in range(0, max(len(column), 1), self.page_rows):
                chunk = column.values[start : start + self.page_rows]
                payload = self._encode(column.dtype, chunk)
                handle.write(payload)
                pages.append((offset, len(payload), len(chunk)))
                offset += len(payload)
        self._directory[(table, column_name)] = (column.dtype, pages, len(column))
        self._write_index(table, column_name, column.dtype, pages, len(column))
        return offset

    # -- read path -----------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return name in self._schemas

    def restore_schema(self, name: str, schema: Schema) -> bool:
        """Adopt a table persisted by an earlier process.

        The ``.idx`` sidecars record per-column layout but not column
        *order*; the caller (catalog restore) supplies the schema.  Returns
        True when every schema column is present on disk — the table then
        becomes readable via :meth:`read_table` — and False otherwise.
        """
        if all(
            (name, field.name) in self._directory
            and self._directory[(name, field.name)][0] is field.dtype
            for field in schema
        ) and len(schema):
            self._schemas[name] = schema
            return True
        return False

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise StorageError(f"table {name!r} not in paged store") from None

    def num_rows(self, table: str) -> int:
        for (tbl, _), (_, _, rows) in self._directory.items():
            if tbl == table:
                return rows
        raise StorageError(f"table {table!r} not in paged store")

    def read_column(self, table: str, column_name: str) -> Column:
        """Read one full column through the buffer pool."""
        try:
            dtype, pages, total_rows = self._directory[(table, column_name)]
        except KeyError:
            raise StorageError(
                f"column {table}.{column_name} not in paged store"
            ) from None
        parts: list[np.ndarray] = []
        for page_no, (offset, length, rows) in enumerate(pages):
            page_id = PageId(table, column_name, page_no)
            loader = self._make_loader(table, column_name, dtype, offset, length, rows)
            parts.append(self.pool.get(page_id, loader))
        if not parts:
            return Column.empty(dtype)
        if len(parts) == 1:
            values = parts[0]
        else:
            values = np.concatenate(parts)
        if len(values) != total_rows:
            raise StorageError(
                f"column {table}.{column_name}: expected {total_rows} rows, "
                f"decoded {len(values)}"
            )
        return Column(dtype, values)

    def read_table(self, name: str, columns: Iterable[str] | None = None) -> Table:
        """Materialize a stored table (optionally a column subset)."""
        schema = self.schema(name)
        names = list(columns) if columns is not None else list(schema.names)
        cols = [self.read_column(name, n) for n in names]
        return Table(schema.select(names), cols)

    def table_nbytes(self, name: str) -> int:
        """Total stored payload bytes of a table."""
        total = 0
        for (tbl, _), (_, pages, _) in self._directory.items():
            if tbl == name:
                total += sum(length for _, length, _ in pages)
        return total

    def drop_table(self, name: str) -> None:
        self.pool.invalidate_table(name)
        self._schemas.pop(name, None)
        for key in [k for k in self._directory if k[0] == name]:
            del self._directory[key]
        table_dir = os.path.join(self.root, name)
        if os.path.isdir(table_dir):
            for entry in os.listdir(table_dir):
                os.unlink(os.path.join(table_dir, entry))
            os.rmdir(table_dir)

    def _make_loader(self, table, column_name, dtype, offset, length, rows):
        safe = column_name.replace("/", "_")
        path = os.path.join(self.root, table, f"{safe}.pages")

        def loader() -> np.ndarray:
            with open(path, "rb") as handle:
                handle.seek(offset)
                payload = handle.read(length)
            if len(payload) != length:
                raise StorageError(f"short read on {path} at {offset}")
            return self._decode(dtype, payload, rows)

        return loader

    # -- page codecs -----------------------------------------------------------

    @staticmethod
    def _encode(dtype: DataType, values: np.ndarray) -> bytes:
        if dtype is STRING:
            blobs = [str(v).encode("utf-8") for v in values]
            header = struct.pack("<I", len(blobs))
            body = b"".join(
                struct.pack("<I", len(blob)) + blob for blob in blobs
            )
            return header + body
        return np.ascontiguousarray(values, dtype=dtype.numpy_dtype).tobytes()

    @staticmethod
    def _decode(dtype: DataType, payload: bytes, rows: int) -> np.ndarray:
        if dtype is STRING:
            (count,) = struct.unpack_from("<I", payload, 0)
            cursor = 4
            out = np.empty(count, dtype=object)
            for i in range(count):
                (length,) = struct.unpack_from("<I", payload, cursor)
                cursor += 4
                out[i] = payload[cursor : cursor + length].decode("utf-8")
                cursor += length
            return out
        array = np.frombuffer(payload, dtype=dtype.numpy_dtype).copy()
        if len(array) != rows:
            raise StorageError("page payload row-count mismatch")
        return array

    # -- persistence of the page directory -------------------------------------

    def _write_index(self, table, column_name, dtype, pages, total_rows) -> None:
        safe = column_name.replace("/", "_")
        path = os.path.join(self.root, table, f"{safe}.idx")
        with open(path, "wb") as handle:
            handle.write(self.MAGIC)
            name_blob = column_name.encode("utf-8")
            dtype_blob = dtype.name.encode("ascii")
            handle.write(struct.pack("<HH", len(name_blob), len(dtype_blob)))
            handle.write(name_blob)
            handle.write(dtype_blob)
            handle.write(struct.pack("<QI", total_rows, len(pages)))
            for offset, length, rows in pages:
                handle.write(struct.pack("<QII", offset, length, rows))

    def _load_directory(self) -> None:
        """Rebuild the page directory from ``.idx`` sidecars on open.

        Tables found this way stay invisible to :meth:`has_table` until a
        catalog restore adopts them via :meth:`restore_schema` (the sidecar
        records column layout, not table schema order).  Unreadable sidecars
        are skipped — the store stays usable after a torn write.
        """
        if not os.path.isdir(self.root):
            return
        for table in sorted(os.listdir(self.root)):
            table_dir = os.path.join(self.root, table)
            if not os.path.isdir(table_dir):
                continue
            for filename in sorted(os.listdir(table_dir)):
                if not filename.endswith(".idx"):
                    continue
                try:
                    entry = self._read_index(os.path.join(table_dir, filename))
                except (OSError, StorageError, TypeMismatchError,
                        struct.error, ValueError):
                    continue
                column_name, dtype, pages, total_rows = entry
                self._directory[(table, column_name)] = (
                    dtype, pages, total_rows
                )

    def _read_index(
        self, path: str
    ) -> tuple[str, DataType, list[tuple[int, int, int]], int]:
        with open(path, "rb") as handle:
            if handle.read(len(self.MAGIC)) != self.MAGIC:
                raise StorageError(f"bad index magic in {path}")
            name_len, dtype_len = struct.unpack("<HH", handle.read(4))
            column_name = handle.read(name_len).decode("utf-8")
            dtype = type_by_name(handle.read(dtype_len).decode("ascii"))
            total_rows, num_pages = struct.unpack("<QI", handle.read(12))
            pages: list[tuple[int, int, int]] = []
            for _ in range(num_pages):
                pages.append(struct.unpack("<QII", handle.read(16)))
        return column_name, dtype, pages, total_rows
