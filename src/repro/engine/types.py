"""Logical data types for the repro columnar engine.

The engine supports a deliberately small set of types that covers the
seismology warehouse schema of the paper: 64-bit integers, 64-bit floats,
strings, booleans, and millisecond-precision timestamps.  A
:class:`DataType` couples a logical name with the NumPy dtype used for its
columnar representation and with coercion helpers used by the SQL binder.

Timestamps are stored as ``int64`` milliseconds since the Unix epoch; the
SQL layer accepts ISO-8601 literals (``'2010-01-12T22:15:00.000'``) and
coerces them through :func:`parse_timestamp`.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any

import numpy as np

from .errors import TypeMismatchError

__all__ = [
    "DataType",
    "INT64",
    "FLOAT64",
    "STRING",
    "BOOL",
    "TIMESTAMP",
    "ALL_TYPES",
    "type_by_name",
    "parse_timestamp",
    "format_timestamp",
    "infer_type",
    "common_numeric_type",
]


@dataclass(frozen=True)
class DataType:
    """A logical column type.

    Attributes:
        name: Logical name used in schemas and SQL (``INT64``, ``STRING``...).
        numpy_dtype: The dtype backing the columnar representation.
        is_numeric: Whether arithmetic is defined on the type.
    """

    name: str
    numpy_dtype: np.dtype
    is_numeric: bool

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    def __reduce__(self):
        # The engine compares types by identity (``dtype is STRING``), so a
        # pickle round-trip — e.g. a Table shipped back from a shard worker —
        # must resolve to the module singletons, not a fresh instance.
        return (type_by_name, (self.name,))

    def coerce_value(self, value: Any) -> Any:
        """Coerce a single Python value to this type.

        Raises:
            TypeMismatchError: If the value cannot represent this type.
        """
        if value is None:
            return None
        if self is TIMESTAMP:
            if isinstance(value, str):
                return parse_timestamp(value)
            if isinstance(value, (int, np.integer)):
                return int(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to TIMESTAMP")
        if self is INT64:
            if isinstance(value, (bool, np.bool_)):
                return int(value)
            if isinstance(value, (int, np.integer)):
                return int(value)
            if isinstance(value, (float, np.floating)) and float(value).is_integer():
                return int(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to INT64")
        if self is FLOAT64:
            if isinstance(value, (int, float, np.integer, np.floating)):
                return float(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to FLOAT64")
        if self is STRING:
            if isinstance(value, str):
                return value
            raise TypeMismatchError(f"cannot coerce {value!r} to STRING")
        if self is BOOL:
            if isinstance(value, (bool, np.bool_)):
                return bool(value)
            raise TypeMismatchError(f"cannot coerce {value!r} to BOOL")
        raise TypeMismatchError(f"unknown type {self.name}")  # pragma: no cover

    def empty_array(self, capacity: int = 0) -> np.ndarray:
        """Return an empty NumPy array suitable for this type."""
        return np.empty(capacity, dtype=self.numpy_dtype)


INT64 = DataType("INT64", np.dtype(np.int64), True)
FLOAT64 = DataType("FLOAT64", np.dtype(np.float64), True)
STRING = DataType("STRING", np.dtype(object), False)
BOOL = DataType("BOOL", np.dtype(np.bool_), False)
TIMESTAMP = DataType("TIMESTAMP", np.dtype(np.int64), True)

ALL_TYPES = (INT64, FLOAT64, STRING, BOOL, TIMESTAMP)
_BY_NAME = {t.name: t for t in ALL_TYPES}

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def type_by_name(name: str) -> DataType:
    """Look up a :class:`DataType` by its logical name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise TypeMismatchError(f"unknown type name {name!r}") from None


def parse_timestamp(text: str) -> int:
    """Parse an ISO-8601 timestamp string to epoch milliseconds.

    Accepts ``YYYY-MM-DD``, ``YYYY-MM-DDTHH:MM:SS`` and fractional-second
    variants, with either ``T`` or a space as the date/time separator.

    Raises:
        TypeMismatchError: If the text is not a recognizable timestamp.
    """
    normalized = text.strip().replace(" ", "T")
    try:
        if "T" not in normalized:
            moment = _dt.datetime.strptime(normalized, "%Y-%m-%d")
        else:
            date_part, time_part = normalized.split("T", 1)
            if "." in time_part:
                moment = _dt.datetime.strptime(normalized, "%Y-%m-%dT%H:%M:%S.%f")
            else:
                moment = _dt.datetime.strptime(normalized, "%Y-%m-%dT%H:%M:%S")
    except ValueError as exc:
        raise TypeMismatchError(f"invalid timestamp literal {text!r}") from exc
    moment = moment.replace(tzinfo=_dt.timezone.utc)
    return int((moment - _EPOCH).total_seconds() * 1000)


def format_timestamp(millis: int) -> str:
    """Format epoch milliseconds as an ISO-8601 string with milliseconds."""
    moment = _EPOCH + _dt.timedelta(milliseconds=int(millis))
    return moment.strftime("%Y-%m-%dT%H:%M:%S.") + f"{moment.microsecond // 1000:03d}"


def infer_type(value: Any) -> DataType:
    """Infer the logical type of a single Python literal."""
    if isinstance(value, (bool, np.bool_)):
        return BOOL
    if isinstance(value, (int, np.integer)):
        return INT64
    if isinstance(value, (float, np.floating)):
        return FLOAT64
    if isinstance(value, str):
        return STRING
    raise TypeMismatchError(f"cannot infer type of {value!r}")


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Return the result type of arithmetic between two numeric types.

    Timestamp arithmetic yields INT64 (millisecond differences); any float
    operand promotes the result to FLOAT64.

    Raises:
        TypeMismatchError: If either side is non-numeric.
    """
    if not left.is_numeric or not right.is_numeric:
        raise TypeMismatchError(
            f"arithmetic requires numeric types, got {left.name} and {right.name}"
        )
    if FLOAT64 in (left, right):
        return FLOAT64
    if left is TIMESTAMP and right is TIMESTAMP:
        return INT64
    if TIMESTAMP in (left, right):
        return TIMESTAMP
    return INT64
