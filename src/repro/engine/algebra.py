"""Logical relational algebra: the plan representation of the engine.

Plans are trees of :class:`LogicalPlan` nodes.  Besides the classic
operators (scan, select, project, join, aggregate, union, sort, limit) the
module defines the paper's three additional access paths (Section III,
"Physical Query Plan"):

* :class:`ResultScan` — re-reads the result of an already-evaluated
  sub-plan (used to feed ``result-scan(Qf)`` into stage two);
* :class:`CacheScan` — reads one chunk's rows from the Recycler;
* :class:`ChunkAccess` — extracts, transforms and ingests one external
  chunk (the lazy-loading operator).

Schemas are resolved eagerly at node construction; every node knows its
output :class:`~repro.engine.table.Schema` and the set of base tables in its
subtree (needed by the two-stage decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from .errors import PlanError, TypeMismatchError
from .expressions import Expression, referenced_columns
from .table import Field, Schema
from .types import DataType, FLOAT64, INT64

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chunk_planner import ChunkPlan

__all__ = [
    "LogicalPlan",
    "Scan",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "AggregateSpec",
    "Union",
    "Sort",
    "SortKey",
    "Limit",
    "Distinct",
    "EmptyRelation",
    "ResultScan",
    "CacheScan",
    "ChunkAccess",
    "ParallelChunkScan",
    "AGGREGATE_FUNCTIONS",
]

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX", "STD")


class LogicalPlan:
    """Base class for logical plan nodes."""

    schema: Schema

    def children(self) -> Sequence["LogicalPlan"]:
        return ()

    def base_tables(self) -> set[str]:
        """Names of every base table scanned in this subtree."""
        result: set[str] = set()
        for child in self.children():
            result |= child.base_tables()
        return result

    def pretty(self, indent: int = 0) -> str:
        """Multi-line plan rendering for debugging and the examples."""
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__

    def _validate_predicate(self, predicate: Expression, schema: Schema) -> None:
        missing = [
            name for name in referenced_columns(predicate) if not schema.has(name)
        ]
        if missing:
            raise PlanError(
                f"predicate references unknown columns {missing} "
                f"(available: {list(schema.names)})"
            )


class Scan(LogicalPlan):
    """Scan of a base table; output columns are qualified (``F.station``)."""

    def __init__(self, table_name: str, schema: Schema) -> None:
        self.table_name = table_name
        self.schema = schema

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def describe(self) -> str:
        return f"Scan({self.table_name})"


class Select(LogicalPlan):
    """Filter rows by a boolean predicate."""

    def __init__(self, child: LogicalPlan, predicate: Expression) -> None:
        self._validate_predicate(predicate, child.schema)
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def describe(self) -> str:
        return f"Select({self.predicate!r})"


class Project(LogicalPlan):
    """Compute named output expressions (projection + renaming)."""

    def __init__(
        self, child: LogicalPlan, outputs: Sequence[tuple[str, Expression]]
    ) -> None:
        if not outputs:
            raise PlanError("projection requires at least one output")
        self.child = child
        self.outputs = list(outputs)
        from .table import Table  # local import to avoid cycle at module load

        probe = Table.empty(child.schema)
        fields = []
        for name, expression in self.outputs:
            self._validate_predicate(expression, child.schema)
            fields.append(Field(name, expression.output_type(probe)))
        self.schema = Schema(fields)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(f"{n}={e!r}" for n, e in self.outputs)
        return f"Project({rendered})"


class Join(LogicalPlan):
    """Inner join (condition None ⇒ cross product, rule R2's tool)."""

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        condition: Expression | None,
    ) -> None:
        self.left = left
        self.right = right
        self.schema = left.schema.concat(right.schema)
        if condition is not None:
            self._validate_predicate(condition, self.schema)
        self.condition = condition

    def children(self) -> Sequence[LogicalPlan]:
        return (self.left, self.right)

    @property
    def is_cross_product(self) -> bool:
        return self.condition is None

    def describe(self) -> str:
        if self.condition is None:
            return "CrossProduct"
        return f"Join({self.condition!r})"


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate output: ``function(argument) AS output_name``."""

    function: str
    argument: Expression | None  # None only for COUNT(*)
    output_name: str

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise PlanError(f"unknown aggregate function {self.function!r}")
        if self.argument is None and self.function != "COUNT":
            raise PlanError(f"{self.function} requires an argument")

    def output_type(self, input_schema: Schema) -> DataType:
        from .table import Table

        if self.function == "COUNT":
            return INT64
        probe = Table.empty(input_schema)
        arg_type = self.argument.output_type(probe)
        if self.function in ("AVG", "STD"):
            return FLOAT64
        if self.function == "SUM":
            return FLOAT64 if arg_type is FLOAT64 else INT64
        return arg_type  # MIN / MAX keep the input type


class Aggregate(LogicalPlan):
    """Grouped or scalar aggregation."""

    def __init__(
        self,
        child: LogicalPlan,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ) -> None:
        if not aggregates and not group_by:
            raise PlanError("aggregate requires group keys or aggregates")
        for name in group_by:
            if not child.schema.has(name):
                raise PlanError(f"unknown group-by column {name!r}")
        for spec in aggregates:
            if spec.argument is not None:
                self._validate_predicate(spec.argument, child.schema)
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        fields = [child.schema.field(n) for n in group_by]
        fields += [
            Field(s.output_name, s.output_type(child.schema)) for s in aggregates
        ]
        self.schema = Schema(fields)

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(self.group_by) or "()"
        aggs = ", ".join(
            f"{s.function}({s.argument!r})->{s.output_name}" for s in self.aggregates
        )
        return f"Aggregate(by=[{keys}]; {aggs})"


class Union(LogicalPlan):
    """Union-all over children with identical schemas.

    This is the operator the run-time rewrite produces: the union of
    per-chunk accesses replacing a single ``scan(a)`` (rewrite rule (1)).
    """

    def __init__(self, children: Sequence[LogicalPlan]) -> None:
        if not children:
            raise PlanError("union requires at least one child")
        first = children[0].schema
        for child in children[1:]:
            if child.schema.names != first.names:
                raise PlanError("union children must share column names")
            for f_a, f_b in zip(first, child.schema):
                if f_a.dtype is not f_b.dtype:
                    raise TypeMismatchError(
                        f"union type mismatch on {f_a.name}: "
                        f"{f_a.dtype.name} vs {f_b.dtype.name}"
                    )
        self._children = list(children)
        self.schema = first

    def children(self) -> Sequence[LogicalPlan]:
        return tuple(self._children)

    def describe(self) -> str:
        return f"UnionAll({len(self._children)} inputs)"


@dataclass(frozen=True)
class SortKey:
    name: str
    ascending: bool = True


class Sort(LogicalPlan):
    """Order rows by one or more keys."""

    def __init__(self, child: LogicalPlan, keys: Sequence[SortKey]) -> None:
        if not keys:
            raise PlanError("sort requires at least one key")
        for key in keys:
            if not child.schema.has(key.name):
                raise PlanError(f"unknown sort column {key.name!r}")
        self.child = child
        self.keys = list(keys)
        self.schema = child.schema

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def describe(self) -> str:
        rendered = ", ".join(
            f"{k.name} {'ASC' if k.ascending else 'DESC'}" for k in self.keys
        )
        return f"Sort({rendered})"


class Limit(LogicalPlan):
    """Keep the first ``count`` rows."""

    def __init__(self, child: LogicalPlan, count: int) -> None:
        if count < 0:
            raise PlanError("limit must be non-negative")
        self.child = child
        self.count = count
        self.schema = child.schema

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit({self.count})"


class Distinct(LogicalPlan):
    """Remove duplicate rows."""

    def __init__(self, child: LogicalPlan) -> None:
        self.child = child
        self.schema = child.schema

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)


class EmptyRelation(LogicalPlan):
    """A leaf producing zero rows (used as a unit stage-one plan for
    queries with no metadata branch at all)."""

    def __init__(self, schema: Schema | None = None) -> None:
        self.schema = schema if schema is not None else Schema([])

    def describe(self) -> str:
        return "EmptyRelation"


class ResultScan(LogicalPlan):
    """Access path over the result of an already-evaluated sub-plan.

    ``tag`` names a slot in the execution context's stage-result registry;
    stage one stores ``result-scan(Qf)`` there and stage two reads it back.
    """

    def __init__(self, tag: str, schema: Schema) -> None:
        self.tag = tag
        self.schema = schema

    def describe(self) -> str:
        return f"ResultScan({self.tag})"


class CacheScan(LogicalPlan):
    """Access path reading one chunk's rows from the Recycler cache."""

    def __init__(self, uri: str, table_name: str, schema: Schema) -> None:
        self.uri = uri
        self.table_name = table_name
        self.schema = schema

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def describe(self) -> str:
        return f"CacheScan({self.uri})"


class ChunkAccess(LogicalPlan):
    """Access path lazily ingesting one external chunk (file).

    The strategy for accessing a single chunk is pluggable (full load or
    in-situ selective decode — the NoDB-style accessor of Section VII);
    ``pushed_predicate`` carries a selection pushed into the access per the
    second rewrite rule of Section III.
    """

    def __init__(
        self,
        uri: str,
        table_name: str,
        schema: Schema,
        pushed_predicate: Expression | None = None,
    ) -> None:
        self.uri = uri
        self.table_name = table_name
        self.schema = schema
        self.pushed_predicate = pushed_predicate

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def describe(self) -> str:
        if self.pushed_predicate is not None:
            return f"ChunkAccess({self.uri}, push={self.pushed_predicate!r})"
        return f"ChunkAccess({self.uri})"


class ParallelChunkScan(LogicalPlan):
    """Access path ingesting a planned chunk set through one scheduler.

    The scheduler-driven replacement for a serial ``Union`` of per-chunk
    accesses.  The node carries a
    :class:`~repro.engine.chunk_planner.ChunkPlan` — the statistics-pruned,
    cost-ordered contract of the chunk planner — and all three executors
    honor it identically: fetches are issued in ``plan.fetch_order``
    (most expensive first, so remote latency overlaps cheap hits) while
    output rows follow the plan's assembly order, so results are
    bit-identical across serial (``io_threads == 1``), thread and process
    execution.  Cached chunks are served from the Recycler; loads of the
    same URI issued by concurrent queries are coalesced (single-flight).
    """

    def __init__(
        self,
        chunks: "ChunkPlan | Sequence[str]",
        table_name: str,
        schema: Schema,
        pushed_predicate: Expression | None = None,
        io_threads: int = 4,
        executor: str = "thread",
        shared: bool = False,
        shards: int = 0,
    ) -> None:
        from .chunk_planner import ChunkPlan

        if isinstance(chunks, ChunkPlan):
            self.plan = chunks
        else:
            # Plain URI lists (tests, ad-hoc callers) get an unplanned
            # wrapper: nothing pruned, natural fetch order.
            self.plan = ChunkPlan.trivial(list(chunks), table_name)
        self.table_name = table_name
        self.schema = schema
        self.pushed_predicate = pushed_predicate
        self.io_threads = io_threads
        # "thread" decodes on the shared in-process pool; "process" routes
        # decodes through the database's spawn-based worker pool over the
        # shared on-disk chunk store (GIL-free stage two).
        self.executor = executor
        # Route through the database's SharedScanScheduler: concurrent
        # scans of the same table share chunk materialization, predicate
        # masks and assemblies (bit-identical results by construction).
        self.shared = shared
        # Scatter-gather over N shard worker processes, each owning a
        # partition of the chunk stats catalog plus its own chunk store and
        # recycler.  0 disables sharding; when > 0 it overrides the
        # executor/io_threads knobs for this scan.
        self.shards = shards

    @property
    def uris(self) -> tuple[str, ...]:
        return self.plan.uris

    def base_tables(self) -> set[str]:
        return {self.table_name}

    def describe(self) -> str:
        suffix = (
            f", push={self.pushed_predicate!r}"
            if self.pushed_predicate is not None
            else ""
        )
        if self.plan.pruned:
            suffix = f", pruned={len(self.plan.pruned)}{suffix}"
        if self.shared:
            suffix = f", shared{suffix}"
        if self.shards:
            suffix = f", shards={self.shards}{suffix}"
        return (
            f"ParallelChunkScan({len(self.uris)} chunks, "
            f"io_threads={self.io_threads}, executor={self.executor}{suffix})"
        )
