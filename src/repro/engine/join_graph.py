"""Query graphs: vertices are base tables, edges are join predicates.

Section III of the paper expresses its join-order rules over a *query graph*
[Ullman 85]: each base relation is a vertex, and every join predicate
connecting two relations contributes an edge.  The paper colors vertices
red (metadata) or black (actual data); edges become red (red-red), black
(black-black) or blue (red-black).

This module builds the graph from a bound logical plan: single-table
selection predicates are attached to their vertex, join predicates become
edges.  The coloring itself lives in :mod:`repro.core.coloring` — the graph
is a generic engine facility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from . import algebra
from .errors import PlanError
from .expressions import Expression, conjoin, conjuncts, referenced_tables
from .table import Schema

__all__ = ["Vertex", "Edge", "QueryGraph", "build_query_graph"]


@dataclass
class Vertex:
    """One base relation in the query graph."""

    table_name: str
    schema: Schema
    predicates: list[Expression] = field(default_factory=list)

    def local_predicate(self) -> Expression | None:
        """Conjunction of all single-table predicates on this vertex."""
        return conjoin(self.predicates)


@dataclass
class Edge:
    """A join predicate connecting exactly two vertices."""

    tables: frozenset[str]
    predicates: list[Expression] = field(default_factory=list)

    def condition(self) -> Expression | None:
        return conjoin(self.predicates)

    def other(self, table_name: str) -> str:
        (a, b) = tuple(self.tables)
        return b if table_name == a else a


class QueryGraph:
    """Vertices + edges + predicates spanning more than two tables."""

    def __init__(self) -> None:
        self.vertices: dict[str, Vertex] = {}
        self.edges: dict[frozenset[str], Edge] = {}
        # Predicates referencing 3+ tables cannot live on one edge; they are
        # applied once all their tables are joined.
        self.hyper_predicates: list[Expression] = []

    def add_vertex(self, table_name: str, schema: Schema) -> Vertex:
        if table_name in self.vertices:
            raise PlanError(f"duplicate vertex {table_name!r} in query graph")
        vertex = Vertex(table_name, schema)
        self.vertices[table_name] = vertex
        return vertex

    def vertex(self, table_name: str) -> Vertex:
        try:
            return self.vertices[table_name]
        except KeyError:
            raise PlanError(f"unknown vertex {table_name!r}") from None

    def add_predicate(self, predicate: Expression) -> None:
        """Route one conjunct to its vertex, edge, or the hyper list."""
        tables = {t for t in referenced_tables(predicate) if t in self.vertices}
        if len(tables) == 0:
            # Constant predicate: attach to an arbitrary vertex (it will be
            # evaluated once rows exist).  Rare; keeps behaviour total.
            first = next(iter(self.vertices.values()), None)
            if first is None:
                raise PlanError("predicate added to an empty query graph")
            first.predicates.append(predicate)
            return
        if len(tables) == 1:
            self.vertices[next(iter(tables))].predicates.append(predicate)
            return
        if len(tables) == 2:
            key = frozenset(tables)
            edge = self.edges.get(key)
            if edge is None:
                edge = Edge(key)
                self.edges[key] = edge
            edge.predicates.append(predicate)
            return
        self.hyper_predicates.append(predicate)

    def edges_of(self, table_name: str) -> list[Edge]:
        return [e for e in self.edges.values() if table_name in e.tables]

    def neighbors(self, table_name: str) -> set[str]:
        result = set()
        for edge in self.edges_of(table_name):
            result.add(edge.other(table_name))
        return result

    def connected_components(self, subset: Iterable[str] | None = None) -> list[set[str]]:
        """Connected components of the (sub)graph induced by ``subset``."""
        nodes = set(subset) if subset is not None else set(self.vertices)
        remaining = set(nodes)
        components: list[set[str]] = []
        while remaining:
            seed = remaining.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                current = frontier.pop()
                for neighbor in self.neighbors(current):
                    if neighbor in remaining:
                        remaining.remove(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return components


def build_query_graph(plan: algebra.LogicalPlan) -> QueryGraph:
    """Extract the query graph of the join block rooted at ``plan``.

    The function collects every base-table scan and every predicate found in
    Select and Join nodes of the subtree.  Non-join-block operators
    (aggregates, projections, sorts) must sit *above* the join block;
    encountering them below raises :class:`PlanError`.
    """
    graph = QueryGraph()
    predicates: list[Expression] = []

    def visit(node: algebra.LogicalPlan) -> None:
        if isinstance(node, algebra.Scan):
            graph.add_vertex(node.table_name, node.schema)
            return
        if isinstance(node, algebra.Select):
            predicates.extend(conjuncts(node.predicate))
            visit(node.child)
            return
        if isinstance(node, algebra.Join):
            if node.condition is not None:
                predicates.extend(conjuncts(node.condition))
            visit(node.left)
            visit(node.right)
            return
        raise PlanError(
            f"{type(node).__name__} inside a join block; "
            "query graphs cover Scan/Select/Join subtrees only"
        )

    visit(plan)
    for predicate in predicates:
        graph.add_predicate(predicate)
    return graph
