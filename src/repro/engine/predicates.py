"""Shared predicate analysis: literal bounds on a column.

Three consumers extract ``column op literal`` conjuncts from predicates and
historically each grew its own copy of the orientation/bound logic:

* the in-situ chunk accessor (:mod:`repro.engine.physical`) needs a
  half-open ``[low, high)`` time window to decode selectively;
* the compile-time optimizer (:mod:`repro.core.two_stage`) needs the raw
  ``(op, literal)`` pairs to run time-bound inference onto segment
  metadata;
* the chunk planner (:mod:`repro.engine.chunk_planner`) needs to test
  whether a chunk's min/max statistics can possibly satisfy each bound.

This module is the single implementation all three share.  Only *literal*
bounds are considered; both orientations (``column op literal`` and
``literal op column``) are normalized to column-on-the-left form.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .expressions import ColumnRef, Comparison, Expression, Literal, conjuncts

__all__ = [
    "is_numeric_literal",
    "oriented_bound_conjuncts",
    "oriented_literal_comparisons",
    "literal_bounds_by_column",
    "extract_time_bounds",
    "closed_int_bounds",
    "range_may_satisfy",
]

_BOUND_OPS = ("=", "<", "<=", ">", ">=")


def is_numeric_literal(value: object) -> bool:
    """A value range/containment logic may order numerically.

    Bools are excluded (they are ints in Python but never a range bound);
    the single definition shared by the chunk planner's pruning tests and
    the result cache's bound extraction.
    """
    return not isinstance(value, bool) and isinstance(
        value, (int, float, np.integer, np.floating)
    )


def oriented_bound_conjuncts(
    predicate: Expression,
) -> Iterator[tuple[str, str, Literal]]:
    """Yield ``(column, op, literal)`` for every literal bound conjunct.

    The single normalization loop every consumer builds on: comparisons
    are oriented so the column is on the left (a flipped comparison yields
    the flipped operator); non-comparison conjuncts, comparisons against
    non-literals and non-bound operators are skipped.  Public because the
    semantic result cache uses the same normalization to split a plan into
    its bound-free template plus per-column bounds.
    """
    for conjunct in conjuncts(predicate):
        if not isinstance(conjunct, Comparison):
            continue
        for oriented in (conjunct, conjunct.flipped()):
            if (
                isinstance(oriented.left, ColumnRef)
                and isinstance(oriented.right, Literal)
                and oriented.op in _BOUND_OPS
            ):
                yield oriented.left.name, oriented.op, oriented.right
                break


def oriented_literal_comparisons(
    predicate: Expression, column: str
) -> Iterator[tuple[str, Literal]]:
    """``(op, literal)`` for every conjunct bounding the named column."""
    for found, op, literal in oriented_bound_conjuncts(predicate):
        if found == column:
            yield op, literal


def literal_bounds_by_column(
    predicate: Expression | None,
) -> dict[str, list[tuple[str, object]]]:
    """All literal bound conjuncts, grouped by the column they constrain.

    Returns ``{column: [(op, value), ...]}`` with values taken from the
    literals.  Used by the chunk planner to prune against per-chunk
    statistics without knowing the schema in advance.
    """
    if predicate is None:
        return {}
    found: dict[str, list[tuple[str, object]]] = {}
    for column, op, literal in oriented_bound_conjuncts(predicate):
        found.setdefault(column, []).append((op, literal.value))
    return found


def extract_time_bounds(
    predicate: Expression, time_column: str
) -> tuple[int | None, int | None] | None:
    """Half-open ``[low, high)`` integer bounds on ``time_column``.

    The contract of the in-situ accessor: ``>=``/``>`` tighten the low
    bound, ``<``/``<=`` the high bound; equality is not a range.  Returns
    None when the predicate implies no bound at all.
    """
    low: int | None = None
    high: int | None = None
    found = False
    for op, literal in oriented_literal_comparisons(predicate, time_column):
        bound = int(literal.value)
        if op == ">=":
            low = bound if low is None else max(low, bound)
        elif op == ">":
            low = bound + 1 if low is None else max(low, bound + 1)
        elif op == "<":
            high = bound if high is None else min(high, bound)
        elif op == "<=":
            high = bound + 1 if high is None else min(high, bound + 1)
        else:
            continue
        found = True
    if not found:
        return None
    return low, high


def closed_int_bounds(
    ops: list[tuple[str, object]],
) -> tuple[int | None, int | None]:
    """Inclusive ``[low, high]`` integer bounds implied by bound conjuncts.

    Used to probe integer-domain zone maps (timestamps are int64
    milliseconds).  Non-integer values are ignored.
    """
    low: int | None = None
    high: int | None = None
    for op, value in ops:
        if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
            continue
        bound = int(value)
        if op in (">=", "="):
            low = bound if low is None else max(low, bound)
        if op == ">":
            low = bound + 1 if low is None else max(low, bound + 1)
        if op in ("<=", "="):
            high = bound if high is None else min(high, bound)
        if op == "<":
            high = bound - 1 if high is None else min(high, bound - 1)
    return low, high


def range_may_satisfy(
    op: str, value: object, minimum: float, maximum: float
) -> bool:
    """Can any point of ``[minimum, maximum]`` satisfy ``point op value``?

    Conservative by construction: unknown operators and non-numeric values
    return True (never prune on what we cannot reason about).
    """
    if not is_numeric_literal(value):
        return True
    bound = float(value)
    if op == ">=":
        return maximum >= bound
    if op == ">":
        return maximum > bound
    if op == "<=":
        return minimum <= bound
    if op == "<":
        return minimum < bound
    if op == "=":
        return minimum <= bound <= maximum
    return True
