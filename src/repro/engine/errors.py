"""Exception hierarchy for the repro columnar engine.

Every error raised by the engine derives from :class:`EngineError`, so callers
can catch one type to handle any engine failure.  Sub-classes mirror the
classic DBMS error taxonomy: catalog errors (unknown/duplicate objects),
type errors, SQL front-end errors (lexing/parsing/binding) and execution
errors (runtime failures inside physical operators).
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all errors raised by :mod:`repro.engine`."""


class CatalogError(EngineError):
    """A catalog object is missing, duplicated, or used inconsistently."""


class TypeMismatchError(EngineError):
    """An operation was attempted on incompatible column/value types."""


class SQLError(EngineError):
    """Base class for SQL front-end failures."""


class LexerError(SQLError):
    """The SQL text contains a character sequence that cannot be tokenized."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SQLError):
    """The SQL token stream does not form a valid statement."""


class BindError(SQLError):
    """A parsed statement references unknown tables/columns or is ill-typed."""


class ExecutionError(EngineError):
    """A physical operator failed while evaluating a query plan."""


class QueryCancelled(ExecutionError):
    """The query's cancel token was set; execution unwound cooperatively.

    Raised at chunk boundaries (and operator entry), so a query blocked on
    remote chunk fetches stops within one fetch of the cancellation — the
    contract a serving front end's request timeout relies on.
    """


class PlanError(EngineError):
    """A logical or physical plan is structurally invalid."""


class StorageError(EngineError):
    """Paged storage or buffer-pool failure (bad page, I/O error, ...)."""


class FormatError(EngineError):
    """A chunk file is corrupt or does not follow the xseed format."""
