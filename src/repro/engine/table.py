"""Tables: ordered collections of equal-length named columns.

A :class:`Schema` describes column names and types; a :class:`Table` binds a
schema to concrete :class:`~repro.engine.column.Column` data.  Tables are the
values flowing between the engine's bulk operators, and also what base
relations materialize to when scanned.

Column names inside the engine are *qualified* (``F.station``) once a table
participates in a plan; :meth:`Table.with_prefix` produces the qualified view
of a base table without copying column data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .column import Column, ColumnBuilder
from .errors import CatalogError, TypeMismatchError
from .types import DataType

__all__ = ["Field", "Schema", "Table", "TableBuilder"]


@dataclass(frozen=True)
class Field:
    """A named, typed slot in a schema."""

    name: str
    dtype: DataType

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.dtype.name}"


class Schema:
    """An ordered list of fields with unique names."""

    __slots__ = ("fields", "_index")

    def __init__(self, fields: Sequence[Field]) -> None:
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise CatalogError(f"duplicate column names in schema: {duplicates}")
        self.fields: tuple[Field, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}

    @classmethod
    def of(cls, *pairs: tuple[str, DataType]) -> "Schema":
        """Build a schema from (name, type) pairs."""
        return cls([Field(name, dtype) for name, dtype in pairs])

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "Schema(" + ", ".join(map(repr, self.fields)) + ")"

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def has(self, name: str) -> bool:
        return name in self._index

    def field(self, name: str) -> Field:
        try:
            return self.fields[self._index[name]]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def with_prefix(self, prefix: str) -> "Schema":
        """Qualify every column name with ``prefix.``."""
        return Schema([Field(f"{prefix}.{f.name}", f.dtype) for f in self.fields])

    def select(self, names: Sequence[str]) -> "Schema":
        """Sub-schema restricted to ``names`` in the given order."""
        return Schema([self.field(n) for n in names])

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join result: fields of self followed by other."""
        return Schema(list(self.fields) + list(other.fields))


class Table:
    """An immutable set of equal-length named columns.

    Tables are cheap to construct; they share column objects rather than
    copying data, so projections and renames are O(#columns).
    """

    __slots__ = ("schema", "columns")

    def __init__(self, schema: Schema, columns: Sequence[Column]) -> None:
        if len(schema) != len(columns):
            raise CatalogError(
                f"schema has {len(schema)} fields but {len(columns)} columns given"
            )
        length = len(columns[0]) if columns else 0
        for field, column in zip(schema, columns):
            if column.dtype is not field.dtype:
                raise TypeMismatchError(
                    f"column {field.name!r} expected {field.dtype.name}, "
                    f"got {column.dtype.name}"
                )
            if len(column) != length:
                raise CatalogError(
                    f"ragged table: column {field.name!r} has {len(column)} rows, "
                    f"expected {length}"
                )
        self.schema = schema
        self.columns: tuple[Column, ...] = tuple(columns)

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        return cls(schema, [Column.empty(f.dtype) for f in schema])

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "Table":
        """Build a table from an iterable of row tuples."""
        builders = [ColumnBuilder(f.dtype) for f in schema]
        for row in rows:
            if len(row) != len(schema):
                raise CatalogError(
                    f"row width {len(row)} does not match schema width {len(schema)}"
                )
            for builder, value in zip(builders, row):
                builder.append(value)
        return cls(schema, [b.finish() for b in builders])

    @classmethod
    def from_columns(cls, named: Mapping[str, Column]) -> "Table":
        """Build a table from a name → column mapping (insertion order kept)."""
        schema = Schema([Field(name, col.dtype) for name, col in named.items()])
        return cls(schema, list(named.values()))

    # -- basic protocol ----------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns)

    @property
    def resident_nbytes(self) -> int:
        """Heap bytes (mmap-backed columns count 0, see Column)."""
        return sum(c.resident_nbytes for c in self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.schema!r}, rows={self.num_rows})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and all(
            a == b for a, b in zip(self.columns, other.columns)
        )

    def column(self, name: str) -> Column:
        return self.columns[self.schema.index_of(name)]

    def row(self, index: int) -> tuple[Any, ...]:
        return tuple(col[index] for col in self.columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialize as a list of row dictionaries (for tests/reporting)."""
        names = self.schema.names
        return [dict(zip(names, row)) for row in self.rows()]

    # -- bulk operations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        return Table(self.schema, [c.take(indices) for c in self.columns])

    def filter(self, mask: np.ndarray) -> "Table":
        return Table(self.schema, [c.filter(mask) for c in self.columns])

    def slice(self, start: int, stop: int) -> "Table":
        return Table(self.schema, [c.slice(start, stop) for c in self.columns])

    def project(self, names: Sequence[str]) -> "Table":
        """Keep only the named columns, in the given order (no data copy)."""
        return Table(
            self.schema.select(names), [self.column(n) for n in names]
        )

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; names absent from the mapping are kept."""
        fields = [
            Field(mapping.get(f.name, f.name), f.dtype) for f in self.schema
        ]
        return Table(Schema(fields), list(self.columns))

    def with_prefix(self, prefix: str) -> "Table":
        """Qualify all column names with ``prefix.`` (no data copy)."""
        return Table(self.schema.with_prefix(prefix), list(self.columns))

    def concat(self, other: "Table") -> "Table":
        """Union-all of two tables with identical schemas."""
        if other.schema != self.schema:
            raise CatalogError("concat requires identical schemas")
        return Table(
            self.schema,
            [a.concat(b) for a, b in zip(self.columns, other.columns)],
        )

    @staticmethod
    def concat_all(tables: Sequence["Table"]) -> "Table":
        """Union-all of a non-empty sequence of identically-typed tables."""
        if not tables:
            raise ValueError("concat_all requires at least one table")
        first = tables[0]
        for table in tables[1:]:
            if table.schema != first.schema:
                raise CatalogError("concat_all requires identical schemas")
        if len(tables) == 1:
            return first
        columns = [
            Column.concat_all([t.columns[i] for t in tables])
            for i in range(first.num_columns)
        ]
        return Table(first.schema, columns)

    def zip_columns(self, other: "Table") -> "Table":
        """Horizontal concatenation (used to build join outputs)."""
        if other.num_rows != self.num_rows and self.num_columns and other.num_columns:
            raise CatalogError("zip_columns requires equal row counts")
        return Table(
            self.schema.concat(other.schema),
            list(self.columns) + list(other.columns),
        )


class TableBuilder:
    """Row-oriented builder producing a :class:`Table` (loading paths)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._builders = [ColumnBuilder(f.dtype) for f in schema]

    def __len__(self) -> int:
        return len(self._builders[0]) if self._builders else 0

    def append_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.schema):
            raise CatalogError(
                f"row width {len(row)} does not match schema width {len(self.schema)}"
            )
        for builder, value in zip(self._builders, row):
            builder.append(value)

    def append_columns(self, arrays: Sequence[np.ndarray]) -> None:
        """Bulk-append one array per column (vectorized ingestion)."""
        if len(arrays) != len(self.schema):
            raise CatalogError("append_columns width mismatch")
        lengths = {len(a) for a in arrays}
        if len(lengths) > 1:
            raise CatalogError("append_columns requires equal-length arrays")
        for builder, array in zip(self._builders, arrays):
            builder.extend_array(np.asarray(array))

    def finish(self) -> Table:
        return Table(self.schema, [b.finish() for b in self._builders])
