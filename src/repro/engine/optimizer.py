"""Rule-based logical optimizer (the engine's generic rewrite pipeline).

The passes here are the standard compile-time optimizations the paper
assumes exist before its own extensions run ("usual compile-time
optimizations (e.g. pushing down selections and projections, etc.) are
performed", Section III):

* selection pushdown — σ moves below joins onto the side that defines all
  referenced columns, and merges into existing selects;
* predicate simplification — constant folding of comparisons between
  literals, AND flattening, duplicate-conjunct elimination;
* join-block extraction helpers used by the paper's compile-time optimizer
  (in :mod:`repro.core`) to re-order joins.

The paper's partial-loading rules (R1–R4, plan split, runtime rewrite) are
implemented in :mod:`repro.core.coloring` and :mod:`repro.core.two_stage`;
they plug into this pipeline rather than replacing it.
"""

from __future__ import annotations

from . import algebra
from .expressions import (
    BooleanOp,
    Comparison,
    Expression,
    Literal,
    conjoin,
    conjuncts,
    referenced_columns,
)

__all__ = ["optimize", "push_down_selections", "simplify_predicates"]

_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def optimize(plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
    """Run the standard pipeline: simplify, then push selections down."""
    plan = simplify_predicates(plan)
    plan = push_down_selections(plan)
    return plan


# -- predicate simplification -----------------------------------------------------


def _fold_expression(expression: Expression) -> Expression:
    """Fold literal-literal comparisons and flatten nested ANDs."""
    if isinstance(expression, Comparison):
        left = _fold_expression(expression.left)
        right = _fold_expression(expression.right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            try:
                value = _COMPARE[expression.op](left.value, right.value)
                return Literal(bool(value))
            except TypeError:
                pass
        return Comparison(expression.op, left, right)
    if isinstance(expression, BooleanOp) and expression.op == "AND":
        parts: list[Expression] = []
        seen: set = set()
        for conjunct in conjuncts(expression):
            folded = _fold_expression(conjunct)
            if isinstance(folded, Literal) and folded.value is True:
                continue
            if folded.key() in seen:
                continue
            seen.add(folded.key())
            parts.append(folded)
        merged = conjoin(parts)
        return merged if merged is not None else Literal(True)
    if isinstance(expression, BooleanOp):
        return BooleanOp(
            expression.op, [_fold_expression(o) for o in expression.operands]
        )
    return expression


def simplify_predicates(plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
    """Apply predicate folding throughout the plan tree."""
    if isinstance(plan, algebra.Select):
        child = simplify_predicates(plan.child)
        predicate = _fold_expression(plan.predicate)
        if isinstance(predicate, Literal) and predicate.value is True:
            return child
        return algebra.Select(child, predicate)
    if isinstance(plan, algebra.Join):
        left = simplify_predicates(plan.left)
        right = simplify_predicates(plan.right)
        condition = (
            None if plan.condition is None else _fold_expression(plan.condition)
        )
        return algebra.Join(left, right, condition)
    return _rebuild_with_children(plan, simplify_predicates)


# -- selection pushdown -------------------------------------------------------------


def push_down_selections(plan: algebra.LogicalPlan) -> algebra.LogicalPlan:
    """Push σ conjuncts as deep as the columns they reference allow."""
    return _pushdown(plan, [])


def _pushdown(
    plan: algebra.LogicalPlan, pending: list[Expression]
) -> algebra.LogicalPlan:
    if isinstance(plan, algebra.Select):
        return _pushdown(plan.child, pending + conjuncts(plan.predicate))

    if isinstance(plan, algebra.Join):
        left_names = set(plan.left.schema.names)
        right_names = set(plan.right.schema.names)
        to_left: list[Expression] = []
        to_right: list[Expression] = []
        stay: list[Expression] = []
        for predicate in pending:
            referenced = referenced_columns(predicate)
            if referenced <= left_names:
                to_left.append(predicate)
            elif referenced <= right_names:
                to_right.append(predicate)
            else:
                stay.append(predicate)
        new_left = _pushdown(plan.left, to_left)
        new_right = _pushdown(plan.right, to_right)
        rebuilt: algebra.LogicalPlan = algebra.Join(
            new_left, new_right, plan.condition
        )
        return _wrap_select(rebuilt, stay)

    if isinstance(plan, algebra.Union):
        # A predicate over union output applies to every branch.
        children = [
            _pushdown(child, list(pending)) for child in plan.children()
        ]
        return algebra.Union(children)

    if isinstance(plan, (algebra.Scan, algebra.ResultScan, algebra.CacheScan,
                         algebra.ChunkAccess)):
        return _wrap_select(plan, pending)

    # Pipeline-breaking operators: recurse without crossing them, then apply
    # the pending predicates above.
    rebuilt = _rebuild_with_children(plan, lambda c: _pushdown(c, []))
    return _wrap_select(rebuilt, pending)


def _wrap_select(
    plan: algebra.LogicalPlan, predicates: list[Expression]
) -> algebra.LogicalPlan:
    condition = conjoin(predicates)
    if condition is None:
        return plan
    return algebra.Select(plan, condition)


# -- generic reconstruction -----------------------------------------------------------


def _rebuild_with_children(plan: algebra.LogicalPlan, transform) -> algebra.LogicalPlan:
    """Rebuild a node with transformed children (identity for leaves)."""
    if isinstance(plan, algebra.Project):
        return algebra.Project(transform(plan.child), plan.outputs)
    if isinstance(plan, algebra.Aggregate):
        return algebra.Aggregate(
            transform(plan.child), plan.group_by, plan.aggregates
        )
    if isinstance(plan, algebra.Sort):
        return algebra.Sort(transform(plan.child), plan.keys)
    if isinstance(plan, algebra.Limit):
        return algebra.Limit(transform(plan.child), plan.count)
    if isinstance(plan, algebra.Distinct):
        return algebra.Distinct(transform(plan.child))
    if isinstance(plan, algebra.Union):
        return algebra.Union([transform(c) for c in plan.children()])
    if isinstance(plan, algebra.Select):
        return algebra.Select(transform(plan.child), plan.predicate)
    if isinstance(plan, algebra.Join):
        return algebra.Join(
            transform(plan.left), transform(plan.right), plan.condition
        )
    return plan
