"""Scalar expression AST with vectorized (columnar) evaluation.

Expressions appear in selections, join conditions, and projection lists.
Evaluation is bulk: :meth:`Expression.evaluate` receives a
:class:`~repro.engine.table.Table` and returns a NumPy array covering every
row at once — the engine never interprets expressions row by row.

The module also provides the predicate analysis the paper's optimizer needs:
conjunct splitting, referenced-table extraction, and recognition of
equi-join conditions (for hash joins and for the query-graph edges of
Section III).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .errors import TypeMismatchError
from .table import Table
from .types import (
    BOOL,
    DataType,
    FLOAT64,
    INT64,
    STRING,
    common_numeric_type,
    infer_type,
)

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "BooleanOp",
    "Arithmetic",
    "IsIn",
    "conjuncts",
    "conjoin",
    "referenced_columns",
    "referenced_tables",
    "split_equi_join",
    "col",
    "lit",
]

_COMPARATORS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_ARITHMETIC: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
    "%": np.mod,
}


class Expression:
    """Base class of the expression AST."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Evaluate over all rows of ``table``; returns a NumPy array."""
        raise NotImplementedError

    def output_type(self, table: Table) -> DataType:
        """The logical type this expression produces against ``table``."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    def walk(self) -> Iterator["Expression"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    # Structural equality lets optimizer rules dedupe predicates.
    def key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expression):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class ColumnRef(Expression):
    """Reference to a (qualified) column, e.g. ``F.station``."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, table: Table) -> np.ndarray:
        return table.column(self.name).values

    def output_type(self, table: Table) -> DataType:
        return table.schema.field(self.name).dtype

    def key(self) -> tuple:
        return ("col", self.name)

    def __repr__(self) -> str:
        return self.name

    @property
    def table_name(self) -> str | None:
        """The qualifier part of the name, if any (``F.station`` → ``F``)."""
        if "." in self.name:
            return self.name.split(".", 1)[0]
        return None


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value", "dtype")

    def __init__(self, value: Any, dtype: DataType | None = None) -> None:
        self.dtype = dtype if dtype is not None else infer_type(value)
        self.value = self.dtype.coerce_value(value)

    def evaluate(self, table: Table) -> np.ndarray:
        if self.dtype is STRING:
            array = np.empty(table.num_rows, dtype=object)
            array[:] = self.value
            return array
        return np.full(table.num_rows, self.value, dtype=self.dtype.numpy_dtype)

    def output_type(self, table: Table) -> DataType:
        return self.dtype

    def key(self) -> tuple:
        return ("lit", self.dtype.name, self.value)

    def __repr__(self) -> str:
        if self.dtype is STRING:
            return f"'{self.value}'"
        return repr(self.value)


class Comparison(Expression):
    """A binary comparison producing a boolean array."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARATORS:
            raise TypeMismatchError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        return _COMPARATORS[self.op](left, right)

    def output_type(self, table: Table) -> DataType:
        return BOOL

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def key(self) -> tuple:
        return ("cmp", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def flipped(self) -> "Comparison":
        """The same condition with sides swapped (``a < b`` → ``b > a``)."""
        flip = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Comparison(flip[self.op], self.right, self.left)


class BooleanOp(Expression):
    """AND / OR over sub-expressions, or NOT over one."""

    __slots__ = ("op", "operands")

    def __init__(self, op: str, operands: Sequence[Expression]) -> None:
        if op not in ("AND", "OR", "NOT"):
            raise TypeMismatchError(f"unknown boolean operator {op!r}")
        if op == "NOT" and len(operands) != 1:
            raise TypeMismatchError("NOT takes exactly one operand")
        if op in ("AND", "OR") and len(operands) < 2:
            raise TypeMismatchError(f"{op} takes at least two operands")
        self.op = op
        self.operands = tuple(operands)

    def evaluate(self, table: Table) -> np.ndarray:
        parts = [np.asarray(o.evaluate(table), dtype=np.bool_) for o in self.operands]
        if self.op == "NOT":
            return ~parts[0]
        result = parts[0]
        for part in parts[1:]:
            result = (result & part) if self.op == "AND" else (result | part)
        return result

    def output_type(self, table: Table) -> DataType:
        return BOOL

    def children(self) -> Sequence[Expression]:
        return self.operands

    def key(self) -> tuple:
        return ("bool", self.op, tuple(o.key() for o in self.operands))

    def __repr__(self) -> str:
        if self.op == "NOT":
            return f"NOT {self.operands[0]!r}"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class Arithmetic(Expression):
    """Binary arithmetic (+, -, *, /, %) over numeric expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _ARITHMETIC:
            raise TypeMismatchError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, table: Table) -> np.ndarray:
        left = self.left.evaluate(table)
        right = self.right.evaluate(table)
        result = _ARITHMETIC[self.op](left, right)
        if self.output_type(table) is INT64 and result.dtype != np.int64:
            result = result.astype(np.int64)
        return result

    def output_type(self, table: Table) -> DataType:
        left = self.left.output_type(table)
        right = self.right.output_type(table)
        if self.op == "/":
            return FLOAT64
        return common_numeric_type(left, right)

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def key(self) -> tuple:
        return ("arith", self.op, self.left.key(), self.right.key())

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class IsIn(Expression):
    """Membership test against a literal set (``x IN (...)``)."""

    __slots__ = ("operand", "options")

    def __init__(self, operand: Expression, options: Sequence[Any]) -> None:
        self.operand = operand
        self.options = tuple(options)

    def evaluate(self, table: Table) -> np.ndarray:
        values = self.operand.evaluate(table)
        if values.dtype == object:
            option_set = set(self.options)
            return np.fromiter(
                (v in option_set for v in values), dtype=np.bool_, count=len(values)
            )
        return np.isin(values, np.asarray(self.options))

    def output_type(self, table: Table) -> DataType:
        return BOOL

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def key(self) -> tuple:
        return ("isin", self.operand.key(), self.options)

    def __repr__(self) -> str:
        return f"({self.operand!r} IN {list(self.options)!r})"


# -- predicate analysis ------------------------------------------------------


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BooleanOp) and expression.op == "AND":
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def conjoin(parts: Sequence[Expression]) -> Expression | None:
    """Re-assemble conjuncts into a single predicate (None when empty)."""
    parts = [p for p in parts if p is not None]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return BooleanOp("AND", parts)


def referenced_columns(expression: Expression) -> set[str]:
    """All column names referenced anywhere in the expression."""
    return {n.name for n in expression.walk() if isinstance(n, ColumnRef)}


def referenced_tables(expression: Expression) -> set[str]:
    """All table qualifiers referenced in the expression.

    Unqualified column references contribute nothing; the binder qualifies
    all names before plans reach the optimizer, so in practice every
    reference carries its table.
    """
    tables: set[str] = set()
    for node in expression.walk():
        if isinstance(node, ColumnRef) and node.table_name is not None:
            tables.add(node.table_name)
    return tables


def split_equi_join(
    condition: Expression, left_tables: set[str], right_tables: set[str]
) -> tuple[list[tuple[str, str]], list[Expression]]:
    """Separate a join condition into equi-key pairs and residual conjuncts.

    Returns ``(pairs, residual)`` where ``pairs`` is a list of
    ``(left_column, right_column)`` names usable as hash-join keys, and
    ``residual`` contains every conjunct that is not a simple equality
    between one column of each side.
    """
    pairs: list[tuple[str, str]] = []
    residual: list[Expression] = []
    for conjunct in conjuncts(condition):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            left_table = conjunct.left.table_name
            right_table = conjunct.right.table_name
            if left_table in left_tables and right_table in right_tables:
                pairs.append((conjunct.left.name, conjunct.right.name))
                continue
            if left_table in right_tables and right_table in left_tables:
                pairs.append((conjunct.right.name, conjunct.left.name))
                continue
        residual.append(conjunct)
    return pairs, residual


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Any, dtype: DataType | None = None) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value, dtype)
