"""Physical evaluation of logical plans: bulk operators over columns.

The executor walks a :class:`~repro.engine.algebra.LogicalPlan` and
materializes a :class:`~repro.engine.table.Table` per node — MonetDB-style
full materialization ("bulk processing"), which is what makes the paper's
two-stage break between sub-plans natural.

All heavy lifting is vectorized: selections evaluate predicates over whole
columns, joins run through :mod:`repro.engine.hashjoin`, and aggregation is
bincount/ufunc based.  An :class:`ExecutionContext` carries the database
handle (for scans, chunk loading and caches), the stage-result registry used
by ``result-scan``, and the counters experiments read.

Hidden columns: every base-table scan emits a ``<T>.#rowid`` column so that
join indexes (a positional FK→PK mapping) can replace hash joins when the
eager_index loading variant built them.  Hidden columns are dropped by
projections and final result delivery.
"""

from __future__ import annotations

import threading
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from . import algebra
from .column import Column
from .errors import ExecutionError, PlanError, QueryCancelled
from .expressions import Comparison, ColumnRef, Expression, conjuncts
from .hashjoin import composite_codes_pair, equi_join_pairs
from .predicates import extract_time_bounds
from .table import Schema, Table
from .types import FLOAT64, INT64, STRING, TIMESTAMP

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database

__all__ = [
    "CancelToken",
    "ExecStats",
    "ExecutionContext",
    "execute_plan",
    "drop_hidden_columns",
]

HIDDEN_MARKER = "#"


class CancelToken:
    """Cooperative cancellation flag, safe to set from any thread.

    A serving front end hands one token per request down to the executor;
    setting it makes the query raise :class:`QueryCancelled` at the next
    operator entry or chunk boundary, unwinding through the session so the
    pool slot is released cleanly.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise QueryCancelled("query cancelled by its cancel token")


@dataclass
class ExecStats:
    """Counters accumulated during plan evaluation."""

    rows_scanned: int = 0
    chunks_loaded: int = 0
    chunks_from_cache: int = 0
    chunks_rehydrated: int = 0
    chunks_pruned: int = 0
    chunks_prefetched: int = 0
    chunk_rows_loaded: int = 0
    chunk_load_seconds: float = 0.0
    # Shared-scan outcomes: this query attached to an already-running scan
    # pass / consumed chunks another attached query materialized.
    shared_scan_attached: int = 0
    chunks_shared: int = 0
    # Scatter-gather outcomes: sub-plans dispatched to shard workers and
    # chunks whose filtered rows came back from them.
    shard_subplans: int = 0
    chunks_from_shards: int = 0
    joins_executed: int = 0
    join_index_hits: int = 0
    rows_joined: int = 0
    # Result-recycler outcomes: the whole query was answered from a cached
    # result (exact repeat) or by re-filtering a covering one (subsumed).
    results_from_cache: int = 0
    results_subsumed: int = 0

    def reset(self) -> None:
        self.rows_scanned = 0
        self.chunks_loaded = 0
        self.chunks_from_cache = 0
        self.chunks_rehydrated = 0
        self.chunks_pruned = 0
        self.chunks_prefetched = 0
        self.chunk_rows_loaded = 0
        self.chunk_load_seconds = 0.0
        self.shared_scan_attached = 0
        self.chunks_shared = 0
        self.shard_subplans = 0
        self.chunks_from_shards = 0
        self.joins_executed = 0
        self.join_index_hits = 0
        self.rows_joined = 0
        self.results_from_cache = 0
        self.results_subsumed = 0

    def merge(self, other: "ExecStats") -> None:
        self.rows_scanned += other.rows_scanned
        self.chunks_loaded += other.chunks_loaded
        self.chunks_from_cache += other.chunks_from_cache
        self.chunks_rehydrated += other.chunks_rehydrated
        self.chunks_pruned += other.chunks_pruned
        self.chunks_prefetched += other.chunks_prefetched
        self.chunk_rows_loaded += other.chunk_rows_loaded
        self.chunk_load_seconds += other.chunk_load_seconds
        self.shared_scan_attached += other.shared_scan_attached
        self.chunks_shared += other.chunks_shared
        self.shard_subplans += other.shard_subplans
        self.chunks_from_shards += other.chunks_from_shards
        self.joins_executed += other.joins_executed
        self.join_index_hits += other.join_index_hits
        self.rows_joined += other.rows_joined
        self.results_from_cache += other.results_from_cache
        self.results_subsumed += other.results_subsumed


@dataclass
class ExecutionContext:
    """Everything a physical operator needs at run time."""

    database: "Database"
    stage_results: dict[str, Table] = field(default_factory=dict)
    stats: ExecStats = field(default_factory=ExecStats)
    cancel: CancelToken | None = None

    def check_cancelled(self) -> None:
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()


def is_hidden(name: str) -> bool:
    return HIDDEN_MARKER in name


def drop_hidden_columns(table: Table) -> Table:
    """Remove engine-internal (rowid) columns before delivering results."""
    visible = [n for n in table.schema.names if not is_hidden(n)]
    if len(visible) == len(table.schema.names):
        return table
    return table.project(visible)


def execute_plan(plan: algebra.LogicalPlan, ctx: ExecutionContext) -> Table:
    """Evaluate a logical plan bottom-up, returning its result table."""
    ctx.check_cancelled()
    if isinstance(plan, algebra.Scan):
        return _execute_scan(plan, ctx)
    if isinstance(plan, algebra.Select):
        return _execute_select(plan, ctx)
    if isinstance(plan, algebra.Project):
        return _execute_project(plan, ctx)
    if isinstance(plan, algebra.Join):
        return _execute_join(plan, ctx)
    if isinstance(plan, algebra.Aggregate):
        return _execute_aggregate(plan, ctx)
    if isinstance(plan, algebra.Union):
        tables = [execute_plan(child, ctx) for child in plan.children()]
        aligned = [t.project(list(plan.schema.names)) for t in tables]
        return Table.concat_all(aligned)
    if isinstance(plan, algebra.Sort):
        return _execute_sort(plan, ctx)
    if isinstance(plan, algebra.Limit):
        child = execute_plan(plan.child, ctx)
        return child.slice(0, min(plan.count, child.num_rows))
    if isinstance(plan, algebra.Distinct):
        return _execute_distinct(plan, ctx)
    if isinstance(plan, algebra.EmptyRelation):
        return Table.empty(plan.schema)
    if isinstance(plan, algebra.ResultScan):
        return _execute_result_scan(plan, ctx)
    if isinstance(plan, algebra.CacheScan):
        return _execute_cache_scan(plan, ctx)
    if isinstance(plan, algebra.ChunkAccess):
        return _execute_chunk_access(plan, ctx)
    if isinstance(plan, algebra.ParallelChunkScan):
        return _execute_parallel_chunk_scan(plan, ctx)
    raise PlanError(f"no physical implementation for {type(plan).__name__}")


# -- scans ---------------------------------------------------------------------


def _execute_scan(plan: algebra.Scan, ctx: ExecutionContext) -> Table:
    table = ctx.database.scan_base_table(plan.table_name)
    ctx.stats.rows_scanned += table.num_rows
    return table


def _execute_result_scan(plan: algebra.ResultScan, ctx: ExecutionContext) -> Table:
    try:
        return ctx.stage_results[plan.tag]
    except KeyError:
        raise ExecutionError(
            f"result-scan: no stage result tagged {plan.tag!r}"
        ) from None


def _execute_cache_scan(plan: algebra.CacheScan, ctx: ExecutionContext) -> Table:
    cached = ctx.database.recycler.get(plan.uri)
    if cached is None:
        # The chunk fell out of the cache between planning and execution:
        # degrade gracefully to a chunk access.
        fallback = algebra.ChunkAccess(plan.uri, plan.table_name, plan.schema)
        return _execute_chunk_access(fallback, ctx)
    ctx.stats.chunks_from_cache += 1
    return _align_chunk(cached, plan.schema)


def _record_chunk_outcome(
    ctx: ExecutionContext,
    uri: str,
    chunk: Table,
    outcome: str,
    cost_seconds: float,
) -> None:
    """Account one recycler ``get_or_load`` outcome into the exec stats."""
    if outcome == "loaded":
        ctx.stats.chunks_loaded += 1
        ctx.stats.chunk_rows_loaded += chunk.num_rows
        ctx.stats.chunk_load_seconds += cost_seconds
    elif outcome == "rehydrated":  # mmap re-hydrate from the disk tier
        ctx.stats.chunks_rehydrated += 1
    else:  # "hit" or "coalesced": another query (or this one) paid the cost
        ctx.stats.chunks_from_cache += 1
    if outcome in ("loaded", "rehydrated"):
        # A full chunk is in hand: enrich the planner's statistics (no-op
        # when already enriched).  This is what turns value-predicate
        # pruning on for subsequent queries — including mmap re-hydrates
        # and process-worker decodes that bypass Database.load_chunk.
        ctx.database.chunk_stats.observe_table(
            uri, chunk, loading_cost=cost_seconds if outcome == "loaded" else None
        )


def _execute_chunk_access(plan: algebra.ChunkAccess, ctx: ExecutionContext) -> Table:
    ctx.check_cancelled()
    in_situ = _try_in_situ_access(plan, ctx)
    if in_situ is not None:
        return in_situ
    database = ctx.database
    chunk, outcome, cost_seconds = database.recycler.get_or_load(
        plan.uri, lambda uri: database.load_chunk(uri, plan.table_name)
    )
    _record_chunk_outcome(ctx, plan.uri, chunk, outcome, cost_seconds)
    result = _align_chunk(chunk, plan.schema)
    if plan.pushed_predicate is not None:
        mask = np.asarray(plan.pushed_predicate.evaluate(result), dtype=np.bool_)
        result = result.filter(mask)
    return result


def _execute_parallel_chunk_scan(
    plan: algebra.ParallelChunkScan, ctx: ExecutionContext
) -> Table:
    """The chunk scheduler: planned fetch order over any executor.

    Fetches are issued in the chunk plan's scheduled order (most expensive
    tier first, so remote fetch latency overlaps cheap cache hits and
    re-hydrates) — serially on the query thread with ``io_threads == 1``,
    through the database's shared I/O pool otherwise; as each chunk
    completes it is aligned and filtered on the query thread while the
    remaining decodes keep running.  The final concatenation follows the
    plan's assembly (URI) order, so every executor produces bit-identical
    rows.

    With ``plan.executor == "process"`` the actual Steim decode happens in
    the database's spawn-based worker pool: a worker commits the decoded
    chunk to the shared on-disk chunk store and the parent mmaps it back.
    The I/O threads then only wait on worker receipts and re-hydrate, so
    decode CPU scales past the GIL.  Warm chunks never reach the workers:
    the recycler's single-flight slot serves memory hits and disk-tier
    re-hydrates first, exactly as in thread mode.
    """
    if not plan.uris:
        return Table.empty(plan.schema)
    database = ctx.database
    if plan.shards > 0:
        # Scatter-gather path: the plan is split by the shard layout and
        # executed inside shard worker processes, each owning its own
        # chunk store + recycler; the coordinator merges filtered pieces
        # back in plan (assembly) order, bit-identical to the serial path.
        return database.sharding(plan.shards).execute(plan, ctx)
    if plan.shared:
        # Cooperative path: concurrent scans of this table share chunk
        # materialization, predicate masks and assemblies through the
        # database's scheduler (bit-identical to the private path below).
        return database.shared_scans.execute(plan, ctx)

    use_processes = (
        plan.executor == "process"
        and plan.io_threads > 1
        and len(plan.uris) > 1
    )
    if use_processes:
        from . import chunk_worker

        process_pool = database.process_executor(plan.io_threads)
        store = database.chunk_store

        def load_one(uri: str) -> tuple[Table, float]:
            receipt = process_pool.submit(
                chunk_worker.decode_chunk_to_store, uri, plan.table_name
            )
            _, _, cost = receipt.result()
            database.account_chunk_seconds(cost)
            rehydrated = store.get(uri)
            if rehydrated is None:
                raise ExecutionError(
                    f"decode worker reported {uri!r} done but the chunk "
                    "store has no committed entry"
                )
            return rehydrated[0], cost
    else:

        def load_one(uri: str) -> tuple[Table, float]:
            return database.load_chunk(uri, plan.table_name)

    def decode(uri: str) -> tuple[Table, str, float]:
        return database.recycler.get_or_load(uri, load_one)

    chunk_plan = plan.plan
    uris = plan.uris
    pieces: list[Table | None] = [None] * len(uris)
    # Scheduled fetch order (descending estimated cost); assembly stays in
    # plan order below, so scheduling never changes the result.
    schedule = chunk_plan.fetch_order or tuple(range(len(uris)))

    def ingest(index: int, chunk: Table, outcome: str, cost: float) -> None:
        _record_chunk_outcome(ctx, uris[index], chunk, outcome, cost)
        piece = _align_chunk(chunk, plan.schema)
        if plan.pushed_predicate is not None:
            mask = np.asarray(
                plan.pushed_predicate.evaluate(piece), dtype=np.bool_
            )
            piece = piece.filter(mask)
        pieces[index] = piece

    if plan.io_threads > 1 and len(uris) > 1:
        executor = database.io_executor(plan.io_threads)
        futures = {
            executor.submit(decode, uris[index]): index
            for index in schedule
        }
        try:
            for future in as_completed(futures):
                # Between chunk completions is the natural cancellation
                # point: pending decodes are revoked by the except below.
                ctx.check_cancelled()
                chunk, outcome, cost = future.result()
                ingest(futures[future], chunk, outcome, cost)
        except BaseException:
            # Don't leave doomed decodes occupying the shared pool.
            for pending in futures:
                pending.cancel()
            raise
    else:
        for index in schedule:
            ctx.check_cancelled()
            chunk, outcome, cost = decode(uris[index])
            ingest(index, chunk, outcome, cost)

    return Table.concat_all([piece for piece in pieces if piece is not None])


def _try_in_situ_access(
    plan: algebra.ChunkAccess, ctx: ExecutionContext
) -> Table | None:
    """NoDB-style selective access: decode only the needed time window.

    Requires the database's 'in_situ' strategy, a pushed predicate with
    extractable literal time bounds, and a range-capable loader.  The
    partial result is NOT admitted to the recycler (it does not represent
    the whole chunk); correctness is unaffected — later queries simply load
    what they need themselves.
    """
    database = ctx.database
    if database.chunk_access_strategy != "in_situ":
        return None
    if plan.pushed_predicate is None:
        return None
    time_column = database.in_situ_time_columns.get(plan.table_name)
    if time_column is None:
        return None
    bounds = extract_time_bounds(plan.pushed_predicate, time_column)
    if bounds is None:
        return None
    low, high = bounds
    loaded = database.load_chunk_range(plan.uri, plan.table_name, low, high)
    if loaded is None:
        return None
    table, cost_seconds = loaded
    ctx.stats.chunks_loaded += 1
    ctx.stats.chunk_rows_loaded += table.num_rows
    ctx.stats.chunk_load_seconds += cost_seconds
    result = _align_chunk(table, plan.schema)
    mask = np.asarray(plan.pushed_predicate.evaluate(result), dtype=np.bool_)
    return result.filter(mask)


def _align_chunk(chunk: Table, schema: Schema) -> Table:
    """Project a cached/loaded chunk to the schema the plan expects."""
    return chunk.project(list(schema.names))


# -- row-level operators ---------------------------------------------------------


def _execute_select(plan: algebra.Select, ctx: ExecutionContext) -> Table:
    child = execute_plan(plan.child, ctx)
    mask = np.asarray(plan.predicate.evaluate(child), dtype=np.bool_)
    return child.filter(mask)


def _execute_project(plan: algebra.Project, ctx: ExecutionContext) -> Table:
    child = execute_plan(plan.child, ctx)
    columns = []
    for (_name, expression), fld in zip(plan.outputs, plan.schema):
        values = expression.evaluate(child)
        if fld.dtype is STRING and not isinstance(values, np.ndarray):
            raise ExecutionError("projection produced a non-array value")
        columns.append(Column(fld.dtype, np.asarray(values)))
    return Table(plan.schema, columns)


def _execute_sort(plan: algebra.Sort, ctx: ExecutionContext) -> Table:
    child = execute_plan(plan.child, ctx)
    if child.num_rows == 0:
        return child
    # lexsort sorts by the *last* key first; feed keys in reverse order.
    key_arrays = []
    for key in reversed(plan.keys):
        values = child.column(key.name).values
        if values.dtype == object:
            # Factorize strings into sortable codes.
            order = {v: i for i, v in enumerate(sorted(set(values)))}
            values = np.fromiter(
                (order[v] for v in values), dtype=np.int64, count=len(values)
            )
        if not key.ascending:
            values = -values if values.dtype != np.bool_ else ~values
        key_arrays.append(values)
    indices = np.lexsort(key_arrays)
    return child.take(indices)


def _execute_distinct(plan: algebra.Distinct, ctx: ExecutionContext) -> Table:
    child = execute_plan(plan.child, ctx)
    if child.num_rows == 0:
        return child
    seen: set[tuple] = set()
    keep: list[int] = []
    for i, row in enumerate(child.rows()):
        if row not in seen:
            seen.add(row)
            keep.append(i)
    return child.take(np.asarray(keep, dtype=np.int64))


# -- joins -----------------------------------------------------------------------


def _split_condition_by_schema(
    condition: Expression | None, left: Schema, right: Schema
) -> tuple[list[tuple[str, str]], list[Expression]]:
    """Partition a join condition into (left_col, right_col) equi pairs
    and residual conjuncts, based on schema membership."""
    pairs: list[tuple[str, str]] = []
    residual: list[Expression] = []
    for conjunct in conjuncts(condition):
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if left.has(a) and right.has(b) and not (left.has(b) or right.has(a)):
                pairs.append((a, b))
                continue
            if left.has(b) and right.has(a) and not (left.has(a) or right.has(b)):
                pairs.append((b, a))
                continue
        residual.append(conjunct)
    return pairs, residual


def _execute_join(plan: algebra.Join, ctx: ExecutionContext) -> Table:
    left = execute_plan(plan.left, ctx)
    right = execute_plan(plan.right, ctx)
    ctx.stats.joins_executed += 1

    if plan.condition is None:
        return _cross_product(left, right, ctx)

    pairs, residual = _split_condition_by_schema(
        plan.condition, left.schema, right.schema
    )
    if pairs:
        via_index = _try_join_index(left, right, pairs, ctx)
        if via_index is not None:
            left_rows, right_rows = via_index
            ctx.stats.join_index_hits += 1
        else:
            left_cols = [left.column(a) for a, _ in pairs]
            right_cols = [right.column(b) for _, b in pairs]
            left_codes, right_codes = composite_codes_pair(left_cols, right_cols)
            left_rows, right_rows = equi_join_pairs(left_codes, right_codes)
        joined = left.take(left_rows).zip_columns(right.take(right_rows))
    else:
        joined = _cross_product(left, right, ctx)

    for extra in residual:
        mask = np.asarray(extra.evaluate(joined), dtype=np.bool_)
        joined = joined.filter(mask)
    ctx.stats.rows_joined += joined.num_rows
    return joined


def _cross_product(left: Table, right: Table, ctx: ExecutionContext) -> Table:
    n, m = left.num_rows, right.num_rows
    left_rows = np.repeat(np.arange(n, dtype=np.int64), m)
    right_rows = np.tile(np.arange(m, dtype=np.int64), n)
    result = left.take(left_rows).zip_columns(right.take(right_rows))
    ctx.stats.rows_joined += result.num_rows
    return result


def _try_join_index(
    left: Table,
    right: Table,
    pairs: Sequence[tuple[str, str]],
    ctx: ExecutionContext,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Try to answer the equi join with a prebuilt FK→PK join index.

    Conditions: the database holds a join index whose qualified FK/PK key
    columns are exactly the join keys, and both inputs still carry the
    corresponding hidden rowid columns.
    """
    database = ctx.database
    match = database.find_join_index_for(pairs)
    if match is None:
        return None
    join_index, fk_on_left = match
    fk_rowid = f"{join_index.fk_table}.{HIDDEN_MARKER}rowid"
    pk_rowid = f"{join_index.pk_table}.{HIDDEN_MARKER}rowid"
    fk_side, pk_side = (left, right) if fk_on_left else (right, left)
    if not (fk_side.schema.has(fk_rowid) and pk_side.schema.has(pk_rowid)):
        return None

    fk_rowids = fk_side.column(fk_rowid).values
    pk_rowids = pk_side.column(pk_rowid).values
    if len(fk_rowids) and fk_rowids.min() < 0:
        return None  # synthetic rows (chunk unions) have no stable rowids
    if len(pk_rowids) and pk_rowids.min() < 0:
        return None
    if len(pk_rowids) != len(np.unique(pk_rowids)):
        # The PK side was expanded by an earlier join (one base row appears
        # several times); the positional gather would pick only one copy.
        return None

    # positions: fk base row -> pk base row; translate to *current* row
    # numbers of both inputs.
    positions = join_index.positions
    pk_lookup = np.full(int(positions.max(initial=-1)) + 1, -1, dtype=np.int64)
    pk_in_range = pk_rowids[pk_rowids < len(pk_lookup)]
    pk_lookup[pk_in_range] = np.flatnonzero(pk_rowids < len(pk_lookup))
    matched_pk_base = positions[fk_rowids]
    valid = matched_pk_base >= 0
    matched_current = np.full(len(fk_rowids), -1, dtype=np.int64)
    in_bounds = valid & (matched_pk_base < len(pk_lookup))
    matched_current[in_bounds] = pk_lookup[matched_pk_base[in_bounds]]
    keep = matched_current >= 0
    fk_rows = np.flatnonzero(keep)
    pk_rows = matched_current[keep]
    if fk_on_left:
        return fk_rows, pk_rows
    return pk_rows, fk_rows


# -- aggregation ------------------------------------------------------------------


def _group_codes(table: Table, group_by: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Return (group_id_per_row, representative_row_per_group)."""
    codes = np.zeros(table.num_rows, dtype=np.int64)
    for name in group_by:
        values = table.column(name).values
        if values.dtype == object:
            mapping: dict = {}
            local = np.empty(len(values), dtype=np.int64)
            for i, value in enumerate(values):
                local[i] = mapping.setdefault(value, len(mapping))
            cardinality = max(len(mapping), 1)
        else:
            uniques, local = np.unique(values, return_inverse=True)
            local = local.astype(np.int64, copy=False)
            cardinality = max(len(uniques), 1)
        codes = codes * np.int64(cardinality) + local
    _, first_rows, group_ids = np.unique(codes, return_index=True, return_inverse=True)
    return group_ids.astype(np.int64, copy=False), first_rows.astype(np.int64)


def _aggregate_values(
    function: str, values: np.ndarray | None, group_ids: np.ndarray, num_groups: int
) -> np.ndarray:
    counts = np.bincount(group_ids, minlength=num_groups).astype(np.float64)
    if function == "COUNT":
        return counts.astype(np.int64)
    assert values is not None
    as_float = values.astype(np.float64, copy=False)
    sums = np.bincount(group_ids, weights=as_float, minlength=num_groups)
    if function == "SUM":
        return sums
    if function == "AVG":
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if function == "STD":
        sumsq = np.bincount(
            group_ids, weights=as_float * as_float, minlength=num_groups
        )
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = sums / counts
            variance = sumsq / counts - mean * mean
        return np.sqrt(np.maximum(variance, 0.0))
    if function in ("MIN", "MAX"):
        fill = np.inf if function == "MIN" else -np.inf
        out = np.full(num_groups, fill, dtype=np.float64)
        ufunc = np.minimum if function == "MIN" else np.maximum
        ufunc.at(out, group_ids, as_float)
        return out
    raise ExecutionError(f"unknown aggregate {function!r}")  # pragma: no cover


def _execute_aggregate(plan: algebra.Aggregate, ctx: ExecutionContext) -> Table:
    child = execute_plan(plan.child, ctx)
    if plan.group_by:
        return _grouped_aggregate(plan, child)
    return _scalar_aggregate(plan, child)


def _grouped_aggregate(plan: algebra.Aggregate, child: Table) -> Table:
    if child.num_rows == 0:
        return Table.empty(plan.schema)
    group_ids, first_rows = _group_codes(child, plan.group_by)
    num_groups = len(first_rows)
    columns: list[Column] = [
        child.column(name).take(first_rows) for name in plan.group_by
    ]
    for spec, fld in zip(plan.aggregates, plan.schema.fields[len(plan.group_by) :]):
        values = (
            None if spec.argument is None else np.asarray(spec.argument.evaluate(child))
        )
        raw = _aggregate_values(spec.function, values, group_ids, num_groups)
        columns.append(_cast_aggregate_output(raw, fld.dtype))
    return Table(plan.schema, columns)


def _scalar_aggregate(plan: algebra.Aggregate, child: Table) -> Table:
    columns: list[Column] = []
    empty = child.num_rows == 0
    group_ids = np.zeros(child.num_rows, dtype=np.int64)
    for spec, fld in zip(plan.aggregates, plan.schema.fields):
        if empty:
            if spec.function == "COUNT":
                raw = np.asarray([0], dtype=np.int64)
            elif fld.dtype is FLOAT64:
                raw = np.asarray([np.nan], dtype=np.float64)
            else:
                raw = np.asarray([0], dtype=np.int64)
        else:
            values = (
                None
                if spec.argument is None
                else np.asarray(spec.argument.evaluate(child))
            )
            raw = _aggregate_values(spec.function, values, group_ids, 1)
        columns.append(_cast_aggregate_output(np.asarray(raw), fld.dtype))
    return Table(plan.schema, columns)


def _cast_aggregate_output(raw: np.ndarray, dtype) -> Column:
    if dtype in (INT64, TIMESTAMP):
        return Column(dtype, raw.astype(np.int64))
    if dtype is FLOAT64:
        return Column(dtype, raw.astype(np.float64))
    return Column(dtype, raw)
