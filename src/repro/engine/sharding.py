"""Sharded scatter-gather execution over partitioned chunk stores.

The shared-nothing rung of the scale-out ladder: the stats catalog is
partitioned by hash on ``(station, time-bucket)`` into N shards, each owned
by one long-lived worker process with its own on-disk
:class:`~repro.engine.chunk_store.ChunkStore`, its own budgeted
:class:`~repro.engine.recycler.Recycler` and its own Steim decode kernels
(see :mod:`~repro.engine.shard_worker`).  Stage one still runs once in the
parent — metadata never moves — and the :class:`ScatterGatherCoordinator`
splits the planner's cost-ordered :class:`~repro.engine.chunk_planner.
ChunkPlan` into per-shard sub-plans, dispatches them, and merges the
filtered pieces back in the plan's assembly order, so sharded results are
bit-identical to serial execution by construction.

Placement is *deterministic*: a chunk's shard is the stable hash of its
station and time bucket (day granularity by default), so assignments
survive restarts without persisting a chunk→shard map — the checkpoint
records only ``{shards, bucket_ms}`` and every worker finds its own chunks
spilled in its own store.  Chunks not (yet) described by the F/S metadata
hash on their URI instead, which is equally stable.

One single-worker spawn pool per shard guarantees task→shard affinity (a
shared pool would route tasks to whichever worker is free, scattering each
shard's working set across every process).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import uuid
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from . import shard_worker
from .errors import CatalogError, ExecutionError, QueryCancelled, StorageError
from .table import Table
from ..util.lock_sanitizer import make_lock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import algebra
    from .chunk_planner import ChunkPlan
    from .database import Database
    from .physical import ExecutionContext

__all__ = ["DEFAULT_BUCKET_MS", "ShardLayout", "ScatterGatherCoordinator"]

# Day-granularity time buckets: one mseed file covers one instrument-day in
# the paper's repository layout, so (station, day) is the natural unit.
DEFAULT_BUCKET_MS = 24 * 3600 * 1000


def _stable_hash(text: str) -> int:
    """A process- and restart-stable 64-bit hash (``hash()`` is salted)."""
    return int.from_bytes(hashlib.md5(text.encode("utf-8")).digest()[:8], "big")


class ShardLayout:
    """Deterministic chunk placement by (station, time-bucket) hash.

    The layout indexes the F/S metadata tables (like the prefetcher's
    successor index) to learn each chunk URI's station and earliest start
    time; the index refreshes whenever the registered file count changes.
    Only the parameters — shard count and bucket width — are persisted; the
    assignment function is pure, so a reopened database routes every chunk
    to the same shard that spilled it.
    """

    def __init__(self, shards: int, bucket_ms: int = DEFAULT_BUCKET_MS) -> None:
        if shards < 1:
            raise StorageError("shard layout needs at least one shard")
        if bucket_ms < 1:
            raise StorageError("shard time bucket must be positive")
        self.shards = int(shards)
        self.bucket_ms = int(bucket_ms)
        self._lock = make_lock("ShardLayout._lock")
        # uri -> (station, bucket) partition keys from the metadata tables.
        self._keys: dict[str, tuple[str, int]] = {}
        self._indexed_files = -1

    def shard_of(self, uri: str) -> int:
        """The owning shard of a chunk URI (stable across restarts)."""
        with self._lock:
            key = self._keys.get(uri)
        if key is None:
            # Not described by F/S (ad-hoc URI): hash the URI itself —
            # still deterministic, so placement never flaps.
            return _stable_hash(uri) % self.shards
        station, bucket = key
        return _stable_hash(f"{station}|{bucket}") % self.shards

    def refresh(self, database: "Database") -> None:
        """(Re)build the URI → partition-key index from F and S."""
        try:
            files = database.catalog.table("F").data
            segments = database.catalog.table("S").data
        except CatalogError:
            return  # no metadata tables: URI-hash placement still works
        if files.num_rows == self._indexed_files:
            return
        start_by_file: dict[int, int] = {}
        if segments.num_rows:
            file_ids = segments.column("file_id").values
            starts = segments.column("start_time").values
            for row in range(len(file_ids)):
                file_id = int(file_ids[row])
                start = int(starts[row])
                previous = start_by_file.get(file_id)
                if previous is None or start < previous:
                    start_by_file[file_id] = start
        keys: dict[str, tuple[str, int]] = {}
        for row in range(files.num_rows):
            start = start_by_file.get(int(files.column("file_id")[row]))
            if start is None:
                continue
            keys[files.column("uri")[row]] = (
                str(files.column("station")[row]),
                start // self.bucket_ms,
            )
        with self._lock:
            self._keys = keys
            self._indexed_files = files.num_rows

    def split(
        self, plan: "ChunkPlan"
    ) -> dict[int, tuple[tuple[int, ...], tuple[int, ...]]]:
        """Partition a chunk plan; returns shard → (assembly, fetch) indexes.

        Both tuples hold *global* indexes into ``plan.chunks`` restricted
        to the shard: the first in the plan's assembly order, the second in
        its scheduled fetch order, so each shard preserves the global
        discipline within its slice.
        """
        owners = [self.shard_of(chunk.uri) for chunk in plan.chunks]
        assembly: dict[int, list[int]] = {}
        for index, owner in enumerate(owners):
            assembly.setdefault(owner, []).append(index)
        schedule = plan.fetch_order or tuple(range(len(plan.chunks)))
        fetch: dict[int, list[int]] = {owner: [] for owner in assembly}
        for index in schedule:
            fetch[owners[index]].append(index)
        return {
            owner: (tuple(assembly[owner]), tuple(fetch[owner]))
            for owner in assembly
        }

    def to_json(self) -> dict[str, int]:
        """The checkpointable parameters (placement itself is pure)."""
        return {"shards": self.shards, "bucket_ms": self.bucket_ms}

    @classmethod
    def from_json(cls, payload: object) -> "ShardLayout | None":
        """Parse a checkpointed layout; None for anything malformed."""
        if not isinstance(payload, dict):
            return None
        try:
            shards = int(payload["shards"])
            bucket_ms = int(payload.get("bucket_ms", DEFAULT_BUCKET_MS))
        except (KeyError, TypeError, ValueError):
            return None
        if shards < 1 or bucket_ms < 1:
            return None
        return cls(shards, bucket_ms)


class ScatterGatherCoordinator:
    """Parent-side dispatcher: split, scatter, cancel, gather, merge.

    Owns one single-worker spawn pool per shard (created lazily, reset on
    loader change or worker crash) and the accounting bridge: workers ship
    per-chunk outcome receipts and worker-computed column ranges, which the
    coordinator folds into the parent's ``ExecStats`` and chunk-statistics
    catalog — the parent never materializes a sharded chunk itself.
    """

    # How often the gather loop polls for cancellation (seconds).
    _POLL_SECONDS = 0.05

    # Machine-checked (repro analyze, lock-discipline / blocking-under-lock):
    # scatter-gather counters are snapshot under the stats lock, which must
    # stay cheap — no pool work may run while it is held.
    _GUARDED = {
        "_stats_lock": (
            "queries",
            "subplans",
            "chunks_routed",
            "worker_crashes",
            "cancel_broadcasts",
        )
    }

    def __init__(
        self,
        database: "Database",
        shards: int,
        bucket_ms: int = DEFAULT_BUCKET_MS,
    ) -> None:
        self.database = database
        self.shards = int(shards)
        self.layout = ShardLayout(self.shards, bucket_ms)
        self.root = os.path.join(database.workdir, "shards")
        self._cancel_dir = os.path.join(self.root, ".cancel")
        self._pools: dict[int, ProcessPoolExecutor] = {}
        self._pool_lock = make_lock("ScatterGatherCoordinator._pool_lock")
        self._stats_lock = make_lock("ScatterGatherCoordinator._stats_lock")
        self._worker_kernels: dict[int, str] = {}
        # Bumped by Database.sharding() when the shard count changes, so
        # the façade can invalidate layout-dependent bookkeeping.
        self.layout_epoch = 1
        self.queries = 0
        self.subplans = 0
        self.chunks_routed = 0
        self.worker_crashes = 0
        self.cancel_broadcasts = 0

    # -- worker pools ------------------------------------------------------

    def shard_store_root(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard-{shard_id:02d}", "chunks")

    def _pool(self, shard_id: int) -> ProcessPoolExecutor:
        loader = self.database.chunk_loader
        if loader is None:
            raise ExecutionError(
                "sharded execution needs a chunk loader; "
                "register a repository first"
            )
        with self._pool_lock:
            pool = self._pools.get(shard_id)
            if pool is None:
                from ..mseed import steim_kernels

                budget = max(
                    1, self.database.recycler.budget_bytes // self.shards
                )
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=shard_worker.initialize_shard_worker,
                    initargs=(
                        shard_id,
                        loader,
                        self.shard_store_root(shard_id),
                        budget,
                        steim_kernels.active_kernel(),
                        self.database.recycler.spill_on_evict,
                    ),
                )
                self._pools[shard_id] = pool
            return pool

    def _reset_pool(self, shard_id: int) -> None:
        with self._pool_lock:
            pool = self._pools.pop(shard_id, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def reset_pools(self) -> None:
        """Retire every worker (the loader snapshot they hold is stale)."""
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=False, cancel_futures=True)

    def warm_pools(self) -> dict[int, str]:
        """Spawn every shard worker up front; returns their active kernels."""
        ready = {}
        futures = {
            self._pool(shard_id).submit(shard_worker.shard_worker_ready):
                shard_id
            for shard_id in range(self.shards)
        }
        for future in futures:
            shard_id, kernel = future.result()
            ready[shard_id] = kernel
        with self._stats_lock:
            self._worker_kernels.update(ready)
        return ready

    # -- execution ---------------------------------------------------------

    def execute(
        self, plan: "algebra.ParallelChunkScan", ctx: "ExecutionContext"
    ) -> Table:
        """Run one planned chunk scan across the shards and merge the rows."""
        self.layout.refresh(self.database)
        chunk_plan = plan.plan
        split = self.layout.split(chunk_plan)
        cancel_path = self._make_cancel_path() if ctx.cancel is not None else None
        futures: dict[object, tuple[int, tuple[int, ...]]] = {}
        failures: list[tuple[int, BaseException]] = []
        for shard_id, (assembly, fetch) in sorted(split.items()):
            local_of = {global_i: local_i
                        for local_i, global_i in enumerate(assembly)}
            task = shard_worker.ShardTask(
                table_name=plan.table_name,
                uris=tuple(chunk_plan.uris[i] for i in assembly),
                fetch_order=tuple(local_of[i] for i in fetch),
                column_names=tuple(plan.schema.names),
                predicate=plan.pushed_predicate,
                cancel_path=cancel_path,
            )
            try:
                future = self._pool(shard_id).submit(
                    shard_worker.execute_shard_plan, task
                )
            except BrokenProcessPool as exc:
                # A worker that died *idle* (between queries) surfaces at
                # submit time; fold it into the same clean-failure path as
                # a mid-plan death.
                failures.append((shard_id, exc))
                continue
            futures[future] = (shard_id, assembly)
        ctx.stats.shard_subplans += len(futures)
        with self._stats_lock:
            self.queries += 1
            self.subplans += len(futures)
            self.chunks_routed += len(chunk_plan.chunks)

        pieces: list[Table | None] = [None] * len(chunk_plan.chunks)
        broadcast = False
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(
                    pending,
                    timeout=self._POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                if (
                    not broadcast
                    and cancel_path is not None
                    and ctx.cancel is not None
                    and ctx.cancel.cancelled
                ):
                    broadcast = self._broadcast_cancel(cancel_path)
                for future in done:
                    shard_id, assembly = futures[future]
                    try:
                        result = future.result()
                    except BaseException as exc:
                        failures.append((shard_id, exc))
                        # Stop the healthy shards: their work is doomed.
                        if cancel_path is not None and not broadcast:
                            broadcast = self._broadcast_cancel(cancel_path)
                        continue
                    self._ingest(result, assembly, ctx, pieces)
        finally:
            if cancel_path is not None:
                try:
                    os.unlink(cancel_path)
                except OSError:
                    pass
        if failures:
            self._raise_failures(failures, ctx)
        ctx.check_cancelled()
        merged = [piece for piece in pieces if piece is not None]
        if not merged:
            return Table.empty(plan.schema)
        return Table.concat_all(merged)

    def warm_chunk(self, uri: str, table_name: str) -> None:
        """Prefetch one chunk into its owning shard's recycler."""
        self.layout.refresh(self.database)
        shard_id = self.layout.shard_of(uri)
        receipt = self._pool(shard_id).submit(
            shard_worker.warm_chunk, uri, table_name
        ).result()
        self._adopt_receipt(receipt)

    # -- gathering ---------------------------------------------------------

    def _ingest(
        self,
        result: shard_worker.ShardResult,
        assembly: tuple[int, ...],
        ctx: "ExecutionContext",
        pieces: list,
    ) -> None:
        for receipt in result.receipts:
            _, outcome, num_rows, cost, _ = receipt
            if outcome == "loaded":
                ctx.stats.chunks_loaded += 1
                ctx.stats.chunk_rows_loaded += num_rows
                ctx.stats.chunk_load_seconds += cost
                self.database.account_chunk_seconds(cost)
            elif outcome == "rehydrated":
                ctx.stats.chunks_rehydrated += 1
            else:  # "hit" / "coalesced" in the shard's own recycler
                ctx.stats.chunks_from_cache += 1
            self._adopt_receipt(receipt)
        ctx.stats.chunks_from_shards += len(result.pieces)
        with self._stats_lock:
            self._worker_kernels[result.shard_id] = result.kernel
        for local_index, global_index in enumerate(assembly):
            pieces[global_index] = result.pieces[local_index]

    def _adopt_receipt(
        self, receipt: tuple[str, str, int, float, dict | None]
    ) -> None:
        """Fold a worker-computed stats receipt into the parent catalog.

        Shard workers are the only place the full chunk exists, so exact
        column ranges travel back with the receipt and value-predicate
        pruning keeps working for subsequent (parent-planned) queries.
        """
        uri, outcome, num_rows, cost, ranges = receipt
        if ranges:
            self.database.chunk_stats.adopt_persisted(
                uri,
                ranges,
                num_rows=num_rows,
                loading_cost=cost if outcome == "loaded" else None,
            )

    def _raise_failures(
        self, failures: list[tuple[int, BaseException]], ctx: "ExecutionContext"
    ) -> None:
        for shard_id, exc in failures:
            if isinstance(exc, BrokenProcessPool):
                # The pool is unusable; drop it so the next query respawns
                # a fresh worker (its store-backed cache survives).
                self._reset_pool(shard_id)
                with self._stats_lock:
                    self.worker_crashes += 1
        if ctx.cancel is not None and ctx.cancel.cancelled:
            for _, exc in failures:
                if isinstance(exc, QueryCancelled):
                    raise exc
        for shard_id, exc in failures:
            if isinstance(exc, BrokenProcessPool):
                raise ExecutionError(
                    f"shard {shard_id} worker died mid-plan; its pool was "
                    "reset and the next query will respawn it"
                ) from exc
        raise failures[0][1]

    # -- cancellation ------------------------------------------------------

    def _make_cancel_path(self) -> str:
        os.makedirs(self._cancel_dir, exist_ok=True)
        return os.path.join(self._cancel_dir, uuid.uuid4().hex)

    def _broadcast_cancel(self, cancel_path: str) -> bool:
        """Fan the parent's cancellation out to every shard worker."""
        try:
            with open(cancel_path, "w", encoding="utf-8"):
                pass
        except OSError:
            return False
        with self._stats_lock:
            self.cancel_broadcasts += 1
        return True

    # -- introspection / lifecycle -----------------------------------------

    def worker_kernels(self) -> dict[int, str]:
        """Each spawned shard's active decode kernel (satellite of
        ``planner_stats()['decode_kernel']``)."""
        with self._stats_lock:
            return dict(self._worker_kernels)

    def stats_snapshot(self) -> dict[str, object]:
        with self._stats_lock:
            return {
                "shards": self.shards,
                "bucket_ms": self.layout.bucket_ms,
                "epoch": self.layout_epoch,
                "queries": self.queries,
                "subplans": self.subplans,
                "chunks_routed": self.chunks_routed,
                "worker_crashes": self.worker_crashes,
                "cancel_broadcasts": self.cancel_broadcasts,
                "worker_kernels": {
                    str(shard): kernel
                    for shard, kernel in sorted(self._worker_kernels.items())
                },
            }

    def close(self) -> None:
        with self._pool_lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.shutdown(wait=True, cancel_futures=True)
