"""Process-pool decode workers for the GIL-free stage two.

CPython's GIL caps the thread-parallel stage-two pipeline at one core of
decode throughput.  This module is the worker side of the escape hatch:
each worker process holds a pickled snapshot of the chunk loader and its
own handle on the shared on-disk :class:`~repro.engine.chunk_store.ChunkStore`.
A decode task Steim-decodes one chunk, qualifies it exactly like
:meth:`Database.load_chunk` would, and *commits it to the store* — only the
tiny ``(uri, rows, seconds)`` receipt crosses the process boundary.  The
parent then re-hydrates the chunk as zero-copy mmap-backed columns, so the
decoded samples are shipped through the file system, not through pickle.

Workers are initialized once per process (``ProcessPoolExecutor``'s
``initializer``); :func:`decode_chunk_to_store` is the only task the parent
submits.  Everything here must stay importable by a spawn-context child.
"""

from __future__ import annotations

import time

from .database import qualify_chunk
from .errors import ExecutionError

__all__ = ["initialize_worker", "worker_ready", "decode_chunk_to_store"]

_LOADER = None
_STORE = None


def initialize_worker(loader, store_root: str) -> None:
    """Install the loader snapshot and open the shared store (per process)."""
    global _LOADER, _STORE
    from .chunk_store import ChunkStore

    _LOADER = loader
    _STORE = ChunkStore(store_root)


def worker_ready(_token: int = 0) -> bool:
    """No-op task used to force worker spawn (pool warm-up)."""
    return _LOADER is not None and _STORE is not None


def decode_chunk_to_store(uri: str, table_name: str) -> tuple[str, int, float]:
    """Decode one chunk into the shared store; returns (uri, rows, seconds).

    Skips the decode when a committed entry already exists (another worker
    or an earlier run got there first) — the store's loader-purity contract
    makes the existing entry equivalent.
    """
    if _LOADER is None or _STORE is None:
        raise ExecutionError(
            "decode worker used before initialize_worker ran"
        )
    if uri in _STORE:  # manifest probe sees other workers' commits too
        return uri, 0, 0.0
    started = time.perf_counter()
    raw = _LOADER.load(uri, table_name)
    elapsed = time.perf_counter() - started
    chunk = qualify_chunk(raw, table_name)
    _STORE.put(uri, chunk, elapsed, table_name=table_name)
    return uri, chunk.num_rows, elapsed
