"""Vectorized equi-join kernels.

The engine's hash join is implemented sort-based under the hood: both key
sides are *factorized* into dense int64 codes (consistently across sides),
the build side is sorted, and probes find their match ranges with binary
search.  All multi-match expansion happens with NumPy primitives, so joining
a multi-million-row actual-data table against metadata never loops in
Python — the property that keeps our substrate faithful to MonetDB's bulk
processing model.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .column import Column
from .errors import ExecutionError

__all__ = ["factorize_pair", "composite_codes_pair", "equi_join_pairs"]


def factorize_pair(
    left: np.ndarray, right: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Encode two key arrays into consistent dense codes.

    Returns ``(left_codes, right_codes, cardinality)``.  Values appearing in
    either array get the same code in both outputs.
    """
    if left.dtype == object or right.dtype == object:
        mapping: dict[Any, int] = {}
        left_codes = np.empty(len(left), dtype=np.int64)
        for i, value in enumerate(left):
            left_codes[i] = mapping.setdefault(value, len(mapping))
        right_codes = np.empty(len(right), dtype=np.int64)
        for i, value in enumerate(right):
            right_codes[i] = mapping.setdefault(value, len(mapping))
        return left_codes, right_codes, max(len(mapping), 1)
    merged = np.concatenate([left, right])
    uniques, inverse = np.unique(merged, return_inverse=True)
    inverse = inverse.astype(np.int64, copy=False)
    return inverse[: len(left)], inverse[len(left) :], max(len(uniques), 1)


def composite_codes_pair(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Consistently encode multi-column keys on both join sides."""
    if len(left_columns) != len(right_columns):
        raise ExecutionError("join key arity mismatch")
    if not left_columns:
        raise ExecutionError("equi join requires at least one key pair")
    left_rows = len(left_columns[0])
    right_rows = len(right_columns[0])
    left_codes = np.zeros(left_rows, dtype=np.int64)
    right_codes = np.zeros(right_rows, dtype=np.int64)
    for left_col, right_col in zip(left_columns, right_columns):
        l_part, r_part, cardinality = factorize_pair(
            left_col.values, right_col.values
        )
        left_codes = left_codes * np.int64(cardinality) + l_part
        right_codes = right_codes * np.int64(cardinality) + r_part
    return left_codes, right_codes


def equi_join_pairs(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (left_row, right_row) index pairs with equal codes.

    The smaller side is sorted (the "build" side); the larger side probes
    with ``searchsorted``.  Multi-match expansion uses repeat/cumsum only.
    """
    if len(left_codes) <= len(right_codes):
        build_codes, probe_codes = left_codes, right_codes
        build_is_left = True
    else:
        build_codes, probe_codes = right_codes, left_codes
        build_is_left = False

    order = np.argsort(build_codes, kind="stable")
    sorted_build = build_codes[order]
    lo = np.searchsorted(sorted_build, probe_codes, side="left")
    hi = np.searchsorted(sorted_build, probe_codes, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()

    probe_rows = np.repeat(np.arange(len(probe_codes), dtype=np.int64), counts)
    # Build-side offsets: for each expanded slot, its position in the sorted
    # build array = lo[probe_row] + (slot index within that probe's run).
    starts = np.repeat(lo, counts)
    run_start_positions = np.concatenate(([0], np.cumsum(counts)[:-1]))
    within = np.arange(total, dtype=np.int64) - np.repeat(
        run_start_positions, counts
    )
    build_rows = order[starts + within]

    if build_is_left:
        return build_rows, probe_rows
    return probe_rows, build_rows
