"""The Recycler: a budgeted, thread-safe cache for lazily loaded chunks.

The paper reuses MonetDB's Recycler [Ivanova et al., SIGMOD'09] to cache the
actual data ingested by ``chunk-access`` operators so that subsequent queries
can use the cheap ``cache-scan`` access path instead (Sections III & V).

This module implements that component with two replacement policies:

* ``lru`` — the plain least-recently-used policy of the original Recycler;
* ``cost_aware`` — the Section VIII ("Smarter Caching") extension, which
  scores entries by ``loading_cost × access_frequency / size`` and evicts
  the lowest score first.

Entries are keyed by chunk URI and hold the decoded :class:`Table` for that
chunk, plus the observed loading cost used by the cost-aware policy.

Concurrency model (the concurrent-serving work):

* every entry/stats/byte-accounting mutation happens under one internal
  mutex, so :class:`RecyclerStats` and ``bytes_cached`` stay exact no
  matter how many threads hammer the cache;
* chunk *loading* is coordinated by lock-striped single-flight slots:
  concurrent :meth:`get_or_load` calls for the same URI wait on the one
  thread that is decoding it (each chunk is decoded exactly once), while
  loads of different URIs proceed fully in parallel.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from .errors import StorageError
from .table import Table

__all__ = ["RecyclerEntry", "RecyclerStats", "Recycler"]

# How many independent single-flight stripes coordinate in-flight loads.
# URIs hash onto stripes; loads of URIs on different stripes never contend.
STRIPE_COUNT = 16


@dataclass
class RecyclerEntry:
    """One cached chunk."""

    uri: str
    table: Table
    loading_cost: float
    nbytes: int
    access_count: int = 1
    last_access: float = field(default_factory=time.monotonic)

    def score(self) -> float:
        """Cost-aware benefit density: cheap-to-keep, expensive-to-reload wins."""
        return (self.loading_cost * self.access_count) / max(self.nbytes, 1)


@dataclass
class RecyclerStats:
    """Counters for experiments (cache effectiveness, Section VI-C hot runs).

    ``coalesced`` counts :meth:`Recycler.get_or_load` calls that piggybacked
    on another thread's in-flight load of the same URI instead of decoding
    the chunk themselves.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_evicted: int = 0
    coalesced: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.bytes_evicted = 0
        self.coalesced = 0


class _InflightLoad:
    """Single-flight slot: the loading thread publishes here, waiters block."""

    __slots__ = ("event", "table", "cost", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.table: Table | None = None
        self.cost = 0.0
        self.error: BaseException | None = None


class Recycler:
    """Size-budgeted chunk cache with pluggable replacement policy.

    The budget mirrors the paper's workload experiments, which "limit the
    size of the recycler cache holding the lazily loaded files to the size
    of main memory" (Section VI-E).

    All public methods are safe to call from multiple threads.
    """

    POLICIES = ("lru", "cost_aware")

    def __init__(
        self, budget_bytes: int = 1 << 30, policy: str = "lru"
    ) -> None:
        if budget_bytes <= 0:
            raise StorageError("recycler budget must be positive")
        if policy not in self.POLICIES:
            raise StorageError(
                f"unknown recycler policy {policy!r}; choose from {self.POLICIES}"
            )
        self.budget_bytes = budget_bytes
        self.policy = policy
        self.stats = RecyclerStats()
        self._entries: dict[str, RecyclerEntry] = {}
        self._bytes_cached = 0
        # One mutex guards entries + stats + byte accounting (exactness);
        # striped locks guard only the single-flight load coordination, so
        # waiting on one URI's decode never blocks another URI's.
        self._lock = threading.RLock()
        self._stripes = [threading.Lock() for _ in range(STRIPE_COUNT)]
        self._inflight: list[dict[str, _InflightLoad]] = [
            {} for _ in range(STRIPE_COUNT)
        ]

    def _stripe_of(self, uri: str) -> tuple[threading.Lock, dict[str, _InflightLoad]]:
        index = hash(uri) % STRIPE_COUNT
        return self._stripes[index], self._inflight[index]

    # -- introspection -----------------------------------------------------

    @property
    def bytes_cached(self) -> int:
        with self._lock:
            return self._bytes_cached

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, uri: str) -> bool:
        with self._lock:
            return uri in self._entries

    def cached_uris(self) -> set[str]:
        """The set C of cached chunks used by rewrite rule (1)."""
        with self._lock:
            return set(self._entries)

    def entries(self) -> list[RecyclerEntry]:
        """A snapshot of the current entries (stable under concurrent use)."""
        with self._lock:
            return list(self._entries.values())

    # -- cache protocol ------------------------------------------------------

    def get(self, uri: str) -> Table | None:
        """Cache-scan: the chunk's table, or None on a miss."""
        with self._lock:
            entry = self._entries.get(uri)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.access_count += 1
            entry.last_access = time.monotonic()
            self.stats.hits += 1
            return entry.table

    def _peek(self, uri: str) -> Table | None:
        """Like :meth:`get` but records only hits, never a miss.

        Used by :meth:`get_or_load`, whose lookups are provisional: each
        call contributes exactly one of hit / miss / coalesced to the
        stats, decided only once the outcome is known.
        """
        with self._lock:
            entry = self._entries.get(uri)
            if entry is None:
                return None
            entry.access_count += 1
            entry.last_access = time.monotonic()
            self.stats.hits += 1
            return entry.table

    def put(self, uri: str, table: Table, loading_cost: float) -> bool:
        """Admit a freshly loaded chunk; returns False if it cannot fit.

        A chunk larger than the whole budget is never admitted (it would
        evict everything for a single-use entry).
        """
        nbytes = table.nbytes
        if nbytes > self.budget_bytes:
            return False
        with self._lock:
            existing = self._entries.pop(uri, None)
            if existing is not None:
                self._bytes_cached -= existing.nbytes
            self._evict_until_fits(nbytes)
            self._entries[uri] = RecyclerEntry(
                uri=uri, table=table, loading_cost=loading_cost, nbytes=nbytes
            )
            self._bytes_cached += nbytes
            self.stats.insertions += 1
        return True

    def get_or_load(
        self, uri: str, loader: Callable[[str], tuple[Table, float]]
    ) -> tuple[Table, str, float]:
        """The single-flight chunk-access path.

        Returns ``(table, outcome, loading_cost)`` with outcome one of:

        * ``"hit"`` — the chunk was already cached;
        * ``"loaded"`` — this call decoded the chunk (and admitted it);
        * ``"coalesced"`` — another thread was already decoding the same
          URI; this call waited for that result instead of loading twice.

        ``loader(uri)`` must return ``(table, seconds)``; it runs outside
        every recycler lock so independent loads overlap freely.  A loader
        failure is propagated to the owner and every coalesced waiter.

        Each call counts exactly one of hit / miss / coalesced in the
        stats, so the ratios stay exact under contention.
        """
        cached = self._peek(uri)
        if cached is not None:
            return cached, "hit", 0.0

        stripe_lock, inflight = self._stripe_of(uri)
        with stripe_lock:
            flight = inflight.get(uri)
            if flight is None:
                # Re-check the cache before taking ownership: a flight that
                # completed between our first probe and this point has
                # already admitted the table, and decoding again would break
                # the exactly-once guarantee.  (Lock order stripe → global
                # is uniform across the class, so this nesting is safe.)
                cached = self._peek(uri)
                if cached is not None:
                    return cached, "hit", 0.0
                flight = _InflightLoad()
                inflight[uri] = flight
                with self._lock:
                    self.stats.misses += 1
                is_owner = True
            else:
                is_owner = False

        if not is_owner:
            flight.event.wait()
            if flight.error is not None or flight.table is None:
                raise flight.error or StorageError(
                    f"in-flight load of {uri!r} produced no table"
                )
            with self._lock:
                self.stats.coalesced += 1
            return flight.table, "coalesced", flight.cost

        try:
            table, cost = loader(uri)
            flight.table = table
            flight.cost = cost
            self.put(uri, table, cost)
            return table, "loaded", cost
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with stripe_lock:
                inflight.pop(uri, None)
            flight.event.set()

    def invalidate(self, uri: str) -> None:
        with self._lock:
            entry = self._entries.pop(uri, None)
            if entry is not None:
                self._bytes_cached -= entry.nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes_cached = 0

    # -- replacement ---------------------------------------------------------

    def _evict_until_fits(self, incoming: int) -> None:
        # Caller holds self._lock.
        while self._entries and self._bytes_cached + incoming > self.budget_bytes:
            victim = self._choose_victim()
            entry = self._entries.pop(victim)
            self._bytes_cached -= entry.nbytes
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.nbytes

    def _choose_victim(self) -> str:
        if self.policy == "lru":
            return min(self._entries.values(), key=lambda e: e.last_access).uri
        return min(self._entries.values(), key=lambda e: e.score()).uri
