"""The Recycler: a budgeted cache for lazily loaded chunks.

The paper reuses MonetDB's Recycler [Ivanova et al., SIGMOD'09] to cache the
actual data ingested by ``chunk-access`` operators so that subsequent queries
can use the cheap ``cache-scan`` access path instead (Sections III & V).

This module implements that component with two replacement policies:

* ``lru`` — the plain least-recently-used policy of the original Recycler;
* ``cost_aware`` — the Section VIII ("Smarter Caching") extension, which
  scores entries by ``loading_cost × access_frequency / size`` and evicts
  the lowest score first.

Entries are keyed by chunk URI and hold the decoded :class:`Table` for that
chunk, plus the observed loading cost used by the cost-aware policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from .errors import StorageError
from .table import Table

__all__ = ["RecyclerEntry", "RecyclerStats", "Recycler"]


@dataclass
class RecyclerEntry:
    """One cached chunk."""

    uri: str
    table: Table
    loading_cost: float
    nbytes: int
    access_count: int = 1
    last_access: float = field(default_factory=time.monotonic)

    def score(self) -> float:
        """Cost-aware benefit density: cheap-to-keep, expensive-to-reload wins."""
        return (self.loading_cost * self.access_count) / max(self.nbytes, 1)


@dataclass
class RecyclerStats:
    """Counters for experiments (cache effectiveness, Section VI-C hot runs)."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_evicted: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.bytes_evicted = 0


class Recycler:
    """Size-budgeted chunk cache with pluggable replacement policy.

    The budget mirrors the paper's workload experiments, which "limit the
    size of the recycler cache holding the lazily loaded files to the size
    of main memory" (Section VI-E).
    """

    POLICIES = ("lru", "cost_aware")

    def __init__(
        self, budget_bytes: int = 1 << 30, policy: str = "lru"
    ) -> None:
        if budget_bytes <= 0:
            raise StorageError("recycler budget must be positive")
        if policy not in self.POLICIES:
            raise StorageError(
                f"unknown recycler policy {policy!r}; choose from {self.POLICIES}"
            )
        self.budget_bytes = budget_bytes
        self.policy = policy
        self.stats = RecyclerStats()
        self._entries: dict[str, RecyclerEntry] = {}
        self._bytes_cached = 0

    # -- introspection -----------------------------------------------------

    @property
    def bytes_cached(self) -> int:
        return self._bytes_cached

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, uri: str) -> bool:
        return uri in self._entries

    def cached_uris(self) -> set[str]:
        """The set C of cached chunks used by rewrite rule (1)."""
        return set(self._entries)

    def entries(self) -> Iterator[RecyclerEntry]:
        return iter(self._entries.values())

    # -- cache protocol ------------------------------------------------------

    def get(self, uri: str) -> Table | None:
        """Cache-scan: the chunk's table, or None on a miss."""
        entry = self._entries.get(uri)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.access_count += 1
        entry.last_access = time.monotonic()
        self.stats.hits += 1
        return entry.table

    def put(self, uri: str, table: Table, loading_cost: float) -> bool:
        """Admit a freshly loaded chunk; returns False if it cannot fit.

        A chunk larger than the whole budget is never admitted (it would
        evict everything for a single-use entry).
        """
        nbytes = table.nbytes
        if nbytes > self.budget_bytes:
            return False
        existing = self._entries.pop(uri, None)
        if existing is not None:
            self._bytes_cached -= existing.nbytes
        self._evict_until_fits(nbytes)
        self._entries[uri] = RecyclerEntry(
            uri=uri, table=table, loading_cost=loading_cost, nbytes=nbytes
        )
        self._bytes_cached += nbytes
        self.stats.insertions += 1
        return True

    def invalidate(self, uri: str) -> None:
        entry = self._entries.pop(uri, None)
        if entry is not None:
            self._bytes_cached -= entry.nbytes

    def clear(self) -> None:
        self._entries.clear()
        self._bytes_cached = 0

    # -- replacement ---------------------------------------------------------

    def _evict_until_fits(self, incoming: int) -> None:
        while self._entries and self._bytes_cached + incoming > self.budget_bytes:
            victim = self._choose_victim()
            entry = self._entries.pop(victim)
            self._bytes_cached -= entry.nbytes
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.nbytes

    def _choose_victim(self) -> str:
        if self.policy == "lru":
            return min(self._entries.values(), key=lambda e: e.last_access).uri
        return min(self._entries.values(), key=lambda e: e.score()).uri
