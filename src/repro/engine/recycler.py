"""The Recycler: a tiered, budgeted, thread-safe cache for loaded chunks.

The paper reuses MonetDB's Recycler [Ivanova et al., SIGMOD'09] to cache the
actual data ingested by ``chunk-access`` operators so that subsequent queries
can use the cheap ``cache-scan`` access path instead (Sections III & V).

This module implements that component with two replacement policies:

* ``lru`` — the plain least-recently-used policy of the original Recycler;
* ``cost_aware`` — the Section VIII ("Smarter Caching") extension, which
  scores entries by ``loading_cost × access_frequency / size`` and evicts
  the lowest score first.

Entries are keyed by chunk URI and hold the decoded :class:`Table` for that
chunk, plus the observed loading cost used by the cost-aware policy.

Tiering (the persistent-recycler work): the in-memory budgeted tier is
optionally backed by a :class:`~repro.engine.chunk_store.ChunkStore`.
Eviction *spills* the decoded chunk to the store instead of discarding it;
a later miss in RAM *re-hydrates* the chunk from the store as zero-copy
mmap-backed columns — far cheaper than a Steim re-decode — and a database
reopened over the same directory comes back warm.  Byte accounting is
two-dimensional: ``bytes_cached`` counts only heap-resident bytes against
the budget, while ``bytes_mapped`` reports the mmap-backed volume whose
pages are owned by the store files (never double-counted).

Concurrency model (the concurrent-serving work):

* every entry/stats/byte-accounting mutation happens under one internal
  mutex, so :class:`RecyclerStats` and ``bytes_cached`` stay exact no
  matter how many threads hammer the cache;
* chunk *loading* is coordinated by lock-striped single-flight slots:
  concurrent :meth:`get_or_load` calls for the same URI wait on the one
  thread that is decoding (or re-hydrating) it — each chunk is decoded
  exactly once across both tiers — while loads of different URIs proceed
  fully in parallel;
* spills run outside the entry mutex (disk writes never stall the cache),
  after the victim has already left the memory tier.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from .errors import StorageError
from .table import Table
from ..util.lock_sanitizer import Lockable, make_lock, make_rlock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chunk_store import ChunkStore

__all__ = ["RecyclerEntry", "RecyclerStats", "Recycler"]

# How many independent single-flight stripes coordinate in-flight loads.
# URIs hash onto stripes; loads of URIs on different stripes never contend.
STRIPE_COUNT = 16


@dataclass
class RecyclerEntry:
    """One cached chunk.

    ``nbytes`` is the logical (decoded) size; ``resident_nbytes`` is the
    heap share of it — 0 for a fully mmap-backed re-hydrated chunk, whose
    pages belong to the chunk-store file.
    """

    uri: str
    table: Table
    loading_cost: float
    nbytes: int
    resident_nbytes: int = -1
    access_count: int = 1
    last_access: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if self.resident_nbytes < 0:
            self.resident_nbytes = self.nbytes

    def score(self) -> float:
        """Cost-aware benefit density: cheap-to-keep, expensive-to-reload wins."""
        return (self.loading_cost * self.access_count) / max(self.nbytes, 1)


@dataclass
class RecyclerStats:
    """Counters for experiments (cache effectiveness, Section VI-C hot runs).

    ``coalesced`` counts :meth:`Recycler.get_or_load` calls that piggybacked
    on another thread's in-flight load of the same URI instead of decoding
    the chunk themselves.  ``rehydrates`` counts owner loads satisfied from
    the disk tier (mmap re-hydrate) instead of the loader; ``spills`` counts
    evicted entries persisted to the disk tier.
    """

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_evicted: int = 0
    coalesced: int = 0
    rehydrates: int = 0
    spills: int = 0
    bytes_spilled: int = 0
    spill_errors: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.bytes_evicted = 0
        self.coalesced = 0
        self.rehydrates = 0
        self.spills = 0
        self.bytes_spilled = 0
        self.spill_errors = 0


class _InflightLoad:
    """Single-flight slot: the loading thread publishes here, waiters block."""

    __slots__ = ("event", "table", "cost", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.table: Table | None = None
        self.cost = 0.0
        self.error: BaseException | None = None


class Recycler:
    """Size-budgeted chunk cache with pluggable replacement policy.

    The budget mirrors the paper's workload experiments, which "limit the
    size of the recycler cache holding the lazily loaded files to the size
    of main memory" (Section VI-E).  Only heap-resident bytes count against
    it; mmap-backed re-hydrated chunks ride for free (their pages are the
    store's).

    All public methods are safe to call from multiple threads.
    """

    POLICIES = ("lru", "cost_aware")
    # Machine-checked (repro analyze, lock-discipline): the exact byte
    # accounting only holds if every write happens under the entry mutex.
    _GUARDED = {"_lock": ("_bytes_cached", "_bytes_mapped")}

    def __init__(
        self,
        budget_bytes: int = 1 << 30,
        policy: str = "lru",
        store: "ChunkStore | None" = None,
        spill_on_evict: bool = True,
    ) -> None:
        if budget_bytes <= 0:
            raise StorageError("recycler budget must be positive")
        if policy not in self.POLICIES:
            raise StorageError(
                f"unknown recycler policy {policy!r}; choose from {self.POLICIES}"
            )
        self.budget_bytes = budget_bytes
        self.policy = policy
        self.store = store
        self.spill_on_evict = spill_on_evict
        self.stats = RecyclerStats()
        self._entries: dict[str, RecyclerEntry] = {}
        self._bytes_cached = 0
        self._bytes_mapped = 0
        # Spill-vs-invalidate coordination: URIs whose spill is pending or
        # in progress, and those invalidated while it was.  A chunk that is
        # invalidated mid-spill must not be resurrected by the spill.
        self._spilling: set[str] = set()
        self._spill_invalidated: set[str] = set()
        # One mutex guards entries + stats + byte accounting (exactness);
        # striped locks guard only the single-flight load coordination, so
        # waiting on one URI's decode never blocks another URI's.
        self._lock = make_rlock("Recycler._lock")
        self._stripes = [make_lock("Recycler._stripes") for _ in range(STRIPE_COUNT)]
        self._inflight: list[dict[str, _InflightLoad]] = [
            {} for _ in range(STRIPE_COUNT)
        ]

    def _stripe_of(self, uri: str) -> tuple[Lockable, dict[str, _InflightLoad]]:
        index = hash(uri) % STRIPE_COUNT
        return self._stripes[index], self._inflight[index]

    # -- introspection -----------------------------------------------------

    @property
    def bytes_cached(self) -> int:
        """Heap-resident bytes charged against the budget."""
        with self._lock:
            return self._bytes_cached

    @property
    def bytes_mapped(self) -> int:
        """Mmap-backed bytes of re-hydrated entries (owned by the store)."""
        with self._lock:
            return self._bytes_mapped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, uri: str) -> bool:
        with self._lock:
            return uri in self._entries

    def cached_uris(self) -> set[str]:
        """The set C of cached chunks used by rewrite rule (1).

        Memory tier only: the rewrite plans a cheap ``cache-scan`` for these;
        disk-tier entries are re-hydrated inside ``chunk-access`` instead.
        """
        with self._lock:
            return set(self._entries)

    def entries(self) -> list[RecyclerEntry]:
        """A snapshot of the current entries (stable under concurrent use)."""
        with self._lock:
            return list(self._entries.values())

    def tier_stats(self) -> dict[str, dict[str, int]]:
        """Per-tier counters for ``repro cache`` and the benchmarks."""
        with self._lock:
            memory = {
                "entries": len(self._entries),
                "budget_bytes": self.budget_bytes,
                "bytes_resident": self._bytes_cached,
                "bytes_mapped": self._bytes_mapped,
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "coalesced": self.stats.coalesced,
                "insertions": self.stats.insertions,
                "evictions": self.stats.evictions,
                "bytes_evicted": self.stats.bytes_evicted,
                "rehydrates": self.stats.rehydrates,
                "spills": self.stats.spills,
                "bytes_spilled": self.stats.bytes_spilled,
                "spill_errors": self.stats.spill_errors,
            }
        if self.store is None:
            disk: dict[str, int] = {"enabled": 0}
        else:
            disk = {"enabled": 1}
            disk.update(self.store.tier_stats())
        return {"memory": memory, "disk": disk}

    # -- cache protocol ------------------------------------------------------

    def get(self, uri: str) -> Table | None:
        """Cache-scan: the chunk's table, or None on a memory-tier miss."""
        with self._lock:
            entry = self._entries.get(uri)
            if entry is None:
                self.stats.misses += 1
                return None
            entry.access_count += 1
            entry.last_access = time.monotonic()
            self.stats.hits += 1
            return entry.table

    def _peek(self, uri: str) -> Table | None:
        """Like :meth:`get` but records only hits, never a miss.

        Used by :meth:`get_or_load`, whose lookups are provisional: each
        call contributes exactly one of hit / rehydrated / miss / coalesced
        to the stats, decided only once the outcome is known.
        """
        with self._lock:
            entry = self._entries.get(uri)
            if entry is None:
                return None
            entry.access_count += 1
            entry.last_access = time.monotonic()
            self.stats.hits += 1
            return entry.table

    def put(self, uri: str, table: Table, loading_cost: float) -> bool:
        """Admit a freshly loaded chunk; returns False if it cannot fit.

        A chunk whose *resident* size exceeds the whole budget is never
        admitted (it would evict everything for a single-use entry); fully
        mmap-backed chunks are resident-free and always admissible.  Evicted
        victims are spilled to the disk tier after the entry mutex is
        released.
        """
        nbytes = table.nbytes
        resident = table.resident_nbytes
        if resident > self.budget_bytes:
            return False
        victims: list[RecyclerEntry] = []
        with self._lock:
            existing = self._entries.pop(uri, None)
            if existing is not None:
                self._bytes_cached -= existing.resident_nbytes
                self._bytes_mapped -= existing.nbytes - existing.resident_nbytes
            self._evict_until_fits(resident, victims)
            self._entries[uri] = RecyclerEntry(
                uri=uri, table=table, loading_cost=loading_cost,
                nbytes=nbytes, resident_nbytes=resident,
            )
            self._bytes_cached += resident
            self._bytes_mapped += nbytes - resident
            self.stats.insertions += 1
        self._spill_entries(victims)
        return True

    def get_or_load(
        self, uri: str, loader: Callable[[str], tuple[Table, float]]
    ) -> tuple[Table, str, float]:
        """The single-flight chunk-access path across both tiers.

        Returns ``(table, outcome, loading_cost)`` with outcome one of:

        * ``"hit"`` — the chunk was in the memory tier;
        * ``"rehydrated"`` — the chunk was mmap-re-hydrated from the disk
          tier (and re-admitted to the memory tier, resident-free);
        * ``"loaded"`` — this call decoded the chunk (and admitted it);
        * ``"coalesced"`` — another thread was already decoding or
          re-hydrating the same URI; this call waited for that result.

        ``loader(uri)`` must return ``(table, seconds)``; it runs outside
        every recycler lock so independent loads overlap freely.  A loader
        failure is propagated to the owner and every coalesced waiter.

        Each call counts exactly one of hit / rehydrated / miss / coalesced
        in the stats, so the ratios stay exact under contention.
        """
        cached = self._peek(uri)
        if cached is not None:
            return cached, "hit", 0.0

        stripe_lock, inflight = self._stripe_of(uri)
        with stripe_lock:
            flight = inflight.get(uri)
            if flight is None:
                # Re-check the cache before taking ownership: a flight that
                # completed between our first probe and this point has
                # already admitted the table, and decoding again would break
                # the exactly-once guarantee.  (Lock order stripe → global
                # is uniform across the class, so this nesting is safe.)
                cached = self._peek(uri)
                if cached is not None:
                    return cached, "hit", 0.0
                flight = _InflightLoad()
                inflight[uri] = flight
                is_owner = True
            else:
                is_owner = False

        if not is_owner:
            flight.event.wait()
            if flight.error is not None or flight.table is None:
                raise flight.error or StorageError(
                    f"in-flight load of {uri!r} produced no table"
                )
            with self._lock:
                self.stats.coalesced += 1
            return flight.table, "coalesced", flight.cost

        try:
            # Disk tier first: a spilled or restart-surviving chunk is a
            # cheap mmap re-hydrate, not a re-decode.  The probe runs inside
            # the flight, so concurrent callers coalesce on it too.
            stored = self.store.get(uri) if self.store is not None else None
            if stored is not None:
                table, cost = stored
                with self._lock:
                    self.stats.rehydrates += 1
                outcome = "rehydrated"
            else:
                with self._lock:
                    self.stats.misses += 1
                table, cost = loader(uri)
                outcome = "loaded"
            flight.table = table
            flight.cost = cost
            self.put(uri, table, cost)
            return table, outcome, cost
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with stripe_lock:
                inflight.pop(uri, None)
            flight.event.set()

    def invalidate(self, uri: str) -> None:
        """Drop a chunk from both tiers (its source data changed)."""
        with self._lock:
            entry = self._entries.pop(uri, None)
            if entry is not None:
                self._bytes_cached -= entry.resident_nbytes
                self._bytes_mapped -= entry.nbytes - entry.resident_nbytes
            if uri in self._spilling:
                # An evicted copy is being written to the store right now;
                # flag it so the spiller deletes its own write.
                self._spill_invalidated.add(uri)
        if self.store is not None:
            self.store.delete(uri)

    def clear(self, spilled: bool = True) -> None:
        """Drop the memory tier; with ``spilled`` also the disk tier.

        ``clear()`` is the experiments' fully-cold protocol ("restart the
        server, flush buffers"); ``clear(spilled=False)`` models a process
        restart over a surviving store directory.
        """
        with self._lock:
            self._entries.clear()
            self._bytes_cached = 0
            self._bytes_mapped = 0
        if spilled and self.store is not None:
            self.store.clear()

    def flush_to_store(self) -> int:
        """Persist every memory-tier entry not yet on disk; returns count.

        Called by the checkpoint path so a cleanly closed database comes
        back warm even for chunks that were never evicted.
        """
        if self.store is None:
            return 0
        flushed = 0
        for entry in self.entries():
            if entry.uri not in self.store:
                self._spill_one(entry)
                flushed += 1
        return flushed

    # -- replacement ---------------------------------------------------------

    def _evict_until_fits(
        self, incoming: int, victims: list[RecyclerEntry]
    ) -> None:
        # Caller holds self._lock.  Only resident entries are candidates:
        # evicting an mmap-backed entry frees no heap bytes.
        while self._entries and self._bytes_cached + incoming > self.budget_bytes:
            victim = self._choose_victim()
            if victim is None:
                break
            entry = self._entries.pop(victim)
            self._bytes_cached -= entry.resident_nbytes  # repro: ignore[lock-discipline]
            self._bytes_mapped -= entry.nbytes - entry.resident_nbytes  # repro: ignore[lock-discipline]
            self.stats.evictions += 1
            self.stats.bytes_evicted += entry.nbytes
            # Marked before the lock is released so an invalidate() racing
            # the upcoming (unlocked) spill can flag it as doomed.
            self._spilling.add(entry.uri)
            victims.append(entry)

    def _choose_victim(self) -> str | None:
        candidates = [
            e for e in self._entries.values() if e.resident_nbytes > 0
        ]
        if not candidates:
            return None
        if self.policy == "lru":
            return min(candidates, key=lambda e: e.last_access).uri
        return min(candidates, key=lambda e: e.score()).uri

    # -- spilling ------------------------------------------------------------

    def _spill_entries(self, victims: list[RecyclerEntry]) -> None:
        if self.store is None or not self.spill_on_evict:
            if victims:
                with self._lock:
                    for entry in victims:
                        self._spilling.discard(entry.uri)
                        self._spill_invalidated.discard(entry.uri)
            return
        for entry in victims:
            self._spill_one(entry)

    def _spill_one(self, entry: RecyclerEntry) -> None:
        assert self.store is not None
        uri = entry.uri
        with self._lock:
            self._spilling.add(uri)  # idempotent (evictions pre-marked)
        written = 0
        failed = False
        try:
            if uri not in self.store:
                try:
                    written = self.store.put(
                        uri, entry.table, entry.loading_cost
                    )
                except (OSError, StorageError):
                    # A failed spill only loses a cache opportunity, never
                    # data: the chunk is still decodable from the
                    # repository.
                    failed = True
        finally:
            with self._lock:
                self._spilling.discard(uri)
                doomed = uri in self._spill_invalidated
                self._spill_invalidated.discard(uri)
                if failed:
                    self.stats.spill_errors += 1
                elif written:
                    self.stats.spills += 1
                    self.stats.bytes_spilled += written
        if doomed:
            # Invalidated while we were writing: never resurrect it.
            self.store.delete(uri)
