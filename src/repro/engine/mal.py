"""A MAL-like physical program layer with run-time plan rewriting.

MonetDB compiles SQL into MAL ("MonetDB Assembly Language") programs that a
rule-driven interpreter evaluates; the paper's implementation *"enabled
dynamic rewrite of MAL plans during query evaluation ... similar to
self-modifying programs"* (Section V).

We mirror that with :class:`MalProgram`: a flat list of instructions run by
a program counter.  Two instruction kinds matter for the paper:

* :class:`EvalPlan` — evaluate a logical (sub)plan and bind its result to a
  variable (stage one binds ``result-scan(Qf)`` this way);
* :class:`CallRuntimeOptimizer` — hand control to a callback that may
  *rewrite every instruction after the program counter* before execution
  resumes (this is where scan(D) becomes the union of chunk accesses).

:class:`LoadChunks` is the bulk-loading statement the paper's Run-time
Optimizer injects ("for each required file, it inserts a statement into the
MAL plan to load its actual data"); it supports multi-threaded loading to
mirror MonetDB's per-file parallelization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from . import algebra
from .errors import ExecutionError
from .physical import ExecutionContext, execute_plan
from .table import Table

__all__ = [
    "MalInstruction",
    "EvalPlan",
    "CallRuntimeOptimizer",
    "LoadChunks",
    "ReturnValue",
    "MalProgram",
]


class MalInstruction:
    """One statement of a MAL program."""

    def execute(self, ctx: ExecutionContext, program: "MalProgram") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class EvalPlan(MalInstruction):
    """``var := evaluate(plan)`` — binds a sub-plan result to a variable.

    The result lands in ``ctx.stage_results[var]`` so later plans can read
    it back through ``ResultScan(var)``.
    """

    var: str
    plan: algebra.LogicalPlan

    def execute(self, ctx: ExecutionContext, program: "MalProgram") -> None:
        ctx.stage_results[self.var] = execute_plan(self.plan, ctx)

    def describe(self) -> str:
        return f"{self.var} := eval\n{self.plan.pretty(1)}"


@dataclass
class CallRuntimeOptimizer(MalInstruction):
    """Invoke a run-time optimizer over the *remaining* program.

    ``callback(ctx, program, next_pc)`` receives the program and the index
    of the first not-yet-executed instruction; it may replace the program
    from ``next_pc`` onward (the self-modifying-program step of Section V).
    ``input_var`` names the stage-one result the optimizer inspects
    (``result-scan(Qf)``).
    """

    callback: Callable[[ExecutionContext, "MalProgram", int], None]
    input_var: str

    def execute(self, ctx: ExecutionContext, program: "MalProgram") -> None:
        if self.input_var not in ctx.stage_results:
            raise ExecutionError(
                f"runtime optimizer input {self.input_var!r} not bound"
            )
        self.callback(ctx, program, program.pc)

    def describe(self) -> str:
        return f"call runtime-optimizer({self.input_var})"


@dataclass
class LoadChunks(MalInstruction):
    """Bulk-load chunks into the recycler, optionally in parallel.

    Mirrors the per-file load statements MonetDB's Run-time Optimizer
    injects; each file forms its own slice so loading parallelizes over
    files (the paper's static parallelization strategy — and its
    low-chunk-count underutilization caveat — follow directly).

    Loads go through the Recycler's single-flight path on the database's
    shared I/O pool, so concurrent queries preloading the same chunk list
    decode every chunk exactly once between them.
    """

    uris: Sequence[str]
    table_name: str
    threads: int = 1

    def execute(self, ctx: ExecutionContext, program: "MalProgram") -> None:
        database = ctx.database
        missing = [uri for uri in self.uris if uri not in database.recycler]

        def load_one(uri: str) -> tuple[Table, str, float]:
            return database.recycler.get_or_load(
                uri, lambda u: database.load_chunk(u, self.table_name)
            )

        if self.threads > 1 and len(missing) > 1:
            pool = database.io_executor(self.threads)
            results = list(pool.map(load_one, missing))
        else:
            results = [load_one(uri) for uri in missing]
        for table, outcome, cost in results:
            if outcome == "loaded":
                ctx.stats.chunks_loaded += 1
                ctx.stats.chunk_rows_loaded += table.num_rows
                ctx.stats.chunk_load_seconds += cost
            else:  # raced with a concurrent query's load of the same chunk
                ctx.stats.chunks_from_cache += 1

    def describe(self) -> str:
        return (
            f"load {len(self.uris)} chunk(s) of {self.table_name} "
            f"(threads={self.threads})"
        )


@dataclass
class ReturnValue(MalInstruction):
    """Mark a variable as the program's result."""

    var: str

    def execute(self, ctx: ExecutionContext, program: "MalProgram") -> None:
        if self.var not in ctx.stage_results:
            raise ExecutionError(f"return of unbound variable {self.var!r}")
        program.result_var = self.var

    def describe(self) -> str:
        return f"return {self.var}"


class MalProgram:
    """A flat, interpretable, rewritable physical program."""

    def __init__(self, instructions: Sequence[MalInstruction]) -> None:
        self.instructions: list[MalInstruction] = list(instructions)
        self.pc = 0
        self.result_var: str | None = None

    def replace_from(self, start: int, new_tail: Sequence[MalInstruction]) -> None:
        """Replace ``instructions[start:]``; only unexecuted code may change."""
        if start < self.pc:
            raise ExecutionError("cannot rewrite already-executed instructions")
        self.instructions[start:] = list(new_tail)

    def run(self, ctx: ExecutionContext) -> Table:
        """Interpret the program; returns the table bound by ReturnValue."""
        self.pc = 0
        self.result_var = None
        while self.pc < len(self.instructions):
            instruction = self.instructions[self.pc]
            self.pc += 1
            instruction.execute(ctx, self)
        if self.result_var is None:
            raise ExecutionError("MAL program finished without a return")
        return ctx.stage_results[self.result_var]

    def listing(self) -> str:
        """Printable program listing (examples & debugging)."""
        lines = []
        for i, instruction in enumerate(self.instructions):
            lines.append(f"[{i:02d}] {instruction.describe()}")
        return "\n".join(lines)
