"""Per-chunk statistics: the planner's knowledge about unloaded data.

The paper's runtime optimizer narrows stage two only by metadata time
bounds; everything it keeps is fetched and decoded.  Storage-aware BDMS
designs (AsterixDB's per-partition filters, classic zone maps) instead keep
cheap min/max summaries per storage unit so value predicates can skip whole
units without touching them.  This module is that summary layer for chunks:

* **registration-time** statistics come for free from the chunk headers the
  Registrar already reads: the time span of the chunk's segments, its
  ``file_id`` (a constant per chunk) and segment-number range, plus a
  per-segment :class:`~repro.engine.indexes.ZoneMap` over the time
  attribute for sub-chunk reasoning (gap queries);
* **decode-time enrichment**: the first full decode of a chunk measures the
  exact min/max of every numeric column (notably ``sample_value``, which no
  header knows) and the observed loading cost.  Enriched ranges unlock
  value-predicate pruning.

Every stored range is a *true bound* over the chunk's rows — entries are
only ever added from headers (authoritative for time/ids) or from a full
decode (authoritative for everything), so pruning against them is safe.
The catalog is thread-safe and JSON round-trippable (checkpoint/restore);
decoded-chunk ranges additionally travel inside
:class:`~repro.engine.chunk_store.ChunkStore` manifests so a reopened
database recovers them without re-decoding anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import CatalogError
from .indexes import ZoneMap
from .table import Table
from .types import STRING
from ..util.lock_sanitizer import make_lock

__all__ = [
    "ChunkStats",
    "ChunkStatsCatalog",
    "compute_column_ranges",
    "parse_ranges",
]

_HIDDEN_MARKER = "#"


def compute_column_ranges(table: Table) -> dict[str, tuple[float, float]]:
    """Exact ``{column: (min, max)}`` over the numeric columns of a table.

    String and hidden (rowid) columns are skipped, as is any column whose
    extrema are NaN (NaN bounds compare False against everything, which
    the planner would read as "cannot satisfy" and wrongly prune); an
    empty table yields no ranges.
    """
    ranges: dict[str, tuple[float, float]] = {}
    if table.num_rows == 0:
        return ranges
    for fld, column in zip(table.schema, table.columns):
        if fld.dtype is STRING or _HIDDEN_MARKER in fld.name:
            continue
        values = column.values
        low, high = float(np.min(values)), float(np.max(values))
        if low != low or high != high:  # NaN extrema: no usable bound
            continue
        ranges[fld.name] = (low, high)
    return ranges


def parse_ranges(payload: object) -> dict[str, tuple[float, float]] | None:
    """Validate a persisted ``{column: [min, max]}`` mapping.

    The one parser every sidecar reader shares (chunk-store manifests and
    checkpoint entries).  Returns None for anything partial, malformed,
    inverted or NaN-valued — a broken sidecar must read as *absent*,
    never as wrong bounds.
    """
    if not isinstance(payload, dict):
        return None
    try:
        ranges = {
            str(name): (float(pair[0]), float(pair[1]))
            for name, pair in payload.items()
        }
    except (TypeError, ValueError, IndexError, KeyError):
        return None
    for low, high in ranges.values():
        if low != low or high != high or low > high:
            return None
    return ranges


@dataclass
class ChunkStats:
    """Everything the planner knows about one chunk.

    ``ranges`` maps qualified column names to inclusive ``(min, max)``
    bounds.  ``enriched`` records whether the ranges come from a full
    decode (exact for every column) rather than headers only.
    ``loading_cost`` is the observed decode seconds, fed to the cost model.
    ``segment_zones`` is a per-segment time zone map (header-derived),
    present only for registration-time entries of this process.
    """

    uri: str
    ranges: dict[str, tuple[float, float]] = field(default_factory=dict)
    num_rows: int | None = None
    enriched: bool = False
    loading_cost: float | None = None
    segment_zones: ZoneMap | None = None

    def to_json(self) -> dict:
        payload = {
            "uri": self.uri,
            "ranges": {k: [v[0], v[1]] for k, v in self.ranges.items()},
            "num_rows": self.num_rows,
            "enriched": self.enriched,
            "loading_cost": self.loading_cost,
        }
        if self.segment_zones is not None:
            payload["zones"] = {
                "attribute": self.segment_zones.attribute,
                "entries": [
                    [entry.zone_id, entry.minimum, entry.maximum]
                    for entry in self.segment_zones.entries()
                ],
            }
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ChunkStats | None":
        """Parse one persisted entry; None when partial or malformed."""
        try:
            ranges = parse_ranges(dict(payload["ranges"]))
            if ranges is None:
                return None
            rows = payload.get("num_rows")
            cost = payload.get("loading_cost")
            return cls(
                uri=str(payload["uri"]),
                ranges=ranges,
                num_rows=None if rows is None else int(rows),
                enriched=bool(payload.get("enriched", False)),
                loading_cost=None if cost is None else float(cost),
                segment_zones=cls._zones_from_json(payload.get("zones")),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    @staticmethod
    def _zones_from_json(payload: object) -> ZoneMap | None:
        """Rebuild a persisted zone map; None on anything malformed."""
        if not isinstance(payload, dict):
            return None
        try:
            zones = ZoneMap(str(payload["attribute"]))
            for zone_id, minimum, maximum in payload["entries"]:
                zones.add_zone(int(zone_id), int(minimum), int(maximum))
        except (KeyError, TypeError, ValueError, CatalogError):
            return None
        return zones


class ChunkStatsCatalog:
    """Thread-safe registry of :class:`ChunkStats`, keyed by chunk URI."""

    def __init__(self) -> None:
        self._lock = make_lock("ChunkStatsCatalog._lock")
        self._entries: dict[str, ChunkStats] = {}
        # Running aggregate of observed decode costs so the planner's
        # default cost estimate is O(1) per plan, not a catalog scan.
        self._cost_total = 0.0
        self._cost_count = 0

    def _account_cost(self, previous: float | None, new: float | None) -> None:
        # Caller holds self._lock.
        if previous is not None:
            self._cost_total -= previous
            self._cost_count -= 1
        if new is not None:
            self._cost_total += new
            self._cost_count += 1

    def average_loading_cost(self) -> float | None:
        """Mean observed decode seconds across all chunks, or None."""
        with self._lock:
            if not self._cost_count:
                return None
            return self._cost_total / self._cost_count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, uri: str) -> ChunkStats | None:
        with self._lock:
            return self._entries.get(uri)

    def is_enriched(self, uri: str) -> bool:
        with self._lock:
            entry = self._entries.get(uri)
            return entry is not None and entry.enriched

    def record_registration(
        self,
        uri: str,
        ranges: dict[str, tuple[float, float]],
        num_rows: int | None = None,
        segment_zones: ZoneMap | None = None,
    ) -> None:
        """Install header-derived statistics; never downgrades enrichment."""
        with self._lock:
            existing = self._entries.get(uri)
            if existing is not None and existing.enriched:
                if existing.segment_zones is None:
                    existing.segment_zones = segment_zones
                return
            if existing is not None:
                self._account_cost(existing.loading_cost, None)
            self._entries[uri] = ChunkStats(
                uri=uri,
                ranges=dict(ranges),
                num_rows=num_rows,
                enriched=False,
                segment_zones=segment_zones,
            )

    def observe_table(
        self, uri: str, table: Table, loading_cost: float | None = None
    ) -> bool:
        """Enrich from a decoded chunk; returns True when work was done.

        Idempotent and cheap to call from hot paths: an already-enriched
        entry is left untouched without scanning the data.
        """
        with self._lock:
            existing = self._entries.get(uri)
            if existing is not None and existing.enriched:
                if loading_cost is not None and existing.loading_cost is None:
                    existing.loading_cost = loading_cost
                    self._account_cost(None, loading_cost)
                return False
        ranges = compute_column_ranges(table)
        with self._lock:
            existing = self._entries.get(uri)
            if existing is not None and existing.enriched:
                return False
            zones = existing.segment_zones if existing is not None else None
            cost = loading_cost
            if cost is None and existing is not None:
                cost = existing.loading_cost
            if existing is not None:
                self._account_cost(existing.loading_cost, None)
            self._account_cost(None, cost)
            self._entries[uri] = ChunkStats(
                uri=uri,
                ranges=ranges,
                num_rows=table.num_rows,
                enriched=True,
                loading_cost=cost,
                segment_zones=zones,
            )
        return True

    def adopt_persisted(
        self,
        uri: str,
        ranges: dict[str, tuple[float, float]],
        num_rows: int | None = None,
        loading_cost: float | None = None,
    ) -> None:
        """Install decode-derived ranges recovered from a store sidecar."""
        with self._lock:
            existing = self._entries.get(uri)
            if existing is not None and existing.enriched:
                return
            zones = existing.segment_zones if existing is not None else None
            if existing is not None:
                self._account_cost(existing.loading_cost, None)
            self._account_cost(None, loading_cost)
            self._entries[uri] = ChunkStats(
                uri=uri,
                ranges=dict(ranges),
                num_rows=num_rows,
                enriched=True,
                loading_cost=loading_cost,
                segment_zones=zones,
            )

    def snapshot(self) -> dict[str, ChunkStats]:
        with self._lock:
            return dict(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._cost_total = 0.0
            self._cost_count = 0

    # -- persistence (the checkpointed catalog pointers) -------------------

    def to_json(self) -> list[dict]:
        with self._lock:
            return [entry.to_json() for entry in self._entries.values()]

    def load_json(self, payload: object) -> int:
        """Restore entries from a checkpoint; returns how many loaded.

        Malformed entries are skipped — a partially written checkpoint can
        only ever lose statistics, never invent wrong ones.
        """
        if not isinstance(payload, list):
            return 0
        loaded = 0
        for item in payload:
            if not isinstance(item, dict):
                continue
            entry = ChunkStats.from_json(item)
            if entry is None:
                continue
            with self._lock:
                existing = self._entries.get(entry.uri)
                if existing is not None and existing.enriched:
                    continue
                if existing is not None and existing.segment_zones is not None:
                    entry.segment_zones = existing.segment_zones
                if existing is not None:
                    self._account_cost(existing.loading_cost, None)
                self._account_cost(None, entry.loading_cost)
                self._entries[entry.uri] = entry
            loaded += 1
        return loaded
