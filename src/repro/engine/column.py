"""NumPy-backed typed columns — the unit of storage of the engine.

A :class:`Column` pairs a :class:`~repro.engine.types.DataType` with a NumPy
array.  All bulk operators of the engine (selections, joins, aggregations)
consume and produce columns; this mirrors MonetDB's BAT-at-a-time processing
model that the paper's implementation builds on.

Columns are immutable from the perspective of query processing: operators
always produce *new* columns (``take``, ``filter``, ``concat``...).  Mutation
is only used by the loading paths through :class:`ColumnBuilder`, which
amortizes appends with capacity doubling.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from .errors import TypeMismatchError
from .types import BOOL, DataType, FLOAT64, STRING, infer_type

__all__ = ["Column", "ColumnBuilder", "column_from_values"]


class Column:
    """An immutable typed vector of values.

    Attributes:
        dtype: Logical type of the values.
        values: The backing NumPy array (never mutated after construction).
    """

    __slots__ = ("dtype", "values")

    def __init__(self, dtype: DataType, values: np.ndarray) -> None:
        if not isinstance(values, np.ndarray):
            values = np.asarray(values, dtype=dtype.numpy_dtype)
        if values.dtype != dtype.numpy_dtype:
            values = values.astype(dtype.numpy_dtype)
        self.dtype = dtype
        self.values = values

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        """An empty column of the given type."""
        return cls(dtype, dtype.empty_array(0))

    @classmethod
    def from_values(cls, dtype: DataType, values: Iterable[Any]) -> "Column":
        """Build a column by coercing each Python value to ``dtype``."""
        coerced = [dtype.coerce_value(v) for v in values]
        if dtype is STRING:
            array = np.empty(len(coerced), dtype=object)
            array[:] = coerced
        else:
            array = np.asarray(coerced, dtype=dtype.numpy_dtype)
            if array.ndim == 0:
                array = array.reshape(0)
        return cls(dtype, array)

    @classmethod
    def constant(cls, dtype: DataType, value: Any, length: int) -> "Column":
        """A column repeating ``value`` ``length`` times."""
        coerced = dtype.coerce_value(value)
        if dtype is STRING:
            array = np.empty(length, dtype=object)
            array[:] = coerced
        else:
            array = np.full(length, coerced, dtype=dtype.numpy_dtype)
        return cls(dtype, array)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        value = self.values[index]
        if self.dtype is STRING:
            return value
        if self.dtype is BOOL:
            return bool(value)
        if self.dtype is FLOAT64:
            return float(value)
        return int(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.dtype is not other.dtype or len(self) != len(other):
            return False
        if self.dtype is STRING:
            return bool(np.all(self.values == other.values))
        return bool(np.array_equal(self.values, other.values))

    def __hash__(self) -> int:  # columns are not hashable by content
        raise TypeError("Column objects are unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(v) for v in self.values[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"Column<{self.dtype.name}>[{preview}{suffix}] (n={len(self)})"

    # -- bulk operations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Positional gather: a new column with ``values[indices]``."""
        return Column(self.dtype, self.values[indices])

    def filter(self, mask: np.ndarray) -> "Column":
        """Boolean selection: a new column keeping rows where mask is True."""
        if mask.dtype != np.bool_:
            raise TypeMismatchError("filter mask must be boolean")
        return Column(self.dtype, self.values[mask])

    def slice(self, start: int, stop: int) -> "Column":
        """A contiguous sub-column ``[start, stop)``."""
        return Column(self.dtype, self.values[start:stop])

    def concat(self, other: "Column") -> "Column":
        """Concatenate two columns of identical type."""
        if other.dtype is not self.dtype:
            raise TypeMismatchError(
                f"cannot concat {self.dtype.name} with {other.dtype.name}"
            )
        return Column(self.dtype, np.concatenate([self.values, other.values]))

    @staticmethod
    def concat_all(columns: Sequence["Column"]) -> "Column":
        """Concatenate a non-empty sequence of same-typed columns."""
        if not columns:
            raise ValueError("concat_all requires at least one column")
        first = columns[0]
        for col in columns[1:]:
            if col.dtype is not first.dtype:
                raise TypeMismatchError("concat_all requires identical types")
        if len(columns) == 1:
            return columns[0]
        return Column(first.dtype, np.concatenate([c.values for c in columns]))

    # -- introspection -----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Approximate memory footprint in bytes.

        Object (string) columns estimate per-string payload since NumPy only
        accounts for the pointer array.  For mmap-backed columns this is the
        *mapped* size; see :attr:`resident_nbytes` for the heap footprint.
        """
        if self.dtype is STRING:
            pointer_bytes = self.values.nbytes
            payload = sum(len(v) for v in self.values if isinstance(v, str))
            return pointer_bytes + payload
        return self.values.nbytes

    @property
    def is_mapped(self) -> bool:
        """Whether the backing array is a file-backed ``np.memmap``."""
        return isinstance(self.values, np.memmap)

    @property
    def resident_nbytes(self) -> int:
        """Heap bytes this column pins.

        Memory-mapped columns report 0: their pages live in the OS page
        cache, backed by the chunk-store file, and are reclaimable without
        evicting the column — budgeted caches must not count them against
        the in-memory budget (that would double-count spilled chunks).
        """
        if self.is_mapped:
            return 0
        return self.nbytes

    def to_list(self) -> list[Any]:
        """Materialize as a list of Python scalars."""
        return [self[i] for i in range(len(self))]

    def unique(self) -> "Column":
        """Distinct values in first-appearance order."""
        if self.dtype is STRING:
            seen: dict[Any, None] = {}
            for v in self.values:
                seen.setdefault(v, None)
            return Column.from_values(self.dtype, list(seen))
        _, first_index = np.unique(self.values, return_index=True)
        order = np.sort(first_index)
        return Column(self.dtype, self.values[order])


class ColumnBuilder:
    """Amortized-append builder used by the data loading paths.

    Appends coerce values eagerly; ``finish`` snapshots into an immutable
    :class:`Column`.  Capacity doubles on demand so that N appends cost
    O(N) amortized — this is the write path of the Registrar and of
    chunk-access ingestion.
    """

    def __init__(self, dtype: DataType, capacity: int = 16) -> None:
        self.dtype = dtype
        self._size = 0
        self._array = dtype.empty_array(max(capacity, 1))

    def __len__(self) -> int:
        return self._size

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._array)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        new_array = self.dtype.empty_array(capacity)
        new_array[: self._size] = self._array[: self._size]
        self._array = new_array

    def append(self, value: Any) -> None:
        """Append one value (coerced to the builder's type)."""
        self._grow_to(self._size + 1)
        self._array[self._size] = self.dtype.coerce_value(value)
        self._size += 1

    def extend(self, values: Iterable[Any]) -> None:
        """Append many values."""
        materialized = values if isinstance(values, (list, tuple)) else list(values)
        self._grow_to(self._size + len(materialized))
        for value in materialized:
            self._array[self._size] = self.dtype.coerce_value(value)
            self._size += 1

    def extend_array(self, array: np.ndarray) -> None:
        """Bulk-append a NumPy array without per-value coercion."""
        if self.dtype is STRING:
            self.extend(array.tolist())
            return
        converted = np.asarray(array, dtype=self.dtype.numpy_dtype)
        self._grow_to(self._size + len(converted))
        self._array[self._size : self._size + len(converted)] = converted
        self._size += len(converted)

    def finish(self) -> Column:
        """Snapshot the builder contents into an immutable column."""
        return Column(self.dtype, self._array[: self._size].copy())


def column_from_values(values: Sequence[Any]) -> Column:
    """Build a column inferring its type from the first non-None value.

    Convenience used by tests and the SQL literal folding; an all-None or
    empty sequence yields a STRING column.
    """
    dtype: DataType = STRING
    for value in values:
        if value is not None:
            dtype = infer_type(value)
            break
    return Column.from_values(dtype, values)
